//! Fixture: vendor_shim file violations.

pub fn connect() {
    let _ = std::net::TcpStream::connect("127.0.0.1:1");
}

pub fn spawn() {
    let _ = std::process::Command::new("ls");
}
