//! Fixture: integration tests may spawn processes (CLI tests do).

#[test]
fn tests_may_use_command() {
    let _ = std::process::Command::new("ls");
}
