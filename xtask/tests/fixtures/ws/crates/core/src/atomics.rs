//! Fixture: atomic_ordering violations and exemptions.
use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed)
}

pub fn suppressed(a: &AtomicU64) {
    // lint: allow(atomic_ordering)
    a.store(1, Ordering::SeqCst);
}

pub fn justified(a: &AtomicU64) -> u64 {
    // ordering: fixture justification comment
    a.load(Ordering::Acquire)
}

pub fn cmp_ordering_is_not_atomic(x: u32, y: u32) -> std::cmp::Ordering {
    x.cmp(&y)
}
