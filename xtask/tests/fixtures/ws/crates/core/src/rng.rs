//! Fixture: determinism violations and exemptions.

pub fn wall_clock_seed() -> u64 {
    let _t = std::time::SystemTime::now();
    0
}

pub fn os_entropy() {
    let _r = thread_rng();
}

pub fn suppressed() {
    // lint: allow(determinism)
    let _r = thread_rng();
}
