//! Fixture: no_panic violations and exemptions.

pub fn bad() {
    panic!("boom");
}

pub fn unreach(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn suppressed() {
    // lint: allow(no_panic)
    todo!()
}

pub fn asserts_are_fine(x: u32) {
    assert!(x < 10, "x out of range");
    debug_assert!(x != 3);
}
