//! Fixture: obs_discipline violations and exemptions.

pub struct Obs;
impl Obs {
    pub fn is_enabled(&self) -> bool {
        true
    }
    pub fn counter_add(&self, _name: &str, _v: f64) {}
}

pub fn unguarded(obs: &Obs, xs: &[f64]) {
    for x in xs {
        obs.counter_add("x_total", *x);
    }
}

pub fn guarded(obs: &Obs, xs: &[f64]) {
    if !obs.is_enabled() {
        return;
    }
    for x in xs {
        obs.counter_add("x_total", *x);
    }
}

pub fn suppressed(obs: &Obs, xs: &[f64]) {
    for x in xs {
        // lint: allow(obs_discipline)
        obs.counter_add("x_total", *x);
    }
}

pub fn not_in_loop(obs: &Obs) {
    obs.counter_add("once_total", 1.0);
}

pub fn other_receiver(jobs: &Obs, xs: &[f64]) {
    for x in xs {
        jobs.counter_add("jobs_total", *x);
    }
}
