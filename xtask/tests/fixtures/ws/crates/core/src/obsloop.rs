//! Fixture: obs_discipline violations and exemptions.

pub struct Obs;
impl Obs {
    pub fn is_enabled(&self) -> bool {
        true
    }
    pub fn counter_add(&self, _name: &str, _v: f64) {}
}

pub fn unguarded(obs: &Obs, xs: &[f64]) {
    for x in xs {
        obs.counter_add("x_total", *x);
    }
}

pub fn guarded(obs: &Obs, xs: &[f64]) {
    if !obs.is_enabled() {
        return;
    }
    for x in xs {
        obs.counter_add("x_total", *x);
    }
}

pub fn suppressed(obs: &Obs, xs: &[f64]) {
    for x in xs {
        // lint: allow(obs_discipline)
        obs.counter_add("x_total", *x);
    }
}

pub fn not_in_loop(obs: &Obs) {
    obs.counter_add("once_total", 1.0);
}

pub fn other_receiver(jobs: &Obs, xs: &[f64]) {
    for x in xs {
        jobs.counter_add("jobs_total", *x);
    }
}

pub struct Store;
impl Store {
    pub fn sample(&mut self, _tick: u64) {}
}

pub struct Health;
impl Health {
    pub fn tick(&mut self, _tick: u64) {}
}

pub fn unguarded_sampler(obs: &Obs, store: &mut Store, ticks: &[u64]) {
    let _ = obs;
    for t in ticks {
        store.sample(*t);
    }
}

pub fn guarded_sampler(obs: &Obs, store: &mut Store, ticks: &[u64]) {
    if !obs.is_enabled() {
        return;
    }
    for t in ticks {
        store.sample(*t);
    }
}

pub fn unguarded_health(health: &mut Health, ticks: &[u64]) {
    for t in ticks {
        health.tick(*t);
    }
}

pub fn suppressed_health(health: &mut Health, ticks: &[u64]) {
    for t in ticks {
        // lint: allow(obs_discipline)
        health.tick(*t);
    }
}

pub fn sampler_outside_loop(store: &mut Store) {
    store.sample(0);
}

pub struct Alerts;
impl Alerts {
    pub fn evaluate(&mut self, _tick: u64) {}
}

pub fn unguarded_alerts(alerts: &mut Alerts, ticks: &[u64]) {
    for t in ticks {
        alerts.evaluate(*t);
    }
}
