//! Fixture: no_unwrap violations and exemptions.

pub fn bad(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn short_expect(v: Option<u32>) -> u32 {
    v.expect("nope")
}

pub fn non_literal(v: Option<u32>, msg: &str) -> u32 {
    v.expect(msg)
}

pub fn justified(v: Option<u32>) -> u32 {
    v.expect("caller guarantees non-empty input by construction")
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // lint: allow(no_unwrap)
    v.unwrap()
}

/// Doc example: `x.unwrap()` must not fire, nor "y.unwrap()" in strings.
pub fn doc_mentions() -> &'static str {
    "z.unwrap()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
