//! Integration tests for the lint engine: every rule must fire on its
//! seeded fixture violations, every exemption (tests, doc comments,
//! strings, suppressions, out-of-scope files) must hold, and the real
//! workspace must be lint-clean.

use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

fn lint_fixture(rule: Option<&str>) -> Vec<xtask::Diagnostic> {
    let ws = xtask::load_workspace(&fixture_root()).expect("fixture workspace loads");
    xtask::lint(&ws, rule)
}

/// (file, line) pairs of a rule's findings, for exact-set assertions.
fn hits(diags: &[xtask::Diagnostic], rule: &str) -> Vec<(String, usize)> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| (d.file.clone(), d.line))
        .collect()
}

#[test]
fn no_unwrap_fires_on_unwrap_and_weak_expects_only() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "no_unwrap"),
        vec![
            ("crates/core/src/viol.rs".to_string(), 4),  // .unwrap()
            ("crates/core/src/viol.rs".to_string(), 8),  // short message
            ("crates/core/src/viol.rs".to_string(), 12), // non-literal
        ],
        "justified expects, suppressed sites, doc comments, string \
         literals and #[cfg(test)] modules must all be exempt"
    );
}

#[test]
fn no_panic_fires_on_panic_macros_but_not_asserts() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "no_panic"),
        vec![
            ("crates/core/src/panics.rs".to_string(), 4),  // panic!
            ("crates/core/src/panics.rs".to_string(), 10), // unreachable!
        ],
        "suppressed todo!() and assert!/debug_assert! must be exempt"
    );
}

#[test]
fn atomic_ordering_requires_a_justification_comment() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "atomic_ordering"),
        vec![("crates/core/src/atomics.rs".to_string(), 5)],
        "justified, suppressed, and cmp::Ordering sites must be exempt"
    );
}

#[test]
fn determinism_fires_on_wall_clock_and_entropy() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "determinism"),
        vec![
            ("crates/core/src/rng.rs".to_string(), 4), // SystemTime::now
            ("crates/core/src/rng.rs".to_string(), 9), // thread_rng
        ],
        "the suppressed thread_rng site must be exempt"
    );
}

#[test]
fn vendor_shim_fires_on_net_process_and_dead_shims() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "vendor_shim"),
        vec![
            ("Cargo.toml".to_string(), 1),               // dead `deadshim`
            ("crates/engine/src/net.rs".to_string(), 4), // std::net
            ("crates/engine/src/net.rs".to_string(), 8), // process::Command
        ],
        "integration tests may spawn processes; `usedshim` is consumed"
    );
}

#[test]
fn obs_discipline_fires_only_on_unguarded_loops() {
    let diags = lint_fixture(None);
    assert_eq!(
        hits(&diags, "obs_discipline"),
        vec![
            ("crates/core/src/obsloop.rs".to_string(), 13),
            ("crates/core/src/obsloop.rs".to_string(), 56),
            ("crates/core/src/obsloop.rs".to_string(), 71),
            ("crates/core/src/obsloop.rs".to_string(), 93),
        ],
        "guarded loops, suppressed sites, non-loop calls and non-obs \
         receivers (`jobs.`) must be exempt; the health layer's \
         store.sample / health.tick / alerts.evaluate entry points are \
         covered the same way"
    );
}

#[test]
fn rule_filter_runs_a_single_rule() {
    let diags = lint_fixture(Some("no_panic"));
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.rule == "no_panic"));
}

#[test]
fn diagnostics_render_rustc_style_and_as_json() {
    let diags = lint_fixture(None);
    let d = &diags[0];
    let text = d.render();
    assert!(text.starts_with(&format!("error[{}]:", d.rule)));
    assert!(text.contains(&format!("--> {}:{}:{}", d.file, d.line, d.col)));
    assert!(text.contains("= help:"));
    let j = d.to_json();
    assert_eq!(j.get("rule").and_then(|v| v.as_str()), Some(d.rule));
    assert_eq!(j.get("line").and_then(|v| v.as_u64()), Some(d.line as u64));
}

#[test]
fn every_rule_has_fixture_coverage() {
    let diags = lint_fixture(None);
    for rule in xtask::rules::all() {
        assert!(
            diags.iter().any(|d| d.rule == rule.name()),
            "rule `{}` found nothing in the fixtures — dead rule or broken fixture",
            rule.name()
        );
    }
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits directly under the workspace root")
        .to_path_buf();
    let ws = xtask::load_workspace(&root).expect("workspace loads");
    let diags = xtask::lint(&ws, None);
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
