//! `cargo xtask` — workspace automation entry point.
//!
//! Subcommands:
//!
//! * `lint [--json] [--rule <name>] [--root <path>]` — run the offline
//!   lint engine over the workspace. Exit code 1 when violations are
//!   found, 2 on usage/IO errors.
//! * `lint --list-rules` — print rule names and what they enforce.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown xtask `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [--json] [--rule <name>] [--root <path>]
                     run the workspace lint engine
  lint --list-rules  describe the available rules
  help               show this message
";

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut rule: Option<String> = None;
    let mut root: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for r in xtask::rules::all() {
                    println!("{:<16} {}", r.name(), r.description());
                }
                return ExitCode::SUCCESS;
            }
            "--rule" => match it.next() {
                Some(r) => rule = Some(r.clone()),
                None => {
                    eprintln!("error: --rule needs a rule name");
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(p) => root = Some(p.clone()),
                None => {
                    eprintln!("error: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown lint flag `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(name) = &rule {
        if !xtask::rules::all().iter().any(|r| r.name() == name) {
            eprintln!("error: no rule named `{name}` (try --list-rules)");
            return ExitCode::from(2);
        }
    }

    let root = match root {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: cannot determine cwd: {e}");
                    return ExitCode::from(2);
                }
            };
            match xtask::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace Cargo.toml above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let ws = match xtask::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: failed to read workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let diags = xtask::lint(&ws, rule.as_deref());
    if json {
        let arr: Vec<_> = diags.iter().map(|d| d.to_json()).collect();
        let report = serde_json::json!({
            "violations": arr,
            "count": diags.len() as u64,
            "files_scanned": ws.files.len() as u64,
        });
        match serde_json::to_string(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: failed to serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &diags {
            println!("{}", d.render());
        }
        if diags.is_empty() {
            eprintln!(
                "lint: clean — {} files scanned, {} rules",
                ws.files.len(),
                xtask::rules::all().len()
            );
        } else {
            eprintln!("lint: {} violation(s)", diags.len());
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
