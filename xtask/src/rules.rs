//! The lint rules.
//!
//! Every rule is named (the name is what `--rule` selects and what
//! `// lint: allow(<name>)` suppresses) and documents the discipline it
//! enforces. Rules work off the [`crate::scan`] view: code with
//! comments/literals blanked, comment text kept separately, and
//! `#[cfg(test)]` extents marked — so a forbidden token in a doc
//! example, a string, or a unit test never fires.

use crate::scan::enclosing_fn_and_loop;
use crate::{Diagnostic, FileKind, SourceFile, Workspace};

pub trait Rule {
    fn name(&self) -> &'static str;
    fn description(&self) -> &'static str;
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrap),
        Box::new(NoPanic),
        Box::new(AtomicOrdering),
        Box::new(VendorShim),
        Box::new(Determinism),
        Box::new(ObsDiscipline),
    ]
}

/// Library crates held to the no-panic / no-unwrap discipline.
const LIB_CRATES: &[&str] = &[
    "crates/model",
    "crates/core",
    "crates/ingest",
    "crates/online",
    "crates/engine",
    "crates/obs",
];

/// Crates on the solver path, where any nondeterminism breaks seed
/// reproducibility (`Solution`s must be a pure function of input+seed).
const SOLVER_CRATES: &[&str] = &["crates/model", "crates/core", "crates/ilp", "crates/online"];

fn in_lib_crate(f: &SourceFile, crates: &[&str]) -> bool {
    f.kind == FileKind::LibSource
        && f.crate_dir
            .as_deref()
            .map(|d| crates.contains(&d))
            .unwrap_or(false)
}

/// All byte offsets of `needle` within `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        out.push(from + p);
        from += p + needle.len();
    }
    out
}

/// True when the byte before `pos` is not part of an identifier, i.e.
/// the match at `pos` starts a fresh token.
fn token_start(hay: &str, pos: usize) -> bool {
    pos == 0 || !hay.as_bytes()[pos - 1].is_ascii_alphanumeric() && hay.as_bytes()[pos - 1] != b'_'
}

fn diag(
    rule: &'static str,
    f: &SourceFile,
    line_idx: usize,
    col: usize,
    message: String,
    help: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: f.rel.clone(),
        line: line_idx + 1,
        col: col + 1,
        message,
        snippet: f.scanned.lines[line_idx].raw.clone(),
        help: help.to_string(),
    }
}

// ---------------------------------------------------------------------
// no_unwrap
// ---------------------------------------------------------------------

/// Library code must not call `.unwrap()`, and `.expect(...)` must carry
/// a real justification message (a string literal of at least 10 chars
/// explaining why the failure is impossible or fatal). Tests, benches,
/// binaries and examples are exempt.
pub struct NoUnwrap;

impl Rule for NoUnwrap {
    fn name(&self) -> &'static str {
        "no_unwrap"
    }
    fn description(&self) -> &'static str {
        "no `.unwrap()` and no unjustified `.expect()` in library crates"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.files.iter().filter(|f| in_lib_crate(f, LIB_CRATES)) {
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for col in find_all(&line.code, ".unwrap()") {
                    out.push(diag(
                        self.name(),
                        f,
                        i,
                        col,
                        "`.unwrap()` in library code".into(),
                        "return a typed error, or suppress with `// lint: allow(no_unwrap)`",
                    ));
                }
                for col in find_all(&line.code, ".expect(") {
                    let arg = &line.code[col + ".expect(".len()..];
                    match expect_message_len(arg) {
                        Some(n) if n >= 10 => {}
                        Some(n) => out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            format!(
                                "`.expect()` message is too short ({n} chars) to justify the panic"
                            ),
                            "say *why* the value must exist, or suppress with `// lint: allow(no_unwrap)`",
                        )),
                        None => out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            "`.expect()` without a literal justification message".into(),
                            "use a string literal explaining the invariant, or suppress with `// lint: allow(no_unwrap)`",
                        )),
                    }
                }
            }
        }
    }
}

/// If `rest` (text after `.expect(`) starts with a string literal,
/// return the literal's length; `None` for non-literal arguments.
/// Multi-line literals count as long (the author clearly wrote prose).
fn expect_message_len(rest: &str) -> Option<usize> {
    let rest = rest.trim_start();
    if !rest.starts_with('"') {
        return None;
    }
    match rest[1..].find('"') {
        Some(n) => Some(n),
        None => Some(usize::MAX), // literal continues onto the next line
    }
}

// ---------------------------------------------------------------------
// no_panic
// ---------------------------------------------------------------------

/// Library code must not contain `panic!`, `unreachable!`, `todo!` or
/// `unimplemented!`. `assert!`/`debug_assert!` are allowed: they state
/// invariants rather than punt on error handling.
pub struct NoPanic;

impl Rule for NoPanic {
    fn name(&self) -> &'static str {
        "no_panic"
    }
    fn description(&self) -> &'static str {
        "no panic!/unreachable!/todo!/unimplemented! in library crates"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        const MACROS: &[&str] = &["panic!(", "unreachable!(", "todo!(", "unimplemented!("];
        for f in ws.files.iter().filter(|f| in_lib_crate(f, LIB_CRATES)) {
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for m in MACROS {
                    for col in find_all(&line.code, m) {
                        if !token_start(&line.code, col) {
                            continue;
                        }
                        out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            format!("`{}` in library code", &m[..m.len() - 1]),
                            "bubble a typed error instead, or suppress with `// lint: allow(no_panic)`",
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// atomic_ordering
// ---------------------------------------------------------------------

/// Every use of a `std::sync::atomic` memory ordering must carry a
/// nearby `// ordering: ...` comment justifying the choice (same line
/// or within the 8 lines above, so one comment can cover a CAS loop).
/// Unjustified `Relaxed` is how the histogram snapshot bug happened.
pub struct AtomicOrdering;

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ORDERING_WINDOW: usize = 8;

impl Rule for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic_ordering"
    }
    fn description(&self) -> &'static str {
        "atomic Ordering:: uses need a nearby `// ordering:` justification"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.files.iter().filter(|f| {
            !matches!(
                f.kind,
                FileKind::Vendor | FileKind::Xtask | FileKind::TestSource
            )
        }) {
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for col in find_all(&line.code, "Ordering::") {
                    let after = &line.code[col + "Ordering::".len()..];
                    let variant = after
                        .split(|c: char| !c.is_ascii_alphanumeric())
                        .next()
                        .unwrap_or("");
                    if !ORDERINGS.contains(&variant) {
                        continue; // cmp::Ordering or similar
                    }
                    let justified = (i.saturating_sub(ORDERING_WINDOW)..=i)
                        .any(|j| f.scanned.lines[j].comment.contains("ordering:"));
                    if !justified {
                        out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            format!(
                                "`Ordering::{variant}` without an `// ordering:` justification"
                            ),
                            "add `// ordering: <why this ordering is sufficient>` nearby",
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// vendor_shim
// ---------------------------------------------------------------------

/// Offline discipline. Two checks: (a) no `std::net` or
/// `process::Command` outside tests and xtask — this workspace builds
/// and runs with no network and spawns no processes from library code;
/// (b) every `vendor/` path dependency declared in the root manifest is
/// actually consumed by at least one non-vendor crate, so dead shims
/// cannot linger unnoticed.
pub struct VendorShim;

impl Rule for VendorShim {
    fn name(&self) -> &'static str {
        "vendor_shim"
    }
    fn description(&self) -> &'static str {
        "no std::net/process::Command outside tests; vendored shims must be consumed"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        const FORBIDDEN: &[&str] = &["std::net", "process::Command"];
        for f in ws.files.iter().filter(|f| {
            !matches!(
                f.kind,
                FileKind::Vendor | FileKind::Xtask | FileKind::TestSource | FileKind::BenchSource
            )
        }) {
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for pat in FORBIDDEN {
                    for col in find_all(&line.code, pat) {
                        out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            format!("`{pat}` breaks the offline/no-subprocess discipline"),
                            "library code must stay offline; only tests may spawn or connect",
                        ));
                    }
                }
            }
        }
        // (b) vendored-shim surface: each vendor dep must be used.
        let Some((root_rel, root_toml)) = ws.manifests.iter().find(|(p, _)| p == "Cargo.toml")
        else {
            return;
        };
        for dep in vendor_deps(root_toml) {
            let used = ws.manifests.iter().any(|(p, text)| {
                p != "Cargo.toml" && !p.starts_with("vendor/") && manifest_mentions_dep(text, &dep)
            });
            if !used {
                out.push(Diagnostic {
                    rule: self.name(),
                    file: root_rel.clone(),
                    line: 1,
                    col: 1,
                    message: format!(
                        "vendored shim `{dep}` is declared but no workspace crate depends on it"
                    ),
                    snippet: format!("{dep} = {{ path = \"vendor/...\" }}"),
                    help: "remove the dead shim or wire it into a consumer".to_string(),
                });
            }
        }
    }
}

/// Names of `[workspace.dependencies]` entries whose path points into
/// `vendor/` (line-lite TOML parse — shim manifests are simple).
fn vendor_deps(root_toml: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in root_toml.lines() {
        let line = line.trim();
        if let Some(eq) = line.find('=') {
            if line[eq..].contains("path") && line[eq..].contains("vendor/") {
                let name = line[..eq].trim();
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
                {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Does a crate manifest depend on `dep` (directly or via
/// `workspace = true`)?
fn manifest_mentions_dep(text: &str, dep: &str) -> bool {
    text.lines().any(|l| {
        let l = l.trim();
        (l.starts_with(&format!("{dep} "))
            || l.starts_with(&format!("{dep}="))
            || l.starts_with(&format!("{dep}.")))
            && l.contains('=')
    })
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

/// Solver-path crates must be deterministic: a `Solution` is a pure
/// function of the instance and the seed. Wall-clock entropy and OS
/// randomness are forbidden there (`Instant` is fine — it only feeds
/// metrics, never decisions).
pub struct Determinism;

impl Rule for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }
    fn description(&self) -> &'static str {
        "no SystemTime::now/thread_rng/entropy sources in solver crates"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        const FORBIDDEN: &[&str] = &[
            "SystemTime::now",
            "thread_rng",
            "from_entropy",
            "rand::random",
        ];
        for f in ws.files.iter().filter(|f| in_lib_crate(f, SOLVER_CRATES)) {
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for pat in FORBIDDEN {
                    for col in find_all(&line.code, pat) {
                        if !token_start(&line.code, col) {
                            continue;
                        }
                        out.push(diag(
                            self.name(),
                            f,
                            i,
                            col,
                            format!("`{pat}` makes the solver path nondeterministic"),
                            "thread the seeded RNG / caller-supplied timestamp through instead",
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// obs_discipline
// ---------------------------------------------------------------------

/// Observability must be free when disabled. Any `obs.<record>(...)`
/// call inside a loop must sit in a function that checked
/// `is_enabled()` first (the `Obs::disabled()` handle early-returns,
/// but the *arguments* — formatted names, cloned strings — are
/// evaluated before the call, so hot loops must skip the whole
/// call site). The same discipline applies to the health layer's
/// per-tick entry points: `store.sample(...)`, `alerts.evaluate(...)`
/// and `health.tick(...)` walk the whole registry/rule set, so a loop
/// that drives them must be gated the same way.
pub struct ObsDiscipline;

const OBS_METHODS: &[&str] = &[
    "counter_add(",
    "counter_inc(",
    "gauge_set(",
    "observe(",
    "observe_wall(",
    "event(",
    "event_at(",
];

/// `(receiver, methods)` pairs the discipline covers: the idiomatic
/// local names for the obs handle, the time-series store, the alert
/// engine and the combined health monitor.
const OBS_RECEIVERS: &[(&str, &[&str])] = &[
    ("obs.", OBS_METHODS),
    ("store.", &["sample("]),
    ("alerts.", &["evaluate("]),
    ("health.", &["tick("]),
];

impl Rule for ObsDiscipline {
    fn name(&self) -> &'static str {
        "obs_discipline"
    }
    fn description(&self) -> &'static str {
        "obs recording calls in loops need an is_enabled() guard in the enclosing fn"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for f in ws.files.iter().filter(|f| f.kind == FileKind::LibSource) {
            if f.crate_dir.as_deref() == Some("crates/obs") {
                continue; // the registry itself is the recording machinery
            }
            for (i, line) in f.scanned.lines.iter().enumerate() {
                if line.in_test || line.allows(self.name()) {
                    continue;
                }
                for (receiver, methods) in OBS_RECEIVERS {
                    for col in find_all(&line.code, receiver) {
                        if !token_start(&line.code, col) {
                            continue; // e.g. `jobs.`
                        }
                        let after = &line.code[col + receiver.len()..];
                        let Some(m) = methods.iter().find(|m| after.starts_with(**m)) else {
                            continue;
                        };
                        let (encl_fn, in_loop) = enclosing_fn_and_loop(&f.scanned.blocks, i);
                        if !in_loop {
                            continue;
                        }
                        let fn_start = encl_fn.map(|b| b.open_line).unwrap_or(0);
                        let guarded = f.scanned.lines[fn_start..=i]
                            .iter()
                            .any(|l| l.code.contains("is_enabled("));
                        if !guarded {
                            out.push(diag(
                                self.name(),
                                f,
                                i,
                                col,
                                format!(
                                    "`{receiver}{}...)` inside a loop without an `is_enabled()` \
                                     guard",
                                    &m[..m.len() - 1]
                                ),
                                "check `obs.is_enabled()` before the loop so disabled runs pay \
                                 nothing",
                            ));
                        }
                    }
                }
            }
        }
    }
}
