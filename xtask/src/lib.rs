//! Offline workspace lint engine (`cargo xtask lint`).
//!
//! A token-lite static analyzer enforcing the correctness discipline
//! this workspace has accumulated: no stray panics in library code,
//! justified atomic orderings, offline/vendor hygiene, deterministic
//! solver paths, and cheap-when-disabled observability. Each rule is
//! named, individually runnable (`--rule <name>`), and suppressable at
//! a single site with `// lint: allow(<rule>)`.
//!
//! The engine has no dependencies beyond the vendored `serde_json` shim
//! (for `--json` output) and never executes rustc: it scans source text
//! with [`scan`], which is enough for the line-anchored, comment-aware
//! checks the rules need.

pub mod rules;
pub mod scan;

use std::path::{Path, PathBuf};

/// Where a file sits in the workspace, which determines which rules
/// apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` (excluding `src/bin`).
    LibSource,
    /// Binary sources: `src/bin/**` anywhere, or the workspace `src/`.
    BinSource,
    /// `tests/**` (integration tests).
    TestSource,
    /// `benches/**`.
    BenchSource,
    /// `examples/**`.
    ExampleSource,
    /// Vendored shims — exempt from all rules.
    Vendor,
    /// The lint engine itself — exempt (it names the forbidden tokens).
    Xtask,
}

/// A workspace source file with its scan results.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    pub kind: FileKind,
    /// The `crates/<name>` crate directory this file belongs to, if any.
    pub crate_dir: Option<String>,
    pub scanned: scan::Scanned,
}

/// The scanned workspace handed to every rule.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// All `Cargo.toml` manifests as (relative path, contents).
    pub manifests: Vec<(String, String)>,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token (0 = whole line).
    pub col: usize,
    pub message: String,
    /// The offending source line, for the rendered snippet.
    pub snippet: String,
    pub help: String,
}

impl Diagnostic {
    /// rustc-style rendering:
    /// ```text
    /// error[no_unwrap]: `.unwrap()` in library code
    ///   --> crates/core/src/solver.rs:42:13
    ///    |
    /// 42 |     let x = cfg.rows.unwrap();
    ///    |
    ///    = help: return a typed error, or suppress with `// lint: allow(no_unwrap)`
    /// ```
    pub fn render(&self) -> String {
        let lnum = self.line.to_string();
        let gutter = " ".repeat(lnum.len());
        let mut out = String::new();
        out.push_str(&format!("error[{}]: {}\n", self.rule, self.message));
        out.push_str(&format!(
            "  --> {}:{}:{}\n",
            self.file,
            self.line,
            self.col.max(1)
        ));
        out.push_str(&format!("{} |\n", gutter));
        out.push_str(&format!("{} | {}\n", lnum, self.snippet.trim_end()));
        out.push_str(&format!("{} |\n", gutter));
        if !self.help.is_empty() {
            out.push_str(&format!("{} = help: {}\n", gutter, self.help));
        }
        out
    }

    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "help": self.help,
        })
    }
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> (FileKind, Option<String>) {
    let parts: Vec<&str> = rel.split('/').collect();
    let kind = if parts.first() == Some(&"vendor") {
        FileKind::Vendor
    } else if parts.first() == Some(&"xtask") {
        FileKind::Xtask
    } else if parts.contains(&"bin") && parts.contains(&"src") {
        FileKind::BinSource
    } else if parts.contains(&"tests") {
        FileKind::TestSource
    } else if parts.contains(&"benches") {
        FileKind::BenchSource
    } else if parts.contains(&"examples") {
        FileKind::ExampleSource
    } else if parts.first() == Some(&"crates") && parts.contains(&"src") {
        FileKind::LibSource
    } else if parts.first() == Some(&"src") {
        FileKind::BinSource
    } else {
        FileKind::TestSource // build scripts, stray files: treat leniently
    };
    let crate_dir = if parts.first() == Some(&"crates") && parts.len() > 1 {
        Some(format!("crates/{}", parts[1]))
    } else {
        None
    };
    (kind, crate_dir)
}

/// Walk the workspace, scan every `.rs` file, and collect manifests.
pub fn load_workspace(root: &Path) -> std::io::Result<Workspace> {
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name == "Cargo.toml" {
                let rel = rel_path(root, &path);
                manifests.push((rel, std::fs::read_to_string(&path)?));
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                let (kind, crate_dir) = classify(&rel);
                let text = std::fs::read_to_string(&path)?;
                files.push(SourceFile {
                    rel,
                    kind,
                    crate_dir,
                    scanned: scan::scan(&text),
                });
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    manifests.sort();
    Ok(Workspace {
        root: root.to_path_buf(),
        files,
        manifests,
    })
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run all (or one) of the registered rules over a workspace.
pub fn lint(ws: &Workspace, only: Option<&str>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in rules::all() {
        if let Some(name) = only {
            if rule.name() != name {
                continue;
            }
        }
        rule.check(ws, &mut out);
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
