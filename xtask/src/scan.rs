//! Token-lite Rust source scanner.
//!
//! The lint rules do not need a full parse — they need to know, for every
//! line, (a) what the *code* says with comments and literal contents
//! removed, (b) what the *comments* say (justifications and suppressions
//! live there), (c) whether the line sits inside a `#[cfg(test)]` module,
//! and (d) the block structure around it (loops, functions). This module
//! produces that view with a single character-level pass that tracks the
//! handful of lexical states Rust has: line comments, nested block
//! comments, string literals, raw strings, and char literals.
//!
//! Literal contents are replaced with `x` (same byte count) so column
//! numbers in diagnostics stay true to the original text and so rules can
//! still measure literal lengths (e.g. "is this `expect` message a real
//! justification or a placeholder?") without being fooled by literals
//! that *contain* code-like text.

/// One scanned source line.
#[derive(Debug)]
pub struct Line {
    /// Original text, for diagnostic snippets.
    pub raw: String,
    /// Code view: comments blanked to spaces, string/char literal
    /// contents replaced with `x`. Byte positions match `raw`.
    pub code: String,
    /// Concatenated comment text on this line (without `//` / `/*`).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
    /// Rules suppressed on this line via `// lint: allow(rule,...)` on
    /// the same line or the line directly above.
    pub suppressed: Vec<String>,
}

impl Line {
    pub fn allows(&self, rule: &str) -> bool {
        self.suppressed.iter().any(|r| r == rule)
    }
}

/// Block kinds the rules care about. Everything that is not a function
/// body or a loop body is `Other` (match arms, struct literals, closures,
/// impl blocks, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    Fn,
    Loop,
    Other,
}

/// One `{...}` region, in document order.
#[derive(Debug)]
pub struct Block {
    pub kind: BlockKind,
    /// Line index (0-based) of the opening `{`.
    pub open_line: usize,
    /// Line index of the closing `}` (== last line for unbalanced files).
    pub close_line: usize,
    /// Nesting depth of the opening brace (0 = top level).
    pub depth: usize,
}

/// A fully scanned file.
pub struct Scanned {
    pub lines: Vec<Line>,
    pub blocks: Vec<Block>,
}

#[derive(Clone, Copy, PartialEq)]
enum Lex {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

pub fn scan(source: &str) -> Scanned {
    let mut lines = Vec::new();
    let mut state = Lex::Code;
    for raw_line in source.lines() {
        let (code, comment, next) = scan_line(raw_line, state);
        state = next;
        lines.push(Line {
            raw: raw_line.to_string(),
            code,
            comment,
            in_test: false,
            suppressed: Vec::new(),
        });
    }
    apply_suppressions(&mut lines);
    let blocks = find_blocks(&lines);
    mark_test_extents(&mut lines, &blocks);
    Scanned { lines, blocks }
}

/// Scan one line, returning (code view, comment text, state after EOL).
fn scan_line(raw: &str, mut state: Lex) -> (String, String, Lex) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            Lex::Code => match c {
                '/' if next == Some('/') => {
                    comment.extend(bytes[i + 2..].iter());
                    code.extend(std::iter::repeat_n(' ', bytes.len() - i));
                    i = bytes.len();
                    state = Lex::LineComment;
                }
                '/' if next == Some('*') => {
                    code.push_str("  ");
                    i += 2;
                    state = Lex::BlockComment(1);
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        code.extend(bytes[i..=j].iter());
                        i = j + 1;
                        state = Lex::RawStr(hashes);
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    state = Lex::Str;
                }
                '\'' => {
                    // Char literal vs lifetime. A lifetime is 'ident not
                    // followed by a closing quote; a char literal always
                    // closes within a few chars (possibly escaped).
                    if is_char_literal(&bytes, i) {
                        code.push('\'');
                        i += 1;
                        state = Lex::Char;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
            Lex::LineComment => unreachable!("line comment consumes to EOL"),
            Lex::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    code.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        Lex::Code
                    } else {
                        Lex::BlockComment(depth - 1)
                    };
                } else if c == '/' && next == Some('*') {
                    code.push_str("  ");
                    i += 2;
                    state = Lex::BlockComment(depth + 1);
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            Lex::Str => match c {
                '\\' => {
                    code.push_str("xx");
                    i += 2.min(bytes.len() - i);
                    if i > bytes.len() {
                        i = bytes.len();
                    }
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    state = Lex::Code;
                }
                _ => {
                    code.push('x');
                    i += 1;
                }
            },
            Lex::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && bytes.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i = j;
                        state = Lex::Code;
                    } else {
                        code.push('x');
                        i += 1;
                    }
                } else {
                    code.push('x');
                    i += 1;
                }
            }
            Lex::Char => match c {
                '\\' => {
                    code.push_str("xx");
                    i += 2.min(bytes.len() - i);
                    if i > bytes.len() {
                        i = bytes.len();
                    }
                }
                '\'' => {
                    code.push('\'');
                    i += 1;
                    state = Lex::Code;
                }
                _ => {
                    code.push('x');
                    i += 1;
                }
            },
        }
    }
    // Line comments end at EOL; multi-line states persist.
    if state == Lex::LineComment {
        state = Lex::Code;
    }
    (code, comment, state)
}

/// Heuristic: at `bytes[i] == '\''`, is this a char literal (vs a
/// lifetime like `'a` or `'static`)? Char literals close with `'` within
/// a short window; lifetimes never do before a non-ident char.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(&c) if c != '\'' => bytes.get(i + 2) == Some(&'\''),
        _ => false,
    }
}

/// Extract `lint: allow(a, b)` suppressions from comment text and apply
/// them to the same line and the following line.
fn apply_suppressions(lines: &mut [Line]) {
    let mut pending: Vec<Vec<String>> = vec![Vec::new(); lines.len()];
    for (idx, line) in lines.iter().enumerate() {
        if let Some(rules) = parse_allow(&line.comment) {
            pending[idx].extend(rules.iter().cloned());
            if idx + 1 < lines.len() {
                pending[idx + 1].extend(rules);
            }
        }
    }
    for (line, sup) in lines.iter_mut().zip(pending) {
        line.suppressed = sup;
    }
}

fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint: allow(")?;
    let rest = &comment[at + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Build the block structure from the code view. Each `{` opens a block
/// whose kind is inferred from the statement text preceding it on the
/// logical line (since the last `;`, `{`, or `}`).
fn find_blocks(lines: &[Line]) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // indices into `blocks`
    let mut stmt = String::new(); // text since last ; { }
    for (li, line) in lines.iter().enumerate() {
        for c in line.code.chars() {
            match c {
                '{' => {
                    let kind = classify_block(&stmt);
                    blocks.push(Block {
                        kind,
                        open_line: li,
                        close_line: lines.len().saturating_sub(1),
                        depth: stack.len(),
                    });
                    stack.push(blocks.len() - 1);
                    stmt.clear();
                }
                '}' => {
                    if let Some(bi) = stack.pop() {
                        blocks[bi].close_line = li;
                    }
                    stmt.clear();
                }
                ';' => stmt.clear(),
                _ => stmt.push(c),
            }
        }
        stmt.push(' ');
    }
    blocks
}

fn classify_block(stmt: &str) -> BlockKind {
    let mut kind = BlockKind::Other;
    // The *last* keyword wins: `for x in foo() { ... }` has `for` first,
    // but `fn f() { for ... }` sees `fn` then later the `for` opens its
    // own block with a fresh stmt buffer.
    for tok in stmt.split(|c: char| !c.is_alphanumeric() && c != '_') {
        match tok {
            "fn" => kind = BlockKind::Fn,
            "for" | "while" | "loop" => kind = BlockKind::Loop,
            // `match`/`if`/`else`/closures keep whatever we had; a bare
            // `{` after them is Other unless a loop/fn keyword appeared.
            _ => {}
        }
    }
    kind
}

/// Mark lines covered by `#[cfg(test)]`-gated items (modules or single
/// functions): from the attribute to the close of the first block opened
/// at or below the attribute's nesting level.
fn mark_test_extents(lines: &mut [Line], blocks: &[Block]) {
    let attr_lines: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| {
            let c = &l.code;
            c.contains("#[cfg(test)]")
                || c.contains("#[cfg(all(test")
                || c.contains("#[cfg(any(test")
        })
        .map(|(i, _)| i)
        .collect();
    for attr in attr_lines {
        // First block opening at or after the attribute line.
        if let Some(b) = blocks.iter().find(|b| b.open_line >= attr) {
            let (from, to) = (attr, b.close_line);
            for line in &mut lines[from..=to] {
                line.in_test = true;
            }
        }
    }
}

/// For a given line index, return the innermost enclosing `fn` block and
/// whether any loop block sits between it and the line.
pub fn enclosing_fn_and_loop(blocks: &[Block], line: usize) -> (Option<&Block>, bool) {
    let mut best_fn: Option<&Block> = None;
    for b in blocks {
        if b.kind == BlockKind::Fn && b.open_line <= line && line <= b.close_line {
            match best_fn {
                Some(f) if b.depth <= f.depth => {}
                _ => best_fn = Some(b),
            }
        }
    }
    let fn_depth = best_fn.map(|b| b.depth).unwrap_or(0);
    let in_loop = blocks.iter().any(|b| {
        b.kind == BlockKind::Loop
            && b.depth > fn_depth
            && b.open_line <= line
            && line <= b.close_line
            && best_fn.map(|f| b.open_line >= f.open_line).unwrap_or(true)
    });
    (best_fn, in_loop)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let s =
            scan("let x = \"unwrap()\"; // .unwrap() here\nlet y = 1; /* panic!() */ let z = 2;\n");
        assert!(!s.lines[0].code.contains("unwrap"));
        assert!(s.lines[0].comment.contains(".unwrap()"));
        assert!(!s.lines[1].code.contains("panic"));
        assert!(s.lines[1].code.contains("let z"));
    }

    #[test]
    fn multiline_block_comments_persist() {
        let s = scan("/* start\n .unwrap() mid\n end */ let a = 1;\n");
        assert!(!s.lines[1].code.contains("unwrap"));
        assert!(s.lines[2].code.contains("let a"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let q = r#\"panic!(\"x\")\"#;\nlet w = 3;\n");
        assert!(!s.lines[0].code.contains("panic"));
        assert!(s.lines[1].code.contains("let w"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '\"'; let d = 1;\n");
        assert!(s.lines[0].code.contains("fn f"));
        assert!(s.lines[1].code.contains("let d"));
        assert!(!s.lines[1].code.contains('"') || s.lines[1].code.matches('"').count() == 0);
    }

    #[test]
    fn string_literal_lengths_are_preserved() {
        let s = scan("x.expect(\"short\");\n");
        assert!(s.lines[0].code.contains("expect(\"xxxxx\")"));
    }

    #[test]
    fn suppressions_cover_same_and_next_line() {
        let s = scan("// lint: allow(no_unwrap)\nlet a = x.unwrap();\nlet b = y.unwrap();\n");
        assert!(s.lines[1].allows("no_unwrap"));
        assert!(!s.lines[2].allows("no_unwrap"));
    }

    #[test]
    fn cfg_test_extent_covers_module() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.lines[0].in_test);
        assert!(s.lines[4].in_test);
        assert!(!s.lines[6].in_test);
    }

    #[test]
    fn blocks_classify_fns_and_loops() {
        let src = "fn f() {\n    for i in 0..3 {\n        g(i);\n    }\n}\n";
        let s = scan(src);
        assert_eq!(s.blocks[0].kind, BlockKind::Fn);
        assert_eq!(s.blocks[1].kind, BlockKind::Loop);
        let (f, in_loop) = enclosing_fn_and_loop(&s.blocks, 2);
        assert!(f.is_some());
        assert!(in_loop);
        let (_, top) = enclosing_fn_and_loop(&s.blocks, 0);
        assert!(!top);
    }
}
