//! Table 6 in miniature: local (`p = 0`) versus remote (`p = 8`) partition
//! placement. Only updates cause inter-site transfer, so update-heavy
//! workloads benefit from local placement while read-mostly ones barely
//! notice.
//!
//! ```sh
//! cargo run --release --example local_vs_remote
//! ```

use vpart::core::CostConfig;
use vpart::prelude::*;

fn main() {
    println!(
        "{:<16} {:>8} {:>12} {:>12} {:>9}",
        "instance", "updates", "local p=0", "remote p=8", "penalty"
    );
    for name in [
        "tpcc",
        "rndAt8x15",
        "rndAt8x15u50",
        "rndBt16x15",
        "rndBt16x15u50",
    ] {
        let instance = vpart::instances::by_name(name).unwrap();
        let writes = instance
            .workload()
            .queries()
            .iter()
            .filter(|q| q.kind.is_write())
            .count();

        let mut costs = Vec::new();
        for p in [0.0, 8.0] {
            let cost = CostConfig::default().with_p(p);
            let r = SaSolver::new(SaConfig::fast_deterministic(17))
                .solve(&instance, 2, &cost)
                .unwrap();
            costs.push(r.cost());
        }
        println!(
            "{:<16} {:>7}q {:>12.0} {:>12.0} {:>8.1}%",
            name,
            writes,
            costs[0],
            costs[1],
            100.0 * (costs[1] - costs[0]) / costs[0].max(1e-9)
        );
    }
    println!("\n(penalty = how much dearer the workload gets with remote placement)");
}
