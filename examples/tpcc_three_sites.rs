//! Reproduces the paper's Table 4: an actual vertical partitioning of the
//! TPC-C benchmark onto three sites, computed by the QP solver, printed in
//! the paper's per-site listing format.
//!
//! ```sh
//! cargo run --release --example tpcc_three_sites
//! ```

use vpart::core::{evaluate, CostConfig};
use vpart::model::report::render_partitioning;
use vpart::prelude::*;

fn main() {
    let instance = vpart::instances::tpcc();
    let cost = CostConfig::default(); // p = 8, λ = 0.9 (cost-dominant)

    let single = Partitioning::single_site(&instance, 1).unwrap();
    let base = evaluate(&instance, &single, &cost).objective4;

    let report = QpSolver::new(QpConfig::with_time_limit(300.0))
        .solve(&instance, 3, &cost)
        .unwrap();

    println!(
        "TPC-C v5, 3 sites — cost {:.0} vs single-site {:.0} ({:.1}% reduction, optimal: {})",
        report.cost(),
        base,
        (1.0 - report.cost() / base) * 100.0,
        report.is_optimal()
    );
    println!("solver: {} in {:.2?}\n", report.detail, report.elapsed);
    println!("{}", render_partitioning(&instance, &report.partitioning));
}
