//! Ingest a SQL schema + query log and partition the resulting workload.
//!
//! ```text
//! cargo run --release --example ingest_sql
//! ```
//!
//! Reads the checked-in web-shop workload under `examples/data/`, prints
//! the ingestion report (what was read, guessed and skipped), solves for
//! two sites and renders the resulting attribute layout. Then ingests the
//! same workload from its `pg_stat_statements` dump twin and asserts both
//! frontends agree — the statistics path is a drop-in replacement for a
//! raw query log.

use vpart::core::{evaluate, CostConfig};
use vpart::ingest::{ingest, ingest_stats, IngestOptions, SkipReason};
use vpart::model::report::render_partitioning;
use vpart::prelude::*;

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data");
    let schema_sql =
        std::fs::read_to_string(format!("{dir}/schema.sql")).expect("schema.sql is checked in");
    let log =
        std::fs::read_to_string(format!("{dir}/queries.log")).expect("queries.log is checked in");

    let out = ingest(
        &schema_sql,
        &log,
        &IngestOptions::default().with_name("web-shop"),
    )
    .expect("the checked-in workload ingests cleanly");
    println!("=== ingestion report ===\n{}", out.report);

    // Joins, subqueries and INSERT ... SELECT must flatten, not skip — CI
    // runs this example, so a regression in the flattening paths fails
    // the build.
    let dropped: Vec<_> = out
        .report
        .skipped
        .iter()
        .filter(|s| matches!(s.reason, SkipReason::Join | SkipReason::Subquery))
        .collect();
    assert!(
        dropped.is_empty(),
        "multi-table statements were skipped instead of flattened: {dropped:?}"
    );

    let instance = out.instance;
    let cost = CostConfig::default();
    let solved = SaSolver::new(SaConfig::fast_deterministic(7))
        .solve(&instance, 2, &cost)
        .expect("SA solves the web-shop instance");
    solved
        .partitioning
        .validate(&instance, false)
        .expect("solution is feasible");

    let single = Partitioning::single_site(&instance, 1).expect("trivial layout");
    let baseline = evaluate(&instance, &single, &cost).objective4;
    println!("=== partitioning (2 sites) ===");
    println!("cost (objective 4)  {:.1}", solved.breakdown.objective4);
    println!("single-site cost    {baseline:.1}");
    println!(
        "reduction           {:.1}%",
        (1.0 - solved.breakdown.objective4 / baseline) * 100.0
    );
    println!("\n{}", render_partitioning(&instance, &solved.partitioning));

    // The same workload as a pg_stat_statements dump: the statistics
    // frontend must reproduce the log instance exactly. CI runs this
    // example, so a drift between the two paths fails the build.
    let dump = std::fs::read_to_string(format!("{dir}/pg_stat_statements.csv"))
        .expect("pg_stat_statements.csv is checked in");
    let from_stats = ingest_stats(
        &schema_sql,
        &dump,
        StatsFormat::PgssCsv,
        &IngestOptions::default().with_name("web-shop"),
    )
    .expect("the checked-in dump ingests cleanly");
    assert_eq!(
        instance, from_stats.instance,
        "pg_stat_statements ingestion must agree with query-log ingestion"
    );
    println!("\n=== statistics frontend ===");
    println!(
        "pg_stat_statements dump reproduces the log instance: {} txns / {} queries",
        from_stats.instance.n_txns(),
        from_stats.instance.n_queries()
    );
}
