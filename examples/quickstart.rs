//! Quickstart: define a small schema and workload, partition it over two
//! sites with both solvers, and print the resulting layout.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vpart::core::{evaluate, CostConfig};
use vpart::model::report::render_partitioning;
use vpart::model::workload::QuerySpec;
use vpart::prelude::*;

fn main() {
    // Schema: a 6-column `Account` table and a 3-column `AuditLog`.
    let mut sb = Schema::builder();
    let account = sb
        .table(
            "Account",
            &[
                ("id", 8.0),
                ("owner", 32.0),
                ("balance", 8.0),
                ("opened_at", 8.0),
                ("notes", 200.0),
                ("flags", 4.0),
            ],
        )
        .unwrap();
    sb.table(
        "AuditLog",
        &[("account_id", 8.0), ("when", 8.0), ("what", 64.0)],
    )
    .unwrap();
    let schema = sb.build().unwrap();

    let id = schema.attr_by_name("Account", "id").unwrap();
    let owner = schema.attr_by_name("Account", "owner").unwrap();
    let balance = schema.attr_by_name("Account", "balance").unwrap();
    let notes = schema.attr_by_name("Account", "notes").unwrap();
    let log_attrs: Vec<AttrId> = schema
        .table_attrs(TableId(1))
        .map(AttrId::from_index)
        .collect();

    // Workload: a hot balance-check transaction, a rarer full-profile
    // reader, and an audit writer.
    let mut wb = Workload::builder(&schema);
    let check = wb
        .add_query(
            QuerySpec::read("check_balance")
                .access(&[id, balance])
                .frequency(100.0),
        )
        .unwrap();
    let profile = wb
        .add_query(
            QuerySpec::read("load_profile")
                .access(&[id, owner, notes])
                .frequency(5.0),
        )
        .unwrap();
    let (audit_r, audit_w) = wb
        .add_update("append_audit", 20.0, &[id], &log_attrs, &[])
        .unwrap();
    wb.transaction("CheckBalance", &[check]).unwrap();
    wb.transaction("LoadProfile", &[profile]).unwrap();
    wb.transaction("Audit", &[audit_r, audit_w]).unwrap();
    let instance = Instance::new("quickstart", schema, wb.build().unwrap()).unwrap();
    let _ = account;

    let cost = CostConfig::default(); // p = 8, λ = 0.9 (cost-dominant; see DESIGN.md)

    // Baseline: everything on one site.
    let single = Partitioning::single_site(&instance, 1).unwrap();
    let base = evaluate(&instance, &single, &cost);
    println!("single-site cost: {:.0}\n", base.objective4);

    // Heuristic solve (fast), then exact solve (proves optimality).
    let sa = SaSolver::new(SaConfig::fast_deterministic(42))
        .solve(&instance, 2, &cost)
        .unwrap();
    println!(
        "SA solver:  cost {:.0} ({:.0}% reduction) in {:.2?}",
        sa.cost(),
        (1.0 - sa.cost() / base.objective4) * 100.0,
        sa.elapsed
    );

    let qp = QpSolver::new(QpConfig::with_time_limit(60.0))
        .solve(&instance, 2, &cost)
        .unwrap();
    println!(
        "QP solver:  cost {:.0} ({:.0}% reduction, optimal: {}) in {:.2?}\n",
        qp.cost(),
        (1.0 - qp.cost() / base.objective4) * 100.0,
        qp.is_optimal(),
        qp.elapsed
    );

    println!("{}", render_partitioning(&instance, &qp.partitioning));
    println!(
        "breakdown: read {:.0}, write {:.0}, transfer {:.0} bytes",
        qp.breakdown.read, qp.breakdown.write, qp.breakdown.transfer
    );
}
