-- A small web-shop schema for the ingestion walkthrough.
-- Widths derive from the declared types; TEXT columns use the fallback
-- width and are listed in the ingest report.

CREATE TABLE users (
    u_id        BIGINT PRIMARY KEY,
    u_email     VARCHAR(64) NOT NULL UNIQUE,
    u_name      VARCHAR(32),
    u_password  CHAR(60),
    u_created   TIMESTAMP,
    u_loyalty   INTEGER DEFAULT 0
);

CREATE TABLE products (
    p_id        BIGINT PRIMARY KEY,
    p_name      VARCHAR(48),
    p_descr     TEXT,
    p_price     DECIMAL(10, 2),
    p_stock     INTEGER,
    p_category  SMALLINT
);

CREATE TABLE carts (
    ca_u_id     BIGINT,
    ca_p_id     BIGINT,
    ca_qty      SMALLINT,
    ca_added    TIMESTAMP,
    PRIMARY KEY (ca_u_id, ca_p_id)
);

CREATE TABLE orders (
    o_id        BIGINT PRIMARY KEY,
    o_u_id      BIGINT REFERENCES users(u_id),
    o_status    CHAR(1),
    o_total     DECIMAL(12, 2),
    o_placed    TIMESTAMP,
    o_address   VARCHAR(96)
);

CREATE TABLE order_items (
    oi_o_id     BIGINT,
    oi_p_id     BIGINT,
    oi_qty      SMALLINT,
    oi_price    DECIMAL(10, 2),
    PRIMARY KEY (oi_o_id, oi_p_id)
);
