//! Deploys a computed TPC-C partitioning onto the H-store-like execution
//! engine and compares *measured* bytes against the cost model's
//! *predictions* — they must agree exactly under the paper's assumptions.
//!
//! ```sh
//! cargo run --release --example engine_validation
//! ```

use vpart::core::CostConfig;
use vpart::prelude::*;

fn main() {
    let instance = vpart::instances::tpcc();
    let cost = CostConfig::default();
    let rounds = 10;

    let solved = SaSolver::new(SaConfig::fast_deterministic(7))
        .solve(&instance, 3, &cost)
        .unwrap();
    let predicted = &solved.breakdown;

    let mut dep = Deployment::new(&instance, &solved.partitioning, 128).unwrap();
    println!(
        "deployed TPC-C over 3 sites: {} bytes materialized across fragments",
        dep.stored_bytes()
    );
    let measured = dep.execute(&Trace::uniform(&instance, rounds)).unwrap();
    let k = rounds as f64;
    let t = measured.totals();

    println!("\n{:<22} {:>14} {:>14}", "", "predicted", "measured");
    for (label, pred, got) in [
        ("bytes read (A_R)", k * predicted.read, t.bytes_read),
        ("bytes written (A_W)", k * predicted.write, t.bytes_written),
        (
            "bytes shipped (B)",
            k * predicted.transfer,
            measured.transfer_bytes,
        ),
        (
            "objective (4)",
            k * predicted.objective4,
            measured.measured_objective4(cost.p),
        ),
    ] {
        let status = if (pred - got).abs() <= 1e-6 * (1.0 + pred.abs()) {
            "✓"
        } else {
            "✗"
        };
        println!("{label:<22} {pred:>14.1} {got:>14.1}  {status}");
    }

    println!("\nper-site work (read+write bytes):");
    for (s, (pred, got)) in predicted
        .site_work
        .iter()
        .zip(measured.site_work())
        .enumerate()
    {
        println!(
            "  site {s}: predicted {:>12.1}  measured {:>12.1}",
            k * pred,
            got
        );
    }
    println!(
        "\nsingle-sited executions: {}/{} — read queries never leave their site",
        measured.single_sited_executions, measured.executions
    );
}
