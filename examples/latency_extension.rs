//! Appendix A: extending the cost objective with a latency term
//! `p_l · Σ f_q · ψ_q`, where `ψ_q` flags queries that touch remotely
//! placed attribute replicas. Higher latency penalties discourage
//! replication of frequently written attributes.
//!
//! ```sh
//! cargo run --release --example latency_extension
//! ```

use vpart::core::cost::latency::{latency_term, psi};
use vpart::core::{evaluate, CostConfig};
use vpart::prelude::*;

fn main() {
    let instance = vpart::instances::tpcc();

    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>10}",
        "p_l", "cost (4)", "latency", "objective (6)", "replicas"
    );
    for pl in [0.0, 10.0, 100.0, 1000.0] {
        let cost = if pl > 0.0 {
            CostConfig::default().with_latency(pl)
        } else {
            CostConfig::default()
        };
        let r = SaSolver::new(SaConfig::fast_deterministic(23))
            .solve(&instance, 2, &cost)
            .unwrap();
        let b = evaluate(&instance, &r.partitioning, &cost);
        println!(
            "{:>10.0} {:>12.0} {:>12.1} {:>14.1} {:>10}",
            pl,
            b.objective4,
            b.latency,
            b.objective6,
            r.partitioning.total_placements()
        );
    }

    // Inspect ψ per write query on one solution.
    let cost = CostConfig::default().with_latency(100.0);
    let r = SaSolver::new(SaConfig::fast_deterministic(23))
        .solve(&instance, 2, &cost)
        .unwrap();
    println!("\nψ_q for write queries (pl = 100):");
    for qi in 0..instance.n_queries() {
        let q = QueryId(qi as u32);
        let query = instance.workload().query(q);
        if query.kind.is_write() {
            println!(
                "  ψ = {}  {}",
                u8::from(psi(&instance, &r.partitioning, q)),
                query.name
            );
        }
    }
    println!(
        "\ntotal latency term: {:.1}",
        latency_term(&instance, &r.partitioning, &cost)
    );
}
