//! Table 5 in miniature: how much does attribute replication buy over a
//! strictly disjoint partitioning?
//!
//! ```sh
//! cargo run --release --example disjoint_vs_replicated
//! ```

use vpart::core::CostConfig;
use vpart::prelude::*;

fn main() {
    let cost = CostConfig::default();
    println!(
        "{:<14} {:>6} {:>14} {:>14} {:>7}",
        "instance", "sites", "w/ replication", "disjoint", "ratio"
    );
    for (name, sites) in [("tpcc", 2usize), ("tpcc", 3), ("rndAt8x15", 2)] {
        let instance = vpart::instances::by_name(name).unwrap();

        let replicated = QpSolver::new(QpConfig::with_time_limit(120.0))
            .solve(&instance, sites, &cost)
            .unwrap();
        let disjoint = QpSolver::new(QpConfig::with_time_limit(120.0).disjoint())
            .solve(&instance, sites, &cost)
            .unwrap();
        assert!(!disjoint.partitioning.is_replicated());

        println!(
            "{:<14} {:>6} {:>14.0} {:>14.0} {:>6.0}%",
            name,
            sites,
            replicated.cost(),
            disjoint.cost(),
            100.0 * replicated.cost() / disjoint.cost()
        );
    }
    println!("\n(ratio < 100% means replication reduced the cost, as in Table 5)");
}
