//! The online repartitioning loop on a drifting web-shop workload.
//!
//! ```text
//! cargo run --release --example watch_webshop
//! ```
//!
//! Phase 1 is the checked-in browse-heavy web-shop log; phase 2
//! (`queries_drifted.log`) carries the same statement templates with the
//! hot paths flipped to order/fulfilment writes. Each phase feeds the
//! streaming tracker for two epochs. The walkthrough asserts the full
//! control loop: steady traffic never triggers, the first drifted epoch
//! does, the warm re-solve never regresses below the incumbent, and the
//! migration plan's byte estimate equals the engine's migration meter
//! **exactly**. CI runs this example, so any regression in the loop
//! fails the build.

use vpart::core::CostConfig;
use vpart::ingest::{ingest, IngestOptions};
use vpart::online::{DriftConfig, OnlineWorkload, TrackerConfig, WatchConfig, Watcher};

fn main() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/data");
    let schema_sql =
        std::fs::read_to_string(format!("{dir}/schema.sql")).expect("schema.sql is checked in");
    let phases = [
        format!("{dir}/queries.log"),
        format!("{dir}/queries_drifted.log"),
    ];

    let parsed = vpart::ingest::parse_schema(&schema_sql, &IngestOptions::default())
        .expect("the checked-in schema parses");
    let tracker = OnlineWorkload::new("web-shop", parsed.schema, TrackerConfig::default())
        .expect("tracker config is valid");
    let mut watcher = Watcher::new(
        tracker,
        WatchConfig {
            sites: 3,
            cost: CostConfig::default().with_lambda(0.5),
            drift: DriftConfig::default(), // 5% threshold
            rows_per_fragment: 64,
            ..WatchConfig::default()
        },
    )
    .expect("watch config is valid");

    let mut first_drifted_epoch = None;
    for (p, path) in phases.iter().enumerate() {
        let log = std::fs::read_to_string(path).expect("phase log is checked in");
        let chunk = ingest(
            &schema_sql,
            &log,
            &IngestOptions::default().with_name(format!("phase{p}")),
        )
        .expect("the checked-in phase ingests cleanly")
        .instance;

        for _ in 0..2 {
            watcher
                .tracker_mut()
                .observe_instance(&chunk)
                .expect("phase chunk matches the tracker schema");
            let out = watcher.end_epoch(path).expect("epoch closes cleanly");
            println!(
                "epoch {} [{}]: templates {} score {:.4} incumbent {:.0} bound {:.0}{}",
                out.epoch,
                if p == 0 { "steady" } else { "drifted" },
                out.templates,
                out.drift_score,
                out.incumbent_cost,
                out.bound,
                match (&out.resolve, &out.migration) {
                    (Some(r), _) if r.cold => " -> cold bootstrap".to_string(),
                    (Some(r), Some(m)) => format!(
                        " -> warm re-solve ({:.2?}) + migration of {:.0} bytes",
                        r.elapsed, m.measured_bytes
                    ),
                    _ => String::new(),
                }
            );

            if p == 0 {
                assert!(
                    !out.triggered,
                    "steady traffic must not trigger (score {})",
                    out.drift_score
                );
            }
            if let Some(m) = &out.migration {
                // The acceptance contract: plan estimate == engine meter,
                // bit-exactly.
                assert!(
                    m.meter_matches,
                    "migration meter {} != estimate {}",
                    m.measured_bytes, m.estimated_bytes
                );
                assert_eq!(m.measured_bytes, m.estimated_bytes);
            }
            if let Some(r) = &out.resolve {
                if !r.cold {
                    assert!(
                        r.objective6 <= out.incumbent_cost,
                        "warm re-solve must never regress"
                    );
                }
            }
            if p == 1 && out.triggered && first_drifted_epoch.is_none() {
                first_drifted_epoch = Some(out.epoch);
                assert!(
                    out.migration.is_some(),
                    "a triggered epoch must produce a migration plan"
                );
            }
        }
    }

    let triggered_at = first_drifted_epoch.expect("the drifted phase must trigger a re-solve");
    assert!(triggered_at >= 2, "drift can only appear in phase 2");
    println!("drift detected at epoch {triggered_at}; the loop held all its invariants");
}
