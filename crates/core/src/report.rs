//! Common result type returned by all solvers.

use crate::cost::objective::CostBreakdown;
use std::time::Duration;
use vpart_model::Partitioning;

/// How the solve terminated (mirrors the paper's Table 3 conventions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Proven optimal within the configured MIP gap.
    Optimal,
    /// A limit was reached; the reported cost is the best found
    /// (the paper writes these "in parentheses").
    LimitReached,
    /// Heuristic solve (no optimality claim is ever made) — SA results.
    Heuristic,
}

/// Per-chain statistics of one multi-start SA restart.
///
/// Multi-start solves run `restarts` independent annealing chains (chain
/// `i` is seeded `seed + i`) and keep the best result; the full vector is
/// reported so restart variance stays visible. Exact solvers leave
/// [`SolveReport::restarts`] empty.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartStat {
    /// Restart index (also the seed offset).
    pub restart: usize,
    /// The chain's RNG seed (`config.seed + restart`).
    pub seed: u64,
    /// Best objective (6) the chain reached.
    pub objective6: f64,
    /// Objective (4) of the chain's best partitioning.
    pub objective4: f64,
    /// Temperature levels run before freezing.
    pub levels: usize,
    /// Inner-loop iterations (delta evaluations).
    pub iterations: usize,
    /// Accepted moves.
    pub accepted: usize,
    /// Rejected (rolled-back) moves; `accepted + rejected == iterations`.
    pub rejected: usize,
    /// Full accumulator rebuilds: the per-level drift-guard resync plus
    /// every polish adoption that replaced the incremental state. High
    /// counts relative to `levels` mean the polish kept beating the walk.
    pub resyncs: usize,
    /// Mean |Δ objective (6)| over accepted moves (0 when none were
    /// accepted) — the scale of the steps the chain was taking.
    pub mean_abs_delta: f64,
    /// Largest |incremental − recomputed| objective-(6) drift observed at
    /// the temperature-level checkpoints.
    pub max_drift: f64,
    /// Chain wall-clock time.
    pub elapsed: Duration,
    /// True if the chain was stopped by its per-chain wall-clock limit
    /// instead of freezing naturally. Timed-out chains are the one case
    /// where results may depend on machine load (and thus on the thread
    /// count): the limit cuts the chain at whatever iteration the clock
    /// reached.
    pub timed_out: bool,
    /// True if the portfolio probe phase cut this chain off as dominated
    /// (adaptive multi-start; see `SaConfig::probe_levels`). Cut chains
    /// stop at the probe horizon and report their best-so-far.
    pub cut_off: bool,
    /// Whether this chain produced the reported partitioning (exactly one
    /// winner; ties broken toward the lowest restart index).
    pub winner: bool,
}

/// Result of a partitioning solve.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The partitioning found (validated against the instance).
    pub partitioning: Partitioning,
    /// Full cost breakdown under the solve's cost configuration.
    pub breakdown: CostBreakdown,
    /// Termination kind.
    pub termination: Termination,
    /// Wall-clock solve time.
    pub elapsed: Duration,
    /// Solver-specific detail line (nodes/iterations/gap, for tables).
    pub detail: String,
    /// Per-restart chain statistics (multi-start SA; empty otherwise).
    pub restarts: Vec<RestartStat>,
}

impl SolveReport {
    /// Objective (4) — the cost the paper reports in every table.
    pub fn cost(&self) -> f64 {
        self.breakdown.objective4
    }

    /// Cost scaled by `10^-exp` for table rendering (the paper prints
    /// units of 10⁵ or 10⁶).
    pub fn cost_scaled(&self, exp: i32) -> f64 {
        self.breakdown.objective4 / 10f64.powi(exp)
    }

    /// True if the result carries an optimality proof.
    pub fn is_optimal(&self) -> bool {
        self.termination == Termination::Optimal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_breakdown(obj4: f64) -> CostBreakdown {
        CostBreakdown {
            read: obj4,
            write: 0.0,
            transfer: 0.0,
            objective4: obj4,
            site_work: vec![obj4],
            max_work: obj4,
            objective6: obj4,
            latency: 0.0,
        }
    }

    #[test]
    fn scaling_matches_paper_units() {
        let r = SolveReport {
            partitioning: Partitioning::from_parts(1, vec![], vpart_model::BitMatrix::new(0, 1))
                .unwrap(),
            breakdown: dummy_breakdown(208_000.0),
            termination: Termination::Optimal,
            elapsed: Duration::from_secs(1),
            detail: String::new(),
            restarts: Vec::new(),
        };
        // Table 3 prints TPC-C |S|=1 as 0.208 in units of 10^6.
        assert!((r.cost_scaled(6) - 0.208).abs() < 1e-9);
        assert!(r.is_optimal());
        assert_eq!(r.cost(), 208_000.0);
    }
}
