//! Algorithm 1: simulated annealing with alternating fixes.
//!
//! ```text
//! 1: initialize temperature τ > 0, reduction factor ρ ∈ (0,1)
//! 2: set number L of inner loops
//! 3: initialize x randomly (each transaction a uniform site)
//! 4: fix ← "x"
//! 5: S ← findSolution(fix)
//! 6: while not frozen:
//! 7:   for i in 1..=L:
//! 8:     x ← neighborhood of x   (move ~10% of transactions)
//! 9:     y ← neighborhood of y   (extend replication of ~10% of attributes)
//! 10:    S' ← findSolution(fix)
//! 11:    Δ ← cost(S') − cost(S)
//! 12:    accept if Δ ≤ 0 or rand < e^(−Δ/τ)
//! 13:    fix ← the other element of {"x","y"}
//! 14:  τ ← ρ·τ
//! ```
//!
//! The initial temperature follows §5.1: a solution 5% worse than the best
//! is accepted with 50% probability in the first iterations, giving
//! `τ₀ = 0.05·C* / ln 2`. Freezing: the temperature decayed below
//! `min_temp_ratio·τ₀`, or no best-cost improvement for `freeze_levels`
//! consecutive temperature levels, or the time limit expired.
//!
//! # Incremental evaluation
//!
//! The paper's inner loop re-solves `findSolution(fix)` and re-evaluates
//! the full objective for every candidate — `O(nnz + |A|·|S|)` per move,
//! which Amossen identifies as the practical bottleneck. This port drives
//! the accept/reject loop through [`IncrementalCost`] deltas instead: a
//! neighborhood perturbation mutates the running state in
//! `O(moved txn's terms)`, and a rejected candidate is rolled back via the
//! undo log. The expensive exact subproblem re-optimization
//! (`findSolution`) runs once per *temperature level* as a polish step,
//! where it also prunes replica bloat accumulated by the add-only `y`
//! neighborhood; the same checkpoint runs a full recompute as a
//! floating-point drift guard ([`IncrementalCost::resync`]).
//!
//! # Multi-start
//!
//! [`SaConfig::restarts`] runs that chain `restarts` times with seeds
//! `seed + restart_index`, spread over at most [`SaConfig::threads`] OS
//! threads, each chain with the full per-chain time budget. The merge is
//! deterministic — lowest objective (6) wins, ties broken toward the
//! lowest restart index — and independent of thread count and completion
//! order, so results for a given `(seed, restarts)` are identical whether
//! run on 1 thread or 16, **provided no chain is cut off by its
//! per-chain [`SaConfig::time_limit`]** (a timed-out chain stops at
//! whatever iteration the clock reached, which depends on machine load;
//! such chains are flagged via [`RestartStat::timed_out`]). Per-chain
//! statistics land in [`SolveReport::restarts`].

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::incremental::IncrementalCost;
use crate::cost::objective::{evaluate, fast_objective6};
use crate::error::CoreError;
use crate::report::{RestartStat, SolveReport, Termination};
use crate::sa::subproblem::{
    optimal_x_for_y, optimal_x_for_y_ilp, optimal_y_for_x, optimal_y_for_x_ilp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use vpart_model::{AttrId, Instance, Partitioning, SiteId, TxnId};

/// How `findSolution(fix)` is solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubproblemMode {
    /// Exact closed form for the λ-weighted cost part (fast; default).
    Greedy,
    /// Small MIPs including the max-load term, with a per-call time limit
    /// (the paper ran GLPK with a 30 s limit per iteration).
    IlpBacked {
        /// Per-subproblem time limit.
        time_limit: Duration,
    },
}

/// Configuration of the SA solver.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// RNG seed (results are deterministic per `(seed, restarts)`,
    /// independent of `threads` as long as no chain hits `time_limit`).
    pub seed: u64,
    /// Geometric cooling factor ρ ∈ (0,1).
    pub rho: f64,
    /// Inner loop length L per temperature level.
    pub inner_loops: usize,
    /// Fraction of transactions/attributes perturbed per neighborhood
    /// (the paper found 10% best).
    pub move_fraction: f64,
    /// Initial acceptance rule of §5.1: a solution `accept_worse_pct`
    /// worse is accepted with 50% probability at τ₀.
    pub accept_worse_pct: f64,
    /// Stop after this many non-improving temperature levels.
    pub freeze_levels: usize,
    /// Stop when τ < `min_temp_ratio`·τ₀.
    pub min_temp_ratio: f64,
    /// Wall-clock limit *per chain*.
    pub time_limit: Duration,
    /// Subproblem solver.
    pub subproblem: SubproblemMode,
    /// Number of independent annealing chains (seeds `seed..seed+restarts`).
    pub restarts: usize,
    /// Maximum OS threads running chains concurrently. Affects wall time
    /// only, not results: restarts are split into contiguous blocks, one
    /// per thread, and the merge ignores completion order. The one
    /// exception is a chain cut off by `time_limit`, whose stopping point
    /// depends on machine load (see [`RestartStat::timed_out`]).
    pub threads: usize,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            rho: 0.85,
            inner_loops: 60,
            move_fraction: 0.1,
            accept_worse_pct: 0.05,
            freeze_levels: 10,
            min_temp_ratio: 1e-6,
            time_limit: Duration::from_secs(600),
            subproblem: SubproblemMode::Greedy,
            restarts: 1,
            threads: 1,
        }
    }
}

impl SaConfig {
    /// A small, fast, fully deterministic configuration for tests and
    /// examples.
    pub fn fast_deterministic(seed: u64) -> Self {
        Self {
            seed,
            rho: 0.7,
            inner_loops: 20,
            freeze_levels: 4,
            time_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }

    /// Multi-start variant: `restarts` chains over at most `threads`
    /// threads.
    pub fn multi_start(mut self, restarts: usize, threads: usize) -> Self {
        self.restarts = restarts;
        self.threads = threads;
        self
    }
}

/// Outcome of one annealing chain.
struct Chain {
    best: Partitioning,
    best_cost: f64,
    stat: RestartStat,
}

/// The simulated-annealing solver.
#[derive(Debug, Clone, Default)]
pub struct SaSolver {
    /// Solver configuration.
    pub config: SaConfig,
}

impl SaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Heuristically minimizes objective (6) for `instance` on `n_sites`.
    pub fn solve(
        &self,
        instance: &Instance,
        n_sites: usize,
        cost: &CostConfig,
    ) -> Result<SolveReport, CoreError> {
        cost.validate()?;
        if n_sites == 0 {
            return Err(CoreError::Model(vpart_model::ModelError::NoSites));
        }
        let cfg = &self.config;
        if !(cfg.rho > 0.0 && cfg.rho < 1.0) {
            return Err(CoreError::BadConfig(format!(
                "rho must be in (0,1), got {}",
                cfg.rho
            )));
        }
        if cfg.inner_loops == 0 {
            return Err(CoreError::BadConfig("inner_loops must be positive".into()));
        }
        if cfg.restarts == 0 {
            return Err(CoreError::BadConfig("restarts must be positive".into()));
        }
        if cfg.threads == 0 {
            return Err(CoreError::BadConfig("threads must be positive".into()));
        }
        let start = Instant::now();
        let coeffs = CostCoefficients::compute(instance, cost);

        // Run the chains: sequentially for one thread, otherwise chain i
        // on scoped thread i % threads. Results are collected per restart
        // index, so the merge below never depends on completion order.
        let workers = cfg.threads.min(cfg.restarts);
        let chains: Vec<Chain> = if workers <= 1 {
            (0..cfg.restarts)
                .map(|r| self.run_chain(instance, &coeffs, n_sites, cost, r))
                .collect()
        } else {
            let mut slots: Vec<Option<Chain>> = (0..cfg.restarts).map(|_| None).collect();
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for (w, chunk) in slots.chunks_mut(cfg.restarts.div_ceil(workers)).enumerate() {
                    let coeffs = &coeffs;
                    let first = w * cfg.restarts.div_ceil(workers);
                    handles.push(scope.spawn(move || {
                        for (i, slot) in chunk.iter_mut().enumerate() {
                            *slot =
                                Some(self.run_chain(instance, coeffs, n_sites, cost, first + i));
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("annealing chain panicked");
                }
            });
            slots
                .into_iter()
                .map(|c| c.expect("every restart slot filled"))
                .collect()
        };

        // Deterministic merge: lowest objective (6); ties break toward the
        // lowest restart index (= lowest chain seed).
        let winner = chains
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.best_cost.total_cmp(&b.best_cost).then_with(|| i.cmp(j)))
            .map(|(i, _)| i)
            .expect("restarts >= 1");
        let mut stats: Vec<RestartStat> = Vec::with_capacity(chains.len());
        let mut best: Option<Partitioning> = None;
        for (i, chain) in chains.into_iter().enumerate() {
            let mut stat = chain.stat;
            stat.winner = i == winner;
            if stat.winner {
                best = Some(chain.best);
            }
            stats.push(stat);
        }
        let best = best.expect("winner chain exists");
        best.validate(instance, false)?;

        let breakdown = evaluate(instance, &best, cost);
        let levels: usize = stats.iter().map(|s| s.levels).sum();
        let iterations: usize = stats.iter().map(|s| s.iterations).sum();
        let accepted: usize = stats.iter().map(|s| s.accepted).sum();
        Ok(SolveReport {
            partitioning: best,
            breakdown,
            termination: Termination::Heuristic,
            elapsed: start.elapsed(),
            detail: format!(
                "sa: {} restart(s) on {} thread(s), {levels} levels, {iterations} iterations, \
                 {accepted} accepted, seed {} (winner {})",
                cfg.restarts, workers, cfg.seed, stats[winner].seed
            ),
            restarts: stats,
        })
    }

    /// One annealing chain, seeded `config.seed + restart`.
    fn run_chain(
        &self,
        instance: &Instance,
        coeffs: &CostCoefficients,
        n_sites: usize,
        cost: &CostConfig,
        restart: usize,
    ) -> Chain {
        let cfg = &self.config;
        let seed = cfg.seed.wrapping_add(restart as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = Instant::now();

        let solve_y = |x: &[SiteId]| -> Partitioning {
            match cfg.subproblem {
                SubproblemMode::Greedy => optimal_y_for_x(instance, coeffs, x, n_sites, cost),
                SubproblemMode::IlpBacked { time_limit } => {
                    optimal_y_for_x_ilp(instance, coeffs, x, n_sites, cost, time_limit)
                }
            }
        };
        let solve_x = |p: &Partitioning| -> Partitioning {
            match cfg.subproblem {
                SubproblemMode::Greedy => optimal_x_for_y(instance, coeffs, p, cost),
                SubproblemMode::IlpBacked { time_limit } => {
                    optimal_x_for_y_ilp(instance, coeffs, p, cost, time_limit)
                }
            }
        };

        let n_txns = instance.n_txns();
        let txn_moves = ((n_txns as f64 * cfg.move_fraction).ceil() as usize).max(1);
        let attr_moves = ((instance.n_attrs() as f64 * cfg.move_fraction).ceil() as usize).max(1);

        // Line 3: random x; line 5: S ← findSolution("x").
        let x0: Vec<SiteId> = (0..n_txns)
            .map(|_| SiteId::from_index(rng.gen_range(0..n_sites)))
            .collect();
        let mut inc = IncrementalCost::new(instance, coeffs, cost, solve_y(&x0));
        let mut current_cost = inc.objective6();
        let mut best = inc.partitioning().clone();
        let mut best_cost = current_cost;

        // §5.1 initial temperature: 50% = e^(−0.05·C*/τ₀).
        let mut tau = (cfg.accept_worse_pct * best_cost.max(1e-12)) / std::f64::consts::LN_2;
        let tau0 = tau;
        let mut fix_x = true; // line 4
        let mut levels = 0usize;
        let mut stale_levels = 0usize;
        let mut iterations = 0usize;
        let mut accepted = 0usize;
        let mut max_drift = 0.0f64;
        let mut timed_out = false;

        'outer: loop {
            let improved_at_level_start = best_cost;
            for _ in 0..cfg.inner_loops {
                if start.elapsed() >= cfg.time_limit {
                    timed_out = true;
                    break 'outer;
                }
                iterations += 1;
                // Lines 8–9, incrementally: perturb the non-fixed side of
                // the running state (each mutation updates the objective
                // in O(moved terms)).
                let mark = inc.mark();
                if fix_x {
                    // Move ~10% of transactions to uniform random sites;
                    // forced replicas keep the layout feasible.
                    for _ in 0..txn_moves {
                        let t = TxnId::from_index(rng.gen_range(0..n_txns));
                        let s = SiteId::from_index(rng.gen_range(0..n_sites));
                        inc.apply_txn_move(t, s);
                    }
                } else {
                    // Extend replication of ~10% of attributes by one site.
                    for _ in 0..attr_moves {
                        let a = AttrId::from_index(rng.gen_range(0..instance.n_attrs()));
                        if inc.partitioning().replication(a) < n_sites {
                            loop {
                                let s = SiteId::from_index(rng.gen_range(0..n_sites));
                                if inc.apply_attr_replica(a, s) {
                                    break;
                                }
                            }
                        }
                    }
                }
                // Lines 11–12: accept or roll back via the undo log.
                let cand_cost = inc.objective6();
                let delta = cand_cost - current_cost;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / tau).exp() {
                    inc.commit();
                    current_cost = cand_cost;
                    accepted += 1;
                    if current_cost < best_cost {
                        best = inc.partitioning().clone();
                        best_cost = current_cost;
                    }
                } else {
                    inc.revert(mark);
                }
                fix_x = !fix_x; // line 13 (inside the inner loop)
            }

            // Temperature-level checkpoint 1 — drift guard: full recompute
            // of the accumulators, bounding float error from the
            // add/subtract chains of the inner loop.
            max_drift = max_drift.max(inc.resync());
            current_cost = inc.objective6();
            // Checkpoint 2 — line 10's exact subproblem re-optimization
            // (`findSolution`), once per level instead of once per move.
            // `y | x` rebuilds the placement from scratch, pruning replica
            // bloat from the add-only y-neighborhood; `x | y` then
            // re-homes transactions.
            let polished_y = solve_y(inc.partitioning().x());
            let polished_x = solve_x(&polished_y);
            for polished in [polished_y, polished_x] {
                let c = fast_objective6(instance, coeffs, &polished, cost);
                if c < current_cost {
                    inc = IncrementalCost::new(instance, coeffs, cost, polished);
                    current_cost = c;
                    if c < best_cost {
                        best = inc.partitioning().clone();
                        best_cost = c;
                    }
                }
            }

            tau *= cfg.rho;
            levels += 1;
            if best_cost < improved_at_level_start - 1e-12 {
                stale_levels = 0;
            } else {
                stale_levels += 1;
            }
            if stale_levels >= cfg.freeze_levels || tau < cfg.min_temp_ratio * tau0 {
                break;
            }
        }

        // Final polish: re-derive the minimal-cost y for the best x.
        let polished = solve_y(best.x());
        let polished_cost = fast_objective6(instance, coeffs, &polished, cost);
        if polished_cost < best_cost {
            best = polished;
            best_cost = polished_cost;
        }

        Chain {
            stat: RestartStat {
                restart,
                seed,
                objective6: best_cost,
                objective4: crate::cost::objective::fast_objective4(coeffs, &best),
                levels,
                iterations,
                accepted,
                max_drift,
                elapsed: start.elapsed(),
                timed_out,
                winner: false,
            },
            best,
            best_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    fn separable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 10.0), ("r2", 10.0)]).unwrap();
        sb.table("S", &[("s1", 10.0), ("s2", 10.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("sep", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn finds_the_separable_optimum() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(42))
            .solve(&ins, 2, &cfg)
            .unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.termination, Termination::Heuristic);
        assert_eq!(r.breakdown.objective4, 40.0, "known optimum");
    }

    #[test]
    fn deterministic_per_seed() {
        let ins = separable();
        let cfg = CostConfig::default();
        let a = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        let b = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(a.partitioning, b.partitioning);
        assert_eq!(a.breakdown.objective4, b.breakdown.objective4);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        // The documented guarantee: for a fixed (seed, restarts), results
        // are identical whatever `threads` is — chain seeds derive from
        // the restart index and the merge ignores completion order. The
        // guarantee is conditional on no chain hitting its wall-clock
        // limit; this instance freezes orders of magnitude below the 30 s
        // budget, and the `timed_out` assertion documents the
        // precondition.
        let ins = separable();
        let cfg = CostConfig::default();
        let solve = |threads: usize| {
            let r = SaSolver::new(SaConfig::fast_deterministic(3).multi_start(4, threads))
                .solve(&ins, 2, &cfg)
                .unwrap();
            assert!(
                r.restarts.iter().all(|s| !s.timed_out),
                "tiny instance must freeze naturally"
            );
            r
        };
        let one = solve(1);
        for threads in [2, 3, 8] {
            let multi = solve(threads);
            assert_eq!(one.partitioning, multi.partitioning, "threads={threads}");
            assert_eq!(
                one.breakdown.objective6, multi.breakdown.objective6,
                "threads={threads}"
            );
            let costs =
                |r: &SolveReport| r.restarts.iter().map(|s| s.objective6).collect::<Vec<_>>();
            assert_eq!(costs(&one), costs(&multi), "threads={threads}");
        }
    }

    #[test]
    fn multi_start_reports_stats_and_never_loses_to_single_start() {
        let ins = separable();
        let cfg = CostConfig::default();
        let single = SaSolver::new(SaConfig::fast_deterministic(5))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(single.restarts.len(), 1);
        assert!(single.restarts[0].winner);
        let multi = SaSolver::new(SaConfig::fast_deterministic(5).multi_start(4, 2))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(multi.restarts.len(), 4);
        // Chain 0 of the multi-start IS the single-start chain (seed + 0),
        // so best-of-4 can only match or beat it.
        assert!(multi.breakdown.objective6 <= single.breakdown.objective6 + 1e-9);
        assert_eq!(multi.restarts.iter().filter(|s| s.winner).count(), 1);
        for (i, stat) in multi.restarts.iter().enumerate() {
            assert_eq!(stat.restart, i);
            assert_eq!(stat.seed, 5 + i as u64);
            assert!(stat.iterations > 0);
            assert!(stat.max_drift <= 1e-9 * (1.0 + stat.objective6));
        }
        // The winner's chain cost matches the reported breakdown.
        let winner = multi.restarts.iter().find(|s| s.winner).unwrap();
        assert!((winner.objective6 - multi.breakdown.objective6).abs() <= 1e-9);
    }

    #[test]
    fn single_site_degenerates_to_trivial_layout() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(1))
            .solve(&ins, 1, &cfg)
            .unwrap();
        // With one site there is exactly one feasible layout.
        let trivial = Partitioning::single_site(&ins, 1).unwrap();
        assert_eq!(
            r.breakdown.objective4,
            evaluate(&ins, &trivial, &cfg).objective4
        );
    }

    #[test]
    fn rejects_bad_config() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(1);
        sa.rho = 1.5;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.inner_loops = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.restarts = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.threads = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            SaSolver::default().solve(&ins, 0, &cfg),
            Err(CoreError::Model(vpart_model::ModelError::NoSites))
        ));
    }

    #[test]
    fn ilp_backed_subproblems_work_end_to_end() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(3);
        sa.inner_loops = 6;
        sa.freeze_levels = 2;
        sa.subproblem = SubproblemMode::IlpBacked {
            time_limit: Duration::from_secs(5),
        };
        let r = SaSolver::new(sa).solve(&ins, 2, &cfg).unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.breakdown.objective4, 40.0);
    }
}
