//! Algorithm 1: simulated annealing with alternating fixes.
//!
//! ```text
//! 1: initialize temperature τ > 0, reduction factor ρ ∈ (0,1)
//! 2: set number L of inner loops
//! 3: initialize x randomly (each transaction a uniform site)
//! 4: fix ← "x"
//! 5: S ← findSolution(fix)
//! 6: while not frozen:
//! 7:   for i in 1..=L:
//! 8:     x ← neighborhood of x   (move ~10% of transactions)
//! 9:     y ← neighborhood of y   (extend replication of ~10% of attributes)
//! 10:    S' ← findSolution(fix)
//! 11:    Δ ← cost(S') − cost(S)
//! 12:    accept if Δ ≤ 0 or rand < e^(−Δ/τ)
//! 13:    fix ← the other element of {"x","y"}
//! 14:  τ ← ρ·τ
//! ```
//!
//! The initial temperature follows §5.1: a solution 5% worse than the best
//! is accepted with 50% probability in the first iterations, giving
//! `τ₀ = 0.05·C* / ln 2`. Freezing: the temperature decayed below
//! `min_temp_ratio·τ₀`, or no best-cost improvement for `freeze_levels`
//! consecutive temperature levels, or the time limit expired.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::objective::{evaluate, fast_objective6};
use crate::error::CoreError;
use crate::report::{SolveReport, Termination};
use crate::sa::subproblem::{
    optimal_x_for_y, optimal_x_for_y_ilp, optimal_y_for_x, optimal_y_for_x_ilp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use vpart_model::{AttrId, Instance, Partitioning, SiteId};

/// How `findSolution(fix)` is solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubproblemMode {
    /// Exact closed form for the λ-weighted cost part (fast; default).
    Greedy,
    /// Small MIPs including the max-load term, with a per-call time limit
    /// (the paper ran GLPK with a 30 s limit per iteration).
    IlpBacked {
        /// Per-subproblem time limit.
        time_limit: Duration,
    },
}

/// Configuration of the SA solver.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// RNG seed (results are deterministic per seed).
    pub seed: u64,
    /// Geometric cooling factor ρ ∈ (0,1).
    pub rho: f64,
    /// Inner loop length L per temperature level.
    pub inner_loops: usize,
    /// Fraction of transactions/attributes perturbed per neighborhood
    /// (the paper found 10% best).
    pub move_fraction: f64,
    /// Initial acceptance rule of §5.1: a solution `accept_worse_pct`
    /// worse is accepted with 50% probability at τ₀.
    pub accept_worse_pct: f64,
    /// Stop after this many non-improving temperature levels.
    pub freeze_levels: usize,
    /// Stop when τ < `min_temp_ratio`·τ₀.
    pub min_temp_ratio: f64,
    /// Overall wall-clock limit.
    pub time_limit: Duration,
    /// Subproblem solver.
    pub subproblem: SubproblemMode,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            rho: 0.85,
            inner_loops: 60,
            move_fraction: 0.1,
            accept_worse_pct: 0.05,
            freeze_levels: 10,
            min_temp_ratio: 1e-6,
            time_limit: Duration::from_secs(600),
            subproblem: SubproblemMode::Greedy,
        }
    }
}

impl SaConfig {
    /// A small, fast, fully deterministic configuration for tests and
    /// examples.
    pub fn fast_deterministic(seed: u64) -> Self {
        Self {
            seed,
            rho: 0.7,
            inner_loops: 20,
            freeze_levels: 4,
            time_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }
}

/// The simulated-annealing solver.
#[derive(Debug, Clone, Default)]
pub struct SaSolver {
    /// Solver configuration.
    pub config: SaConfig,
}

impl SaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Heuristically minimizes objective (6) for `instance` on `n_sites`.
    pub fn solve(
        &self,
        instance: &Instance,
        n_sites: usize,
        cost: &CostConfig,
    ) -> Result<SolveReport, CoreError> {
        cost.validate()?;
        if n_sites == 0 {
            return Err(CoreError::Model(vpart_model::ModelError::NoSites));
        }
        let cfg = &self.config;
        if !(cfg.rho > 0.0 && cfg.rho < 1.0) {
            return Err(CoreError::BadConfig(format!(
                "rho must be in (0,1), got {}",
                cfg.rho
            )));
        }
        if cfg.inner_loops == 0 {
            return Err(CoreError::BadConfig("inner_loops must be positive".into()));
        }
        let start = Instant::now();
        let coeffs = CostCoefficients::compute(instance, cost);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let n_txns = instance.n_txns();
        let txn_moves = ((n_txns as f64 * cfg.move_fraction).ceil() as usize).max(1);
        let attr_moves = ((instance.n_attrs() as f64 * cfg.move_fraction).ceil() as usize).max(1);

        let solve_y = |x: &[SiteId], rng_unused: &mut StdRng| -> Partitioning {
            let _ = rng_unused;
            match cfg.subproblem {
                SubproblemMode::Greedy => optimal_y_for_x(instance, &coeffs, x, n_sites, cost),
                SubproblemMode::IlpBacked { time_limit } => {
                    optimal_y_for_x_ilp(instance, &coeffs, x, n_sites, cost, time_limit)
                }
            }
        };
        let solve_x = |p: &Partitioning| -> Partitioning {
            match cfg.subproblem {
                SubproblemMode::Greedy => optimal_x_for_y(instance, &coeffs, p, cost),
                SubproblemMode::IlpBacked { time_limit } => {
                    optimal_x_for_y_ilp(instance, &coeffs, p, cost, time_limit)
                }
            }
        };

        // Line 3: random x; line 5: S ← findSolution("x").
        let x0: Vec<SiteId> = (0..n_txns)
            .map(|_| SiteId::from_index(rng.gen_range(0..n_sites)))
            .collect();
        let mut current = solve_y(&x0, &mut rng);
        let mut current_cost = fast_objective6(instance, &coeffs, &current, cost);
        let mut best = current.clone();
        let mut best_cost = current_cost;

        // §5.1 initial temperature: 50% = e^(−0.05·C*/τ₀).
        let mut tau = (cfg.accept_worse_pct * best_cost.max(1e-12)) / std::f64::consts::LN_2;
        let tau0 = tau;
        let mut fix_x = true; // line 4
        let mut levels = 0usize;
        let mut stale_levels = 0usize;
        let mut iterations = 0usize;
        let mut accepted = 0usize;

        'outer: loop {
            let improved_at_level_start = best_cost;
            for _ in 0..cfg.inner_loops {
                if start.elapsed() >= cfg.time_limit {
                    break 'outer;
                }
                iterations += 1;
                // Lines 8–10: perturb, then re-optimize the non-fixed side.
                let candidate = if fix_x {
                    let mut x = current.x().to_vec();
                    for _ in 0..txn_moves {
                        let t = rng.gen_range(0..n_txns);
                        x[t] = SiteId::from_index(rng.gen_range(0..n_sites));
                    }
                    solve_y(&x, &mut rng)
                } else {
                    let mut p = current.clone();
                    for _ in 0..attr_moves {
                        let a = AttrId::from_index(rng.gen_range(0..instance.n_attrs()));
                        if p.replication(a) < n_sites {
                            // Extend replication to one more random site.
                            loop {
                                let s = SiteId::from_index(rng.gen_range(0..n_sites));
                                if !p.has_attr(a, s) {
                                    p.add_replica(a, s);
                                    break;
                                }
                            }
                        }
                    }
                    solve_x(&p)
                };
                let cand_cost = fast_objective6(instance, &coeffs, &candidate, cost);
                let delta = cand_cost - current_cost;
                if delta <= 0.0 || rng.gen::<f64>() < (-delta / tau).exp() {
                    current = candidate;
                    current_cost = cand_cost;
                    accepted += 1;
                    if current_cost < best_cost {
                        best = current.clone();
                        best_cost = current_cost;
                    }
                }
                fix_x = !fix_x; // line 13 (inside the inner loop)
            }
            tau *= cfg.rho;
            levels += 1;
            if best_cost < improved_at_level_start - 1e-12 {
                stale_levels = 0;
            } else {
                stale_levels += 1;
            }
            if stale_levels >= cfg.freeze_levels || tau < cfg.min_temp_ratio * tau0 {
                break;
            }
        }

        // Final polish: re-derive the minimal-cost y for the best x.
        let polished = solve_y(best.x(), &mut rng);
        if fast_objective6(instance, &coeffs, &polished, cost) < best_cost {
            best = polished;
        }
        best.validate(instance, false)?;

        let breakdown = evaluate(instance, &best, cost);
        Ok(SolveReport {
            partitioning: best,
            breakdown,
            termination: Termination::Heuristic,
            elapsed: start.elapsed(),
            detail: format!(
                "sa: {levels} levels, {iterations} iterations, {accepted} accepted, \
                 tau0 {tau0:.3e}, seed {}",
                cfg.seed
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    fn separable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 10.0), ("r2", 10.0)]).unwrap();
        sb.table("S", &[("s1", 10.0), ("s2", 10.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("sep", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn finds_the_separable_optimum() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(42))
            .solve(&ins, 2, &cfg)
            .unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.termination, Termination::Heuristic);
        assert_eq!(r.breakdown.objective4, 40.0, "known optimum");
    }

    #[test]
    fn deterministic_per_seed() {
        let ins = separable();
        let cfg = CostConfig::default();
        let a = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        let b = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(a.partitioning, b.partitioning);
        assert_eq!(a.breakdown.objective4, b.breakdown.objective4);
    }

    #[test]
    fn single_site_degenerates_to_trivial_layout() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(1))
            .solve(&ins, 1, &cfg)
            .unwrap();
        // With one site there is exactly one feasible layout.
        let trivial = Partitioning::single_site(&ins, 1).unwrap();
        assert_eq!(
            r.breakdown.objective4,
            evaluate(&ins, &trivial, &cfg).objective4
        );
    }

    #[test]
    fn rejects_bad_config() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(1);
        sa.rho = 1.5;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.inner_loops = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            SaSolver::default().solve(&ins, 0, &cfg),
            Err(CoreError::Model(vpart_model::ModelError::NoSites))
        ));
    }

    #[test]
    fn ilp_backed_subproblems_work_end_to_end() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(3);
        sa.inner_loops = 6;
        sa.freeze_levels = 2;
        sa.subproblem = SubproblemMode::IlpBacked {
            time_limit: Duration::from_secs(5),
        };
        let r = SaSolver::new(sa).solve(&ins, 2, &cfg).unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.breakdown.objective4, 40.0);
    }
}
