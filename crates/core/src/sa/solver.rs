//! Algorithm 1: simulated annealing with alternating fixes.
//!
//! ```text
//! 1: initialize temperature τ > 0, reduction factor ρ ∈ (0,1)
//! 2: set number L of inner loops
//! 3: initialize x randomly (each transaction a uniform site)
//! 4: fix ← "x"
//! 5: S ← findSolution(fix)
//! 6: while not frozen:
//! 7:   for i in 1..=L:
//! 8:     x ← neighborhood of x   (move ~10% of transactions)
//! 9:     y ← neighborhood of y   (extend or drop replication of ~10% of attributes)
//! 10:    S' ← findSolution(fix)
//! 11:    Δ ← cost(S') − cost(S)
//! 12:    accept if Δ ≤ 0 or rand < e^(−Δ/τ)
//! 13:    fix ← the other element of {"x","y"}
//! 14:  τ ← ρ·τ
//! ```
//!
//! The initial temperature follows §5.1: a solution 5% worse than the best
//! is accepted with 50% probability in the first iterations, giving
//! `τ₀ = 0.05·C* / ln 2`. Freezing: the temperature decayed below
//! `min_temp_ratio·τ₀`, or no best-cost improvement for `freeze_levels`
//! consecutive temperature levels, or the time limit expired.
//!
//! # Incremental evaluation
//!
//! The paper's inner loop re-solves `findSolution(fix)` and re-evaluates
//! the full objective for every candidate — `O(nnz + |A|·|S|)` per move,
//! which Amossen identifies as the practical bottleneck. This port drives
//! the accept/reject loop through [`IncrementalCost`] deltas instead: a
//! neighborhood perturbation mutates the running state in
//! `O(moved txn's terms)`, and a rejected candidate is rolled back via the
//! undo log. The `y` neighborhood walks replication in both directions:
//! each perturbed attribute either gains a replica or sheds a droppable one
//! (an `O(1)` [`IncrementalCost::apply_attr_drop`]), so chains explore
//! mixed add/drop walks instead of relying on the per-level polish to prune
//! bloat. The expensive exact subproblem re-optimization (`findSolution`)
//! runs once per *temperature level* as a polish step; the same checkpoint
//! runs a full recompute as a floating-point drift guard
//! ([`IncrementalCost::resync`]).
//!
//! # Multi-start, warm start and portfolio cut-off
//!
//! [`SaConfig::restarts`] runs that chain `restarts` times with seeds
//! `seed + restart_index`, spread over at most [`SaConfig::threads`] OS
//! threads, each chain with the full per-chain time budget. The merge is
//! deterministic — lowest objective (6) wins, ties broken toward the
//! lowest restart index — and independent of thread count and completion
//! order, so results for a given `(seed, restarts)` are identical whether
//! run on 1 thread or 16, **provided no chain is cut off by its
//! per-chain [`SaConfig::time_limit`]** (a timed-out chain stops at
//! whatever iteration the clock reached, which depends on machine load;
//! such chains are flagged via [`RestartStat::timed_out`]). Per-chain
//! statistics land in [`SolveReport::restarts`].
//!
//! [`SaConfig::warm_start`] seeds chain 0 from an existing partitioning
//! instead of a random assignment — the *warm re-solve* of the online
//! repartitioning loop. The chain starts at the better of the warm layout
//! and its `y | x` polish, so the reported best never regresses below the
//! warm start's objective (6).
//!
//! [`SaConfig::probe_levels`] turns multi-start into a portfolio race:
//! every chain runs the probe horizon, then chains dominated by the shared
//! incumbent (everything below the best ⌈restarts/2⌉) are cut off and only
//! the survivors anneal to freeze. Cut chains are flagged via
//! [`RestartStat::cut_off`]. The phase boundary is a fixed level count and
//! the ranking is deterministic, so portfolio results stay reproducible
//! for a fixed `(seed, restarts)` and independent of `threads`.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::incremental::IncrementalCost;
use crate::cost::objective::{evaluate, fast_objective6};
use crate::error::CoreError;
use crate::report::{RestartStat, SolveReport, Termination};
use crate::sa::subproblem::{
    optimal_x_for_y, optimal_x_for_y_ilp, optimal_y_for_x, optimal_y_for_x_ilp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use vpart_model::{AttrId, Instance, Partitioning, SiteId, TxnId};
use vpart_obs::{Obs, Span};

/// How `findSolution(fix)` is solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubproblemMode {
    /// Exact closed form for the λ-weighted cost part (fast; default).
    Greedy,
    /// Small MIPs including the max-load term, with a per-call time limit
    /// (the paper ran GLPK with a 30 s limit per iteration).
    IlpBacked {
        /// Per-subproblem time limit.
        time_limit: Duration,
    },
}

/// Configuration of the SA solver.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// RNG seed (results are deterministic per `(seed, restarts)`,
    /// independent of `threads` as long as no chain hits `time_limit`).
    pub seed: u64,
    /// Geometric cooling factor ρ ∈ (0,1).
    pub rho: f64,
    /// Inner loop length L per temperature level.
    pub inner_loops: usize,
    /// Fraction of transactions/attributes perturbed per neighborhood
    /// (the paper found 10% best).
    pub move_fraction: f64,
    /// Initial acceptance rule of §5.1: a solution `accept_worse_pct`
    /// worse is accepted with 50% probability at τ₀.
    pub accept_worse_pct: f64,
    /// Stop after this many non-improving temperature levels.
    pub freeze_levels: usize,
    /// Stop when τ < `min_temp_ratio`·τ₀.
    pub min_temp_ratio: f64,
    /// Wall-clock limit *per chain*.
    pub time_limit: Duration,
    /// Subproblem solver.
    pub subproblem: SubproblemMode,
    /// Number of independent annealing chains (seeds `seed..seed+restarts`).
    pub restarts: usize,
    /// Maximum OS threads running chains concurrently. Affects wall time
    /// only, not results: restarts are split into contiguous blocks, one
    /// per thread, and the merge ignores completion order. The one
    /// exception is a chain cut off by `time_limit`, whose stopping point
    /// depends on machine load (see [`RestartStat::timed_out`]).
    pub threads: usize,
    /// Optional warm start: chain 0 anneals from this partitioning (or its
    /// `y | x` polish, whichever is cheaper) instead of a random
    /// assignment. Remaining chains stay random. The partitioning must be
    /// feasible for the solved instance and site count.
    pub warm_start: Option<Partitioning>,
    /// Portfolio cut-off: with `restarts > 1`, run every chain this many
    /// temperature levels, keep the best ⌈restarts/2⌉ against the shared
    /// probe incumbent, and anneal only the survivors to freeze. `None`
    /// runs every chain to freeze (classic multi-start).
    pub probe_levels: Option<usize>,
    /// Observability sink. Off by default ([`Obs::disabled`]); when
    /// enabled the solve records `sa_solve`/`sa_chain` spans, per-level
    /// `sa_level` events and the `sa_*_total` counter family. The inner
    /// accept/reject loop only touches local counters — obs calls happen
    /// once per temperature level and once per chain, keeping the
    /// disabled-path overhead in the noise.
    pub obs: Obs,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            rho: 0.85,
            inner_loops: 60,
            move_fraction: 0.1,
            accept_worse_pct: 0.05,
            freeze_levels: 10,
            min_temp_ratio: 1e-6,
            time_limit: Duration::from_secs(600),
            subproblem: SubproblemMode::Greedy,
            restarts: 1,
            threads: 1,
            warm_start: None,
            probe_levels: None,
            obs: Obs::disabled(),
        }
    }
}

impl SaConfig {
    /// A small, fast, fully deterministic configuration for tests and
    /// examples.
    pub fn fast_deterministic(seed: u64) -> Self {
        Self {
            seed,
            rho: 0.7,
            inner_loops: 20,
            freeze_levels: 4,
            time_limit: Duration::from_secs(30),
            ..Self::default()
        }
    }

    /// Multi-start variant: `restarts` chains over at most `threads`
    /// threads.
    pub fn multi_start(mut self, restarts: usize, threads: usize) -> Self {
        self.restarts = restarts;
        self.threads = threads;
        self
    }

    /// Seeds chain 0 from `incumbent` (warm re-solve).
    pub fn warm_started(mut self, incumbent: Partitioning) -> Self {
        self.warm_start = Some(incumbent);
        self
    }

    /// Enables the portfolio cut-off after `probe_levels` temperature
    /// levels (meaningful with `restarts > 1`).
    pub fn adaptive(mut self, probe_levels: usize) -> Self {
        self.probe_levels = Some(probe_levels);
        self
    }
}

/// Outcome of one annealing chain.
struct Chain {
    best: Partitioning,
    best_cost: f64,
    stat: RestartStat,
}

/// `findSolution("x" fixed)`: the best `y` for a transaction assignment.
fn find_y(
    cfg: &SaConfig,
    instance: &Instance,
    coeffs: &CostCoefficients,
    n_sites: usize,
    cost: &CostConfig,
    x: &[SiteId],
) -> Partitioning {
    match cfg.subproblem {
        SubproblemMode::Greedy => optimal_y_for_x(instance, coeffs, x, n_sites, cost),
        SubproblemMode::IlpBacked { time_limit } => {
            optimal_y_for_x_ilp(instance, coeffs, x, n_sites, cost, time_limit)
        }
    }
}

/// `findSolution("y" fixed)`: the best `x` for an attribute placement.
fn find_x(
    cfg: &SaConfig,
    instance: &Instance,
    coeffs: &CostCoefficients,
    cost: &CostConfig,
    p: &Partitioning,
) -> Partitioning {
    match cfg.subproblem {
        SubproblemMode::Greedy => optimal_x_for_y(instance, coeffs, p, cost),
        SubproblemMode::IlpBacked { time_limit } => {
            optimal_x_for_y_ilp(instance, coeffs, p, cost, time_limit)
        }
    }
}

/// One annealing chain with its full running state. Chains are resumable:
/// [`ChainState::run_levels`] anneals up to a level budget (the portfolio
/// probe) or to freeze, and [`ChainState::finish`] applies the final
/// polish and emits the per-chain statistics.
struct ChainState<'a> {
    cfg: &'a SaConfig,
    instance: &'a Instance,
    coeffs: &'a CostCoefficients,
    cost: &'a CostConfig,
    n_sites: usize,
    restart: usize,
    seed: u64,
    rng: StdRng,
    start: Instant,
    inc: IncrementalCost<'a>,
    current_cost: f64,
    best: Partitioning,
    best_cost: f64,
    tau: f64,
    tau0: f64,
    fix_x: bool,
    levels: usize,
    stale_levels: usize,
    iterations: usize,
    accepted: usize,
    resyncs: usize,
    abs_delta_sum: f64,
    max_drift: f64,
    timed_out: bool,
    frozen: bool,
    cut_off: bool,
    /// Chain-scoped obs handle (parent = this chain's span).
    obs: Obs,
    span: Span,
    /// Per-level (level, tau, accepted, iterations, best_objective6,
    /// at_us) samples, buffered as PODs and rendered into `sa_level`
    /// events at [`ChainState::finish`] — the trace lock and the field
    /// allocations stay off the annealing loop.
    level_log: Vec<(usize, f64, usize, usize, f64, u64)>,
}

impl<'a> ChainState<'a> {
    fn new(
        cfg: &'a SaConfig,
        instance: &'a Instance,
        coeffs: &'a CostCoefficients,
        cost: &'a CostConfig,
        n_sites: usize,
        restart: usize,
        solve_obs: &Obs,
    ) -> Self {
        let seed = cfg.seed.wrapping_add(restart as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = Instant::now();
        let span = solve_obs.span_begin(
            "sa_chain",
            &[("restart", restart.into()), ("seed", seed.into())],
        );
        let obs = solve_obs.under(&span);

        // Line 3 + line 5: random x, S ← findSolution("x") — except for a
        // warm-started chain 0, which begins at the incumbent (or its
        // polish, whichever evaluates cheaper).
        let initial = match (&cfg.warm_start, restart) {
            (Some(warm), 0) => {
                let polished = find_y(cfg, instance, coeffs, n_sites, cost, warm.x());
                let warm_cost = fast_objective6(instance, coeffs, warm, cost);
                let polished_cost = fast_objective6(instance, coeffs, &polished, cost);
                if polished_cost < warm_cost {
                    polished
                } else {
                    warm.clone()
                }
            }
            _ => {
                let x0: Vec<SiteId> = (0..instance.n_txns())
                    .map(|_| SiteId::from_index(rng.gen_range(0..n_sites)))
                    .collect();
                find_y(cfg, instance, coeffs, n_sites, cost, &x0)
            }
        };
        let inc = IncrementalCost::new(instance, coeffs, cost, initial);
        let current_cost = inc.objective6();
        let best = inc.partitioning().clone();
        let best_cost = current_cost;

        // §5.1 initial temperature: 50% = e^(−0.05·C*/τ₀).
        let tau = (cfg.accept_worse_pct * best_cost.max(1e-12)) / std::f64::consts::LN_2;
        Self {
            cfg,
            instance,
            coeffs,
            cost,
            n_sites,
            restart,
            seed,
            rng,
            start,
            inc,
            current_cost,
            best,
            best_cost,
            tau,
            tau0: tau,
            fix_x: true, // line 4
            levels: 0,
            stale_levels: 0,
            iterations: 0,
            accepted: 0,
            resyncs: 0,
            abs_delta_sum: 0.0,
            max_drift: 0.0,
            timed_out: false,
            frozen: false,
            cut_off: false,
            obs,
            span,
            level_log: Vec::new(),
        }
    }

    /// Anneals until frozen, or for at most `budget` more temperature
    /// levels when given (the portfolio probe horizon).
    fn run_levels(&mut self, budget: Option<usize>) {
        let mut remaining = budget;
        while !self.frozen {
            if let Some(r) = &mut remaining {
                if *r == 0 {
                    return;
                }
                *r -= 1;
            }
            self.run_one_level();
        }
    }

    /// One temperature level: `inner_loops` neighborhood candidates, then
    /// the resync + `findSolution` checkpoint and the cooling step.
    fn run_one_level(&mut self) {
        let cfg = self.cfg;
        let n_txns = self.instance.n_txns();
        let n_attrs = self.instance.n_attrs();
        let txn_moves = ((n_txns as f64 * cfg.move_fraction).ceil() as usize).max(1);
        let attr_moves = ((n_attrs as f64 * cfg.move_fraction).ceil() as usize).max(1);

        let improved_at_level_start = self.best_cost;
        for _ in 0..cfg.inner_loops {
            if self.start.elapsed() >= cfg.time_limit {
                self.timed_out = true;
                self.frozen = true;
                return;
            }
            self.iterations += 1;
            // Lines 8–9, incrementally: perturb the non-fixed side of the
            // running state (each mutation updates the objective in
            // O(moved terms)).
            let mark = self.inc.mark();
            if self.fix_x {
                // Move ~10% of transactions to uniform random sites;
                // forced replicas keep the layout feasible.
                for _ in 0..txn_moves {
                    let t = TxnId::from_index(self.rng.gen_range(0..n_txns));
                    let s = SiteId::from_index(self.rng.gen_range(0..self.n_sites));
                    self.inc.apply_txn_move(t, s);
                }
            } else {
                // Walk replication of ~10% of attributes in both
                // directions: a replicated attribute sheds a random
                // droppable copy half the time, otherwise replication
                // extends by one site.
                for _ in 0..attr_moves {
                    let a = AttrId::from_index(self.rng.gen_range(0..n_attrs));
                    let reps = self.inc.partitioning().replication(a);
                    if reps > 1 && self.rng.gen::<f64>() < 0.5 {
                        let k = self.rng.gen_range(0..reps);
                        let site = self.inc.partitioning().attr_sites(a).nth(k);
                        if let Some(s) = site {
                            // No-op when the copy is forced by a reader.
                            self.inc.apply_attr_drop(a, s);
                        }
                    } else if reps < self.n_sites {
                        loop {
                            let s = SiteId::from_index(self.rng.gen_range(0..self.n_sites));
                            if self.inc.apply_attr_replica(a, s) {
                                break;
                            }
                        }
                    }
                }
            }
            // Lines 11–12: accept or roll back via the undo log.
            let cand_cost = self.inc.objective6();
            let delta = cand_cost - self.current_cost;
            if delta <= 0.0 || self.rng.gen::<f64>() < (-delta / self.tau).exp() {
                self.inc.commit();
                self.current_cost = cand_cost;
                self.accepted += 1;
                self.abs_delta_sum += delta.abs();
                if self.current_cost < self.best_cost {
                    self.best = self.inc.partitioning().clone();
                    self.best_cost = self.current_cost;
                }
            } else {
                self.inc.revert(mark);
            }
            self.fix_x = !self.fix_x; // line 13 (inside the inner loop)
        }

        // Temperature-level checkpoint 1 — drift guard: full recompute of
        // the accumulators, bounding float error from the add/subtract
        // chains of the inner loop.
        self.max_drift = self.max_drift.max(self.inc.resync());
        self.resyncs += 1;
        self.current_cost = self.inc.objective6();
        // Checkpoint 2 — line 10's exact subproblem re-optimization
        // (`findSolution`), once per level instead of once per move.
        // `y | x` rebuilds the placement from scratch, pruning any replica
        // bloat the neighborhood walk left behind; `x | y` then re-homes
        // transactions.
        let polished_y = find_y(
            self.cfg,
            self.instance,
            self.coeffs,
            self.n_sites,
            self.cost,
            self.inc.partitioning().x(),
        );
        let polished_x = find_x(self.cfg, self.instance, self.coeffs, self.cost, &polished_y);
        for polished in [polished_y, polished_x] {
            let c = fast_objective6(self.instance, self.coeffs, &polished, self.cost);
            if c < self.current_cost {
                self.inc = IncrementalCost::new(self.instance, self.coeffs, self.cost, polished);
                self.resyncs += 1;
                self.current_cost = c;
                if c < self.best_cost {
                    self.best = self.inc.partitioning().clone();
                    self.best_cost = c;
                }
            }
        }

        self.tau *= cfg.rho;
        self.levels += 1;
        // One POD push per temperature level (not per move); the records
        // themselves are built in `finish`, so neither the inner loop
        // above nor the level boundary touches the trace lock.
        if self.obs.is_enabled() {
            self.level_log.push((
                self.levels,
                self.tau,
                self.accepted,
                self.iterations,
                self.best_cost,
                self.obs.timestamp_us(),
            ));
        }
        if self.best_cost < improved_at_level_start - 1e-12 {
            self.stale_levels = 0;
        } else {
            self.stale_levels += 1;
        }
        if self.stale_levels >= cfg.freeze_levels || self.tau < cfg.min_temp_ratio * self.tau0 {
            self.frozen = true;
        }
    }

    /// Final polish (re-derive the minimal-cost `y` for the best `x`) and
    /// per-chain statistics.
    fn finish(mut self) -> Chain {
        let polished = find_y(
            self.cfg,
            self.instance,
            self.coeffs,
            self.n_sites,
            self.cost,
            self.best.x(),
        );
        let polished_cost = fast_objective6(self.instance, self.coeffs, &polished, self.cost);
        if polished_cost < self.best_cost {
            self.best = polished;
            self.best_cost = polished_cost;
        }
        let rejected = self.iterations - self.accepted;
        let mean_abs_delta = if self.accepted > 0 {
            self.abs_delta_sum / self.accepted as f64
        } else {
            0.0
        };
        if self.obs.is_enabled() {
            for &(level, tau, accepted, iterations, best, at_us) in &self.level_log {
                self.obs.event_at(
                    "sa_level",
                    at_us,
                    &[
                        ("level", level.into()),
                        ("tau", tau.into()),
                        ("accepted", accepted.into()),
                        ("iterations", iterations.into()),
                        ("best_objective6", best.into()),
                    ],
                );
            }
            self.obs
                .counter_add("sa_moves_total", self.iterations as f64);
            self.obs
                .counter_add("sa_accepted_total", self.accepted as f64);
            self.obs.counter_add("sa_rejected_total", rejected as f64);
            self.obs
                .counter_add("sa_resyncs_total", self.resyncs as f64);
            if self.cut_off {
                self.obs.counter_inc("sa_chains_cut_total");
            }
        }
        self.obs.span_end(
            self.span,
            &[
                ("seed", self.seed.into()),
                ("levels", self.levels.into()),
                ("iterations", self.iterations.into()),
                ("accepted", self.accepted.into()),
                ("rejected", rejected.into()),
                ("resyncs", self.resyncs.into()),
                ("mean_abs_delta", mean_abs_delta.into()),
                ("objective6", self.best_cost.into()),
                ("cut_off", self.cut_off.into()),
                ("timed_out", self.timed_out.into()),
            ],
        );
        Chain {
            stat: RestartStat {
                restart: self.restart,
                seed: self.seed,
                objective6: self.best_cost,
                objective4: crate::cost::objective::fast_objective4(self.coeffs, &self.best),
                levels: self.levels,
                iterations: self.iterations,
                accepted: self.accepted,
                rejected,
                resyncs: self.resyncs,
                mean_abs_delta,
                max_drift: self.max_drift,
                elapsed: self.start.elapsed(),
                timed_out: self.timed_out,
                cut_off: self.cut_off,
                winner: false,
            },
            best: self.best,
            best_cost: self.best_cost,
        }
    }
}

/// The simulated-annealing solver.
#[derive(Debug, Clone, Default)]
pub struct SaSolver {
    /// Solver configuration.
    pub config: SaConfig,
}

impl SaSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// Heuristically minimizes objective (6) for `instance` on `n_sites`.
    pub fn solve(
        &self,
        instance: &Instance,
        n_sites: usize,
        cost: &CostConfig,
    ) -> Result<SolveReport, CoreError> {
        cost.validate()?;
        if n_sites == 0 {
            return Err(CoreError::Model(vpart_model::ModelError::NoSites));
        }
        let cfg = &self.config;
        if !(cfg.rho > 0.0 && cfg.rho < 1.0) {
            return Err(CoreError::BadConfig(format!(
                "rho must be in (0,1), got {}",
                cfg.rho
            )));
        }
        if cfg.inner_loops == 0 {
            return Err(CoreError::BadConfig("inner_loops must be positive".into()));
        }
        if cfg.restarts == 0 {
            return Err(CoreError::BadConfig("restarts must be positive".into()));
        }
        if cfg.threads == 0 {
            return Err(CoreError::BadConfig("threads must be positive".into()));
        }
        if cfg.probe_levels == Some(0) {
            return Err(CoreError::BadConfig("probe_levels must be positive".into()));
        }
        if let Some(warm) = &cfg.warm_start {
            if warm.n_sites() != n_sites {
                return Err(CoreError::BadConfig(format!(
                    "warm start has {} sites, solve asked for {n_sites}",
                    warm.n_sites()
                )));
            }
            warm.validate(instance, false)?;
        }
        let start = Instant::now();
        let solve_span = cfg.obs.span_begin(
            "sa_solve",
            &[
                ("restarts", cfg.restarts.into()),
                ("n_sites", n_sites.into()),
                ("seed", cfg.seed.into()),
                ("warm_started", cfg.warm_start.is_some().into()),
            ],
        );
        let solve_obs = cfg.obs.under(&solve_span);
        let coeffs = CostCoefficients::compute(instance, cost);

        // Chains are lazily constructed inside the worker threads (the
        // initial findSolution pass is a full temperature-level's worth
        // of work, so serializing it on the caller thread would undercut
        // multi-thread solves).
        let make = |r: usize| ChainState::new(cfg, instance, &coeffs, cost, n_sites, r, &solve_obs);
        let mut states: Vec<Option<ChainState>> = (0..cfg.restarts).map(|_| None).collect();

        // Portfolio mode: probe every chain for a fixed level budget, cut
        // the dominated half against the shared probe incumbent, and only
        // anneal the survivors to freeze. The phase boundary and ranking
        // are deterministic, so this stays reproducible and
        // thread-count-independent.
        let mut cut_count = 0usize;
        match cfg.probe_levels {
            Some(probe) if cfg.restarts > 1 => {
                run_parallel(&mut states, cfg.threads, Some(probe), &make);
                let chain = |i: usize| states[i].as_ref().expect("probed chain exists");
                let keep = cfg.restarts.div_ceil(2);
                let mut order: Vec<usize> = (0..states.len()).collect();
                order.sort_by(|&i, &j| {
                    chain(i)
                        .best_cost
                        .total_cmp(&chain(j).best_cost)
                        .then(i.cmp(&j))
                });
                for &i in &order[keep..] {
                    let state = states[i].as_mut().expect("probed chain exists");
                    if !state.frozen {
                        state.cut_off = true;
                        state.frozen = true;
                        cut_count += 1;
                    }
                }
                run_parallel(&mut states, cfg.threads, None, &make);
            }
            _ => run_parallel(&mut states, cfg.threads, None, &make),
        }
        let workers = cfg.threads.min(cfg.restarts);
        let chains: Vec<Chain> = states
            .into_iter()
            .map(|s| s.expect("every chain ran").finish())
            .collect();

        // Deterministic merge: lowest objective (6); ties break toward the
        // lowest restart index (= lowest chain seed).
        let winner = chains
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.best_cost.total_cmp(&b.best_cost).then_with(|| i.cmp(j)))
            .map(|(i, _)| i)
            .expect("restarts >= 1");
        let mut stats: Vec<RestartStat> = Vec::with_capacity(chains.len());
        let mut best: Option<Partitioning> = None;
        for (i, chain) in chains.into_iter().enumerate() {
            let mut stat = chain.stat;
            stat.winner = i == winner;
            if stat.winner {
                best = Some(chain.best);
            }
            stats.push(stat);
        }
        let best = best.expect("winner chain exists");
        best.validate(instance, false)?;

        let breakdown = evaluate(instance, &best, cost);
        let levels: usize = stats.iter().map(|s| s.levels).sum();
        let iterations: usize = stats.iter().map(|s| s.iterations).sum();
        let accepted: usize = stats.iter().map(|s| s.accepted).sum();
        let portfolio = if cut_count > 0 {
            format!(", {cut_count} chain(s) cut at probe")
        } else {
            String::new()
        };
        let elapsed = start.elapsed();
        if cfg.obs.is_enabled() {
            let ratio = if iterations > 0 {
                accepted as f64 / iterations as f64
            } else {
                0.0
            };
            cfg.obs.gauge_set("sa_acceptance_ratio", ratio);
            cfg.obs
                .observe_wall("solve_wall_seconds", elapsed.as_secs_f64());
        }
        cfg.obs.span_end(
            solve_span,
            &[
                ("winner_seed", stats[winner].seed.into()),
                ("objective6", breakdown.objective6.into()),
                ("chains_cut", cut_count.into()),
            ],
        );
        Ok(SolveReport {
            partitioning: best,
            breakdown,
            termination: Termination::Heuristic,
            elapsed,
            detail: format!(
                "sa: {} restart(s) on {} thread(s), {levels} levels, {iterations} iterations, \
                 {accepted} accepted, seed {} (winner {}{portfolio}{})",
                cfg.restarts,
                workers,
                cfg.seed,
                stats[winner].seed,
                if cfg.warm_start.is_some() {
                    ", warm-started"
                } else {
                    ""
                },
            ),
            restarts: stats,
        })
    }
}

/// Runs `run_levels(budget)` on every chain, split over at most `threads`
/// scoped OS threads in contiguous blocks; empty slots are constructed
/// with `make(restart_index)` first, so chain initialization happens on
/// the worker threads too. Chains never migrate between slots and the
/// caller inspects them by index, so results are independent of thread
/// count and completion order.
fn run_parallel<'a, F>(
    states: &mut [Option<ChainState<'a>>],
    threads: usize,
    budget: Option<usize>,
    make: &F,
) where
    F: Fn(usize) -> ChainState<'a> + Sync,
{
    let workers = threads.min(states.len());
    if workers <= 1 {
        for (i, slot) in states.iter_mut().enumerate() {
            slot.get_or_insert_with(|| make(i)).run_levels(budget);
        }
        return;
    }
    let chunk = states.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (w, block) in states.chunks_mut(chunk).enumerate() {
            let first = w * chunk;
            handles.push(scope.spawn(move || {
                for (i, slot) in block.iter_mut().enumerate() {
                    slot.get_or_insert_with(|| make(first + i))
                        .run_levels(budget);
                }
            }));
        }
        for h in handles {
            h.join().expect("annealing chain panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    fn separable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 10.0), ("r2", 10.0)]).unwrap();
        sb.table("S", &[("s1", 10.0), ("s2", 10.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("sep", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn finds_the_separable_optimum() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(42))
            .solve(&ins, 2, &cfg)
            .unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.termination, Termination::Heuristic);
        assert_eq!(r.breakdown.objective4, 40.0, "known optimum");
    }

    #[test]
    fn deterministic_per_seed() {
        let ins = separable();
        let cfg = CostConfig::default();
        let a = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        let b = SaSolver::new(SaConfig::fast_deterministic(7))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(a.partitioning, b.partitioning);
        assert_eq!(a.breakdown.objective4, b.breakdown.objective4);
    }

    #[test]
    fn deterministic_regardless_of_thread_count() {
        // The documented guarantee: for a fixed (seed, restarts), results
        // are identical whatever `threads` is — chain seeds derive from
        // the restart index and the merge ignores completion order. The
        // guarantee is conditional on no chain hitting its wall-clock
        // limit; this instance freezes orders of magnitude below the 30 s
        // budget, and the `timed_out` assertion documents the
        // precondition. Runs both classic multi-start and the portfolio
        // cut-off mode.
        let ins = separable();
        let cfg = CostConfig::default();
        for probe in [None, Some(2)] {
            let solve = |threads: usize| {
                let mut sa = SaConfig::fast_deterministic(3).multi_start(4, threads);
                sa.probe_levels = probe;
                let r = SaSolver::new(sa).solve(&ins, 2, &cfg).unwrap();
                assert!(
                    r.restarts.iter().all(|s| !s.timed_out),
                    "tiny instance must freeze naturally"
                );
                r
            };
            let one = solve(1);
            for threads in [2, 3, 8] {
                let multi = solve(threads);
                assert_eq!(one.partitioning, multi.partitioning, "threads={threads}");
                assert_eq!(
                    one.breakdown.objective6, multi.breakdown.objective6,
                    "threads={threads}"
                );
                let costs =
                    |r: &SolveReport| r.restarts.iter().map(|s| s.objective6).collect::<Vec<_>>();
                assert_eq!(costs(&one), costs(&multi), "threads={threads}");
                let cuts =
                    |r: &SolveReport| r.restarts.iter().map(|s| s.cut_off).collect::<Vec<_>>();
                assert_eq!(cuts(&one), cuts(&multi), "threads={threads}");
            }
        }
    }

    #[test]
    fn multi_start_reports_stats_and_never_loses_to_single_start() {
        let ins = separable();
        let cfg = CostConfig::default();
        let single = SaSolver::new(SaConfig::fast_deterministic(5))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(single.restarts.len(), 1);
        assert!(single.restarts[0].winner);
        let multi = SaSolver::new(SaConfig::fast_deterministic(5).multi_start(4, 2))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(multi.restarts.len(), 4);
        // Chain 0 of the multi-start IS the single-start chain (seed + 0),
        // so best-of-4 can only match or beat it.
        assert!(multi.breakdown.objective6 <= single.breakdown.objective6 + 1e-9);
        assert_eq!(multi.restarts.iter().filter(|s| s.winner).count(), 1);
        for (i, stat) in multi.restarts.iter().enumerate() {
            assert_eq!(stat.restart, i);
            assert_eq!(stat.seed, 5 + i as u64);
            assert!(stat.iterations > 0);
            assert!(!stat.cut_off, "classic multi-start never cuts");
            assert!(stat.max_drift <= 1e-9 * (1.0 + stat.objective6));
        }
        // The winner's chain cost matches the reported breakdown.
        let winner = multi.restarts.iter().find(|s| s.winner).unwrap();
        assert!((winner.objective6 - multi.breakdown.objective6).abs() <= 1e-9);
    }

    #[test]
    fn portfolio_cuts_dominated_chains_and_keeps_the_winner() {
        let ins = separable();
        let cfg = CostConfig::default();
        let classic = SaSolver::new(SaConfig::fast_deterministic(11).multi_start(4, 2))
            .solve(&ins, 2, &cfg)
            .unwrap();
        let adaptive = SaSolver::new(
            SaConfig::fast_deterministic(11)
                .multi_start(4, 2)
                .adaptive(2),
        )
        .solve(&ins, 2, &cfg)
        .unwrap();
        // At most half the chains survive past the probe; the winner is
        // never a cut chain.
        let cut = adaptive.restarts.iter().filter(|s| s.cut_off).count();
        assert!(cut <= 2, "keep at least ⌈restarts/2⌉");
        let winner = adaptive.restarts.iter().find(|s| s.winner).unwrap();
        assert!(!winner.cut_off);
        // Survivors replay the classic chains exactly, so the adaptive
        // winner can never beat the classic best (it only skips work).
        assert!(adaptive.breakdown.objective6 >= classic.breakdown.objective6 - 1e-9);
        // Cut chains stop at the probe horizon.
        for s in adaptive.restarts.iter().filter(|s| s.cut_off) {
            assert!(s.levels <= 2);
        }
    }

    #[test]
    fn warm_start_never_regresses_and_skips_the_random_init() {
        let ins = separable();
        let cfg = CostConfig::default();
        // A deliberately bad but feasible incumbent: everything on site 0.
        let incumbent = Partitioning::single_site(&ins, 2).unwrap();
        let incumbent_cost = {
            let coeffs = CostCoefficients::compute(&ins, &cfg);
            fast_objective6(&ins, &coeffs, &incumbent, &cfg)
        };
        let warm = SaSolver::new(SaConfig::fast_deterministic(9).warm_started(incumbent.clone()))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert!(warm.breakdown.objective6 <= incumbent_cost + 1e-9);
        // From the separable optimum, the warm re-solve stays there.
        let optimum = warm.partitioning.clone();
        let stay = SaSolver::new(SaConfig::fast_deterministic(9).warm_started(optimum))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(stay.breakdown.objective4, 40.0);
        assert!(stay.detail.contains("warm-started"));
    }

    #[test]
    fn warm_start_shape_is_validated() {
        let ins = separable();
        let cfg = CostConfig::default();
        let incumbent = Partitioning::single_site(&ins, 3).unwrap();
        assert!(matches!(
            SaSolver::new(SaConfig::fast_deterministic(1).warm_started(incumbent))
                .solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
    }

    #[test]
    fn single_site_degenerates_to_trivial_layout() {
        let ins = separable();
        let cfg = CostConfig::default();
        let r = SaSolver::new(SaConfig::fast_deterministic(1))
            .solve(&ins, 1, &cfg)
            .unwrap();
        // With one site there is exactly one feasible layout.
        let trivial = Partitioning::single_site(&ins, 1).unwrap();
        assert_eq!(
            r.breakdown.objective4,
            evaluate(&ins, &trivial, &cfg).objective4
        );
    }

    #[test]
    fn rejects_bad_config() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(1);
        sa.rho = 1.5;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.inner_loops = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.restarts = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.threads = 0;
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        let mut sa = SaConfig::fast_deterministic(1);
        sa.probe_levels = Some(0);
        assert!(matches!(
            SaSolver::new(sa).solve(&ins, 2, &cfg),
            Err(CoreError::BadConfig(_))
        ));
        assert!(matches!(
            SaSolver::default().solve(&ins, 0, &cfg),
            Err(CoreError::Model(vpart_model::ModelError::NoSites))
        ));
    }

    #[test]
    fn obs_records_chain_spans_and_counters() {
        let ins = separable();
        let cfg = CostConfig::default();
        let obs = Obs::enabled();
        let mut sa = SaConfig::fast_deterministic(2).multi_start(2, 2);
        sa.obs = obs.clone();
        let r = SaSolver::new(sa).solve(&ins, 2, &cfg).unwrap();

        // The enriched stats are internally consistent.
        let mut iterations = 0usize;
        for s in &r.restarts {
            assert_eq!(s.accepted + s.rejected, s.iterations);
            assert!(s.resyncs >= s.levels, "one drift-guard resync per level");
            iterations += s.iterations;
        }

        let text = obs.metrics_prometheus();
        assert!(text.contains(&format!("sa_moves_total {iterations}")));
        assert!(text.contains("sa_acceptance_ratio"));
        assert!(text.contains("solve_wall_seconds_bucket"));

        // One sa_solve span, one sa_chain span per restart, nested.
        let trace = obs.trace_json_lines();
        let spans: Vec<serde_json::Value> = trace
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .filter(|v: &serde_json::Value| v.get("type").and_then(|t| t.as_str()) == Some("span"))
            .collect();
        let solve_id = spans
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some("sa_solve"))
            .and_then(|s| s.get("id"))
            .and_then(|i| i.as_u64())
            .expect("sa_solve span recorded");
        let chains: Vec<_> = spans
            .iter()
            .filter(|s| s.get("name").and_then(|n| n.as_str()) == Some("sa_chain"))
            .collect();
        assert_eq!(chains.len(), 2);
        for c in chains {
            assert_eq!(c.get("parent").and_then(|p| p.as_u64()), Some(solve_id));
        }

        // A disabled config records nothing and still solves identically.
        let quiet = SaSolver::new(SaConfig::fast_deterministic(2).multi_start(2, 2))
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert_eq!(quiet.partitioning, r.partitioning);
    }

    #[test]
    fn ilp_backed_subproblems_work_end_to_end() {
        let ins = separable();
        let cfg = CostConfig::default();
        let mut sa = SaConfig::fast_deterministic(3);
        sa.inner_loops = 6;
        sa.freeze_levels = 2;
        sa.subproblem = SubproblemMode::IlpBacked {
            time_limit: Duration::from_secs(5),
        };
        let r = SaSolver::new(sa).solve(&ins, 2, &cfg).unwrap();
        r.partitioning.validate(&ins, false).unwrap();
        assert_eq!(r.breakdown.objective4, 40.0);
    }
}
