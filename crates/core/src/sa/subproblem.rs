//! The `findSolution(fix)` subproblems of Algorithm 1.
//!
//! When one decision vector is fixed, objective (4) decomposes:
//!
//! * **`y` given `x`** — per `(a, s)` cell: placing attribute `a` on site
//!   `s` costs `Σ_{t on s} c1(a,t) + c2(a)`. Cells read by a transaction on
//!   `s` are forced (single-sitedness); any other cell is included iff its
//!   marginal is negative; if an attribute ends up nowhere it is placed on
//!   its cheapest site. This is the exact minimizer of the λ-weighted cost
//!   part (and of the whole objective when `λ = 1`).
//! * **`x` given `y`** — per transaction: only sites hosting the whole read
//!   set are feasible; the cost of site `s` is `Σ_a c1(a,t)·y[a,s]`; ties
//!   are broken toward the site with the lowest accumulated read work,
//!   which nudges the max-load term down.
//!
//! ILP-backed variants (`*_ilp`) solve the same subproblems as small MIPs
//! including the `(1−λ)·m` term exactly — the fidelity mode corresponding
//! to the paper's use of GLPK inside the SA loop (30 s per iteration).

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use std::time::Duration;
use vpart_ilp::{Cmp, LinExpr, Model, SolveParams, VarKind};
use vpart_model::{AttrId, BitMatrix, Instance, Partitioning, SiteId, TxnId};

/// Exact (λ-part) re-optimization of `y` for a fixed transaction
/// assignment `x`. Returns a feasible partitioning.
pub fn optimal_y_for_x(
    instance: &Instance,
    coeffs: &CostCoefficients,
    x: &[SiteId],
    n_sites: usize,
    cost: &CostConfig,
) -> Partitioning {
    let n_attrs = instance.n_attrs();
    let lambda = cost.lambda;
    // marginal[a][s] = λ·(Σ_{t on s} c1(a,t) + c2(a)); start with c2.
    let mut marginal = vec![0.0f64; n_attrs * n_sites];
    for a in 0..n_attrs {
        let c2 = coeffs.c2(AttrId::from_index(a));
        for s in 0..n_sites {
            marginal[a * n_sites + s] = lambda * c2;
        }
    }
    for (t, &site) in x.iter().enumerate() {
        for &(a, c1, _) in coeffs.txn_terms(TxnId::from_index(t)) {
            marginal[a.index() * n_sites + site.index()] += lambda * c1;
        }
    }

    let mut y = BitMatrix::new(n_attrs, n_sites);
    // Forced placements (φ closure).
    for (t, &site) in x.iter().enumerate() {
        for &a in instance.read_set(TxnId::from_index(t)) {
            y.set(a.index(), site.index());
        }
    }
    for a in 0..n_attrs {
        let mut placed = y.row_count(a) > 0;
        // Optional replicas with negative marginal.
        for s in 0..n_sites {
            if !y.get(a, s) && marginal[a * n_sites + s] < 0.0 {
                y.set(a, s);
                placed = true;
            }
        }
        if !placed {
            // Nowhere forced and nothing profitable: cheapest single site.
            let best = (0..n_sites)
                .min_by(|&i, &j| marginal[a * n_sites + i].total_cmp(&marginal[a * n_sites + j]))
                .expect("n_sites >= 1");
            y.set(a, best);
        }
    }
    Partitioning::from_parts(n_sites, x.to_vec(), y).expect("shapes consistent")
}

/// Exact (λ-part, greedy tie-break on load) re-optimization of `x` for a
/// fixed attribute placement `y`. Transactions whose read set is hosted
/// nowhere keep their current site *after* extending `y` minimally (cannot
/// happen when `part` was feasible, since neighborhoods only add replicas).
pub fn optimal_x_for_y(
    instance: &Instance,
    coeffs: &CostCoefficients,
    part: &Partitioning,
    cost: &CostConfig,
) -> Partitioning {
    let n_sites = part.n_sites();
    let lambda = cost.lambda;
    let mut new_x = Vec::with_capacity(part.n_txns());
    let mut site_load = vec![0.0f64; n_sites];
    // Seed the load with the y-induced write work (placement-independent).
    for a in 0..part.n_attrs() {
        let attr = AttrId::from_index(a);
        let c4 = coeffs.c4(attr);
        if c4 != 0.0 {
            for s in part.attr_sites(attr) {
                site_load[s.index()] += c4;
            }
        }
    }
    for t in 0..part.n_txns() {
        let txn = TxnId::from_index(t);
        let read_set = instance.read_set(txn);
        let mut best: Option<(usize, f64, f64)> = None; // (site, cost, load)
        for s in 0..n_sites {
            let feasible = read_set
                .iter()
                .all(|&a| part.has_attr(a, SiteId::from_index(s)));
            if !feasible {
                continue;
            }
            let mut c = 0.0;
            let mut work = 0.0;
            for &(a, c1, c3) in coeffs.txn_terms(txn) {
                if part.has_attr(a, SiteId::from_index(s)) {
                    c += lambda * c1;
                    work += c3;
                }
            }
            let cand_load = site_load[s] + work;
            let better = match best {
                None => true,
                Some((_, bc, bl)) => c < bc - 1e-12 || (c <= bc + 1e-12 && cand_load < bl),
            };
            if better {
                best = Some((s, c, cand_load));
            }
        }
        let (site, _, load) = best.unwrap_or((part.site_of(txn).index(), 0.0, 0.0));
        site_load[site] = load.max(site_load[site]);
        new_x.push(SiteId::from_index(site));
    }
    let mut out =
        Partitioning::from_parts(n_sites, new_x, part.y().clone()).expect("shapes consistent");
    out.repair_single_sitedness(instance);
    out
}

/// ILP-backed `y | x`: exact including the `(1−λ)·m` load term.
pub fn optimal_y_for_x_ilp(
    instance: &Instance,
    coeffs: &CostCoefficients,
    x: &[SiteId],
    n_sites: usize,
    cost: &CostConfig,
    time_limit: Duration,
) -> Partitioning {
    let n_attrs = instance.n_attrs();
    let lambda = cost.lambda;
    let mut model = Model::minimize();
    // Aggregate c1/c3 per (a, s) under the fixed x.
    let mut k1 = vec![0.0f64; n_attrs * n_sites];
    let mut k3 = vec![0.0f64; n_attrs * n_sites];
    for (t, &site) in x.iter().enumerate() {
        for &(a, c1, c3) in coeffs.txn_terms(TxnId::from_index(t)) {
            k1[a.index() * n_sites + site.index()] += c1;
            k3[a.index() * n_sites + site.index()] += c3;
        }
    }
    let mut forced = BitMatrix::new(n_attrs, n_sites);
    for (t, &site) in x.iter().enumerate() {
        for &a in instance.read_set(TxnId::from_index(t)) {
            forced.set(a.index(), site.index());
        }
    }
    let y: Vec<Vec<_>> = (0..n_attrs)
        .map(|a| {
            (0..n_sites)
                .map(|s| {
                    let obj = lambda * (k1[a * n_sites + s] + coeffs.c2(AttrId::from_index(a)));
                    let lo = if forced.get(a, s) { 1.0 } else { 0.0 };
                    model.add_var(format!("y_{a}_{s}"), VarKind::Integer, lo, 1.0, obj)
                })
                .collect()
        })
        .collect();
    for a in 0..n_attrs {
        let expr: LinExpr = (0..n_sites).map(|s| (y[a][s], 1.0)).collect();
        model.add_constraint(format!("cover_{a}"), expr, Cmp::Ge, 1.0);
    }
    if lambda < 1.0 {
        let m = model.add_var("m", VarKind::Continuous, 0.0, f64::INFINITY, 1.0 - lambda);
        for s in 0..n_sites {
            let mut expr = LinExpr::new();
            for a in 0..n_attrs {
                let w = k3[a * n_sites + s] + coeffs.c4(AttrId::from_index(a));
                if w != 0.0 {
                    expr.push(y[a][s], w);
                }
            }
            expr.push(m, -1.0);
            model.add_constraint(format!("load_{s}"), expr, Cmp::Le, 0.0);
        }
    }
    let params = SolveParams {
        time_limit,
        ..SolveParams::default()
    };
    match model.solve(&params) {
        Ok(sol) if sol.has_solution() => {
            let mut ym = BitMatrix::new(n_attrs, n_sites);
            for a in 0..n_attrs {
                for s in 0..n_sites {
                    if sol.values[y[a][s].0] > 0.5 {
                        ym.set(a, s);
                    }
                }
            }
            Partitioning::from_parts(n_sites, x.to_vec(), ym).expect("shapes consistent")
        }
        // Fall back to the greedy closed form on any solver hiccup.
        _ => optimal_y_for_x(instance, coeffs, x, n_sites, cost),
    }
}

/// ILP-backed `x | y`: exact including the `(1−λ)·m` load term.
pub fn optimal_x_for_y_ilp(
    instance: &Instance,
    coeffs: &CostCoefficients,
    part: &Partitioning,
    cost: &CostConfig,
    time_limit: Duration,
) -> Partitioning {
    let n_sites = part.n_sites();
    let n_txns = part.n_txns();
    let lambda = cost.lambda;
    let mut model = Model::minimize();
    let x: Vec<Vec<_>> = (0..n_txns)
        .map(|t| {
            let txn = TxnId::from_index(t);
            (0..n_sites)
                .map(|s| {
                    let site = SiteId::from_index(s);
                    let feasible = instance
                        .read_set(txn)
                        .iter()
                        .all(|&a| part.has_attr(a, site));
                    let mut obj = 0.0;
                    for &(a, c1, _) in coeffs.txn_terms(txn) {
                        if part.has_attr(a, site) {
                            obj += lambda * c1;
                        }
                    }
                    let hi = if feasible { 1.0 } else { 0.0 };
                    model.add_var(format!("x_{t}_{s}"), VarKind::Integer, 0.0, hi, obj)
                })
                .collect()
        })
        .collect();
    for t in 0..n_txns {
        let expr: LinExpr = (0..n_sites).map(|s| (x[t][s], 1.0)).collect();
        model.add_constraint(format!("assign_{t}"), expr, Cmp::Eq, 1.0);
    }
    if lambda < 1.0 {
        let m = model.add_var("m", VarKind::Continuous, 0.0, f64::INFINITY, 1.0 - lambda);
        for s in 0..n_sites {
            let site = SiteId::from_index(s);
            let mut base = 0.0; // y-induced write work on s
            for a in 0..part.n_attrs() {
                let attr = AttrId::from_index(a);
                if part.has_attr(attr, site) {
                    base += coeffs.c4(attr);
                }
            }
            let mut expr = LinExpr::new();
            for t in 0..n_txns {
                let txn = TxnId::from_index(t);
                let mut work = 0.0;
                for &(a, _, c3) in coeffs.txn_terms(txn) {
                    if part.has_attr(a, site) {
                        work += c3;
                    }
                }
                if work != 0.0 {
                    expr.push(x[t][s], work);
                }
            }
            expr.push(m, -1.0);
            model.add_constraint(format!("load_{s}"), expr, Cmp::Le, -base);
        }
    }
    let params = SolveParams {
        time_limit,
        ..SolveParams::default()
    };
    match model.solve(&params) {
        Ok(sol) if sol.has_solution() => {
            let xs: Vec<SiteId> = (0..n_txns)
                .map(|t| {
                    let s = (0..n_sites)
                        .max_by(|&i, &j| sol.values[x[t][i].0].total_cmp(&sol.values[x[t][j].0]))
                        .expect("n_sites >= 1");
                    SiteId::from_index(s)
                })
                .collect();
            let mut out =
                Partitioning::from_parts(n_sites, xs, part.y().clone()).expect("shapes consistent");
            out.repair_single_sitedness(instance);
            out
        }
        _ => optimal_x_for_y(instance, coeffs, part, cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::objective::{evaluate, fast_objective4};
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 10.0), ("b", 1.0)]).unwrap();
        sb.table("S", &[("c", 10.0), ("d", 1.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2)]))
            .unwrap();
        let q2 = wb
            .add_query(QuerySpec::write("q2").access(&[AttrId(1)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        wb.transaction("T2", &[q2]).unwrap();
        Instance::new("sub", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn y_given_x_is_feasible_and_exact_for_lambda_one() {
        let ins = instance();
        let cfg = CostConfig::default().with_lambda(1.0);
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let x = vec![SiteId(0), SiteId(1), SiteId(0)];
        let part = optimal_y_for_x(&ins, &coeffs, &x, 2, &cfg);
        part.validate(&ins, false).unwrap();
        // Brute force over all y assignments (2 attrs touched per site
        // would be 2^(4·2) = 256 options).
        let n_attrs = ins.n_attrs();
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << (n_attrs * 2)) {
            let mut y = BitMatrix::new(n_attrs, 2);
            for cell in 0..n_attrs * 2 {
                if mask >> cell & 1 == 1 {
                    y.set(cell / 2, cell % 2);
                }
            }
            let cand = match Partitioning::from_parts(2, x.clone(), y) {
                Ok(p) => p,
                Err(_) => continue,
            };
            if cand.validate(&ins, false).is_err() {
                continue;
            }
            best = best.min(fast_objective4(&coeffs, &cand));
        }
        let got = fast_objective4(&coeffs, &part);
        assert!(
            (got - best).abs() < 1e-9,
            "greedy y {got} vs brute force {best}"
        );
    }

    #[test]
    fn x_given_y_picks_cheapest_feasible_site() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        // y: R fully on site 0, S fully on site 1.
        let mut y = BitMatrix::new(4, 2);
        y.set(0, 0);
        y.set(1, 0);
        y.set(2, 1);
        y.set(3, 1);
        let part = Partitioning::from_parts(2, vec![SiteId(0); 3], y).unwrap();
        let opt = optimal_x_for_y(&ins, &coeffs, &part, &cfg);
        opt.validate(&ins, false).unwrap();
        // T0 reads a (site 0 only) → site 0; T1 reads c → site 1.
        assert_eq!(opt.site_of(TxnId(0)), SiteId(0));
        assert_eq!(opt.site_of(TxnId(1)), SiteId(1));
    }

    #[test]
    fn ilp_backed_variants_match_or_beat_greedy() {
        let ins = instance();
        let cfg = CostConfig::default(); // λ = 0.1: load matters
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let x = vec![SiteId(0), SiteId(1), SiteId(1)];
        let greedy = optimal_y_for_x(&ins, &coeffs, &x, 2, &cfg);
        let exact = optimal_y_for_x_ilp(&ins, &coeffs, &x, 2, &cfg, Duration::from_secs(10));
        exact.validate(&ins, false).unwrap();
        let g6 = evaluate(&ins, &greedy, &cfg).objective6;
        let e6 = evaluate(&ins, &exact, &cfg).objective6;
        assert!(e6 <= g6 + 1e-9, "ilp {e6} worse than greedy {g6}");

        let gx = optimal_x_for_y(&ins, &coeffs, &greedy, &cfg);
        let ex = optimal_x_for_y_ilp(&ins, &coeffs, &greedy, &cfg, Duration::from_secs(10));
        ex.validate(&ins, false).unwrap();
        let gx6 = evaluate(&ins, &gx, &cfg).objective6;
        let ex6 = evaluate(&ins, &ex, &cfg).objective6;
        assert!(ex6 <= gx6 + 1e-9, "ilp {ex6} worse than greedy {gx6}");
    }

    #[test]
    fn unread_attributes_get_single_cheapest_placement() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = optimal_y_for_x(&ins, &coeffs, &[SiteId(0), SiteId(1), SiteId(0)], 2, &cfg);
        // b (written, never read) and d (never accessed) must appear
        // exactly once: replication would only add write cost.
        assert_eq!(part.replication(AttrId(1)), 1);
        assert_eq!(part.replication(AttrId(3)), 1);
    }
}
