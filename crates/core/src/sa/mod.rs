//! The "SA solver": the simulated-annealing heuristic of §3 (Algorithm 1).
//!
//! * [`subproblem`] — the `findSolution(fix)` step: exact re-optimization
//!   of `y` given `x` (per-attribute decomposition) and of `x` given `y`
//!   (per-transaction choice over feasible sites), plus ILP-backed variants
//!   that additionally handle the max-load term exactly,
//! * [`solver`] — the annealing loop: alternating fixes, 10% neighborhoods,
//!   the §5.1 initial-temperature rule, geometric cooling and a freeze
//!   criterion.

pub mod solver;
pub mod subproblem;

pub use solver::{SaConfig, SaSolver, SubproblemMode};
