//! Exhaustive reference solver for tiny instances.
//!
//! Enumerates every canonical transaction assignment (restricted-growth
//! strings, so site-permutation symmetric duplicates are skipped) and pairs
//! each with the exact per-attribute optimal `y`
//! ([`crate::sa::subproblem::optimal_y_for_x`]).
//!
//! For `λ = 1` this provably finds the minimum of objective (4) — it is the
//! ground truth the QP and SA solvers are tested against. For `λ < 1` the
//! `y` step optimizes the cost part exactly and the load term is only
//! evaluated, so the result is a (usually optimal, not guaranteed)
//! upper bound.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::objective::{evaluate, fast_objective6};
use crate::error::CoreError;
use crate::report::{SolveReport, Termination};
use crate::sa::subproblem::optimal_y_for_x;
use std::time::Instant;
use vpart_model::{Instance, SiteId};

/// Size guards for the exhaustive enumeration.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Maximum number of transactions (enumeration is ~`|S|^|T|`).
    pub max_txns: usize,
    /// Maximum number of sites.
    pub max_sites: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        Self {
            max_txns: 12,
            max_sites: 4,
        }
    }
}

/// The exhaustive solver.
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    /// Size guards.
    pub config: ExactConfig,
}

impl ExactSolver {
    /// Creates a solver with custom size guards.
    pub fn new(config: ExactConfig) -> Self {
        Self { config }
    }

    /// Exhaustively minimizes objective (6) (exact for `λ = 1`; see module
    /// docs).
    pub fn solve(
        &self,
        instance: &Instance,
        n_sites: usize,
        cost: &CostConfig,
    ) -> Result<SolveReport, CoreError> {
        cost.validate()?;
        if n_sites == 0 {
            return Err(CoreError::Model(vpart_model::ModelError::NoSites));
        }
        let n_txns = instance.n_txns();
        if n_txns > self.config.max_txns {
            return Err(CoreError::TooLarge {
                what: "transactions",
                limit: self.config.max_txns,
                got: n_txns,
            });
        }
        if n_sites > self.config.max_sites {
            return Err(CoreError::TooLarge {
                what: "sites",
                limit: self.config.max_sites,
                got: n_sites,
            });
        }
        let start = Instant::now();
        let coeffs = CostCoefficients::compute(instance, cost);

        let mut best: Option<(f64, vpart_model::Partitioning)> = None;
        let mut assignment = vec![0usize; n_txns];
        let mut enumerated = 0usize;
        loop {
            enumerated += 1;
            let x: Vec<SiteId> = assignment.iter().map(|&s| SiteId::from_index(s)).collect();
            let part = optimal_y_for_x(instance, &coeffs, &x, n_sites, cost);
            let obj = fast_objective6(instance, &coeffs, &part, cost);
            if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                best = Some((obj, part));
            }
            // Next canonical (restricted-growth) assignment: transaction t
            // may use site s only if some earlier transaction used s−1.
            let mut advanced = false;
            for t in (0..n_txns).rev() {
                let prefix_max = assignment[..t].iter().copied().max().map_or(0, |m| m + 1);
                let cap = prefix_max.min(n_sites - 1);
                if assignment[t] < cap {
                    assignment[t] += 1;
                    for slot in assignment.iter_mut().skip(t + 1) {
                        *slot = 0;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break; // enumeration exhausted
            }
        }

        let (_, part) = best.expect("at least one assignment enumerated");
        part.validate(instance, false)?;
        let breakdown = evaluate(instance, &part, cost);
        Ok(SolveReport {
            partitioning: part,
            breakdown,
            termination: Termination::Optimal,
            elapsed: start.elapsed(),
            detail: format!("exhaustive: {enumerated} canonical assignments"),
            restarts: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpSolver;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 10.0), ("b", 2.0)]).unwrap();
        sb.table("S", &[("c", 6.0), ("d", 1.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2)]))
            .unwrap();
        let q2 = wb
            .add_query(
                QuerySpec::write("q2")
                    .access(&[AttrId(1), AttrId(3)])
                    .rows(vpart_model::TableId(0), 1.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        wb.transaction("T2", &[q2]).unwrap();
        Instance::new("exact", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn agrees_with_qp_at_lambda_one() {
        let ins = instance();
        let cost = CostConfig::default().with_lambda(1.0);
        let exact = ExactSolver::default().solve(&ins, 2, &cost).unwrap();
        let qc = crate::qp::QpConfig {
            mip_gap: 0.0,
            ..Default::default()
        };
        let qp = QpSolver::new(qc).solve(&ins, 2, &cost).unwrap();
        assert!(
            (exact.breakdown.objective4 - qp.breakdown.objective4).abs() < 1e-6,
            "exhaustive {} vs qp {}",
            exact.breakdown.objective4,
            qp.breakdown.objective4
        );
    }

    #[test]
    fn enumerates_canonical_assignments_only() {
        let ins = instance();
        let cost = CostConfig::default().with_lambda(1.0);
        let r = ExactSolver::default().solve(&ins, 2, &cost).unwrap();
        // 3 txns over ≤2 interchangeable sites → 4 canonical assignments
        // (000, 001, 010, 011).
        assert!(r.detail.contains("4 canonical"), "detail: {}", r.detail);
    }

    #[test]
    fn size_guards() {
        let ins = instance();
        let cost = CostConfig::default();
        let tiny_guard = ExactSolver::new(ExactConfig {
            max_txns: 1,
            max_sites: 4,
        });
        assert!(matches!(
            tiny_guard.solve(&ins, 2, &cost),
            Err(CoreError::TooLarge {
                what: "transactions",
                ..
            })
        ));
        let site_guard = ExactSolver::new(ExactConfig {
            max_txns: 12,
            max_sites: 1,
        });
        assert!(matches!(
            site_guard.solve(&ins, 2, &cost),
            Err(CoreError::TooLarge { what: "sites", .. })
        ));
    }
}
