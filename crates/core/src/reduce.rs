//! The "reasonable cuts" instance reduction of §4.
//!
//! Attributes of the same table that are accessed by exactly the same set
//! of queries can be treated as one atomic unit: every cost term involving
//! them shares the same multipliers (only the width differs, and cost is
//! linear in width), so an optimal solution exists in which all members of
//! a group share a placement. Grouping them shrinks `|A|` — and with it the
//! `u`-variable count of the linearized program — often dramatically
//! (TPC-C's 92 attributes collapse to a few dozen groups).
//!
//! The reduction is *exact* for the cost part of the objective; with load
//! balancing (`λ < 1`) it can only restrict tie-breaking among equal-cost
//! layouts (a group cannot be split across sites to shave the max load).
//! [`Reduction::rebalance_expanded`] recovers those splits after the fact:
//! a greedy post-expansion pass moves individual members of expanded
//! groups between sites whenever that lowers the max load without raising
//! cost.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::incremental::IncrementalCost;
use std::collections::HashMap;
use vpart_model::workload::QuerySpec;
use vpart_model::{AttrId, BitMatrix, Instance, Partitioning, QueryKind, Schema, SiteId, Workload};

/// A computed attribute grouping with its reduced instance.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The reduced instance (same tables/queries/transactions, grouped
    /// attributes).
    pub reduced: Instance,
    /// Group id (= reduced attribute index) per original attribute.
    pub group_of: Vec<usize>,
    /// Original member attributes per group.
    pub members: Vec<Vec<AttrId>>,
}

impl Reduction {
    /// Groups co-accessed attributes of `instance`. Returns `None` when no
    /// two attributes can be merged (reduction would be a no-op).
    pub fn compute(instance: &Instance) -> Option<Reduction> {
        let n_attrs = instance.n_attrs();
        let n_queries = instance.n_queries();

        // Key: (table, exact set of queries accessing the attribute).
        let mut key_of_attr: Vec<(usize, Vec<u64>)> = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            let table = instance.schema().table_of(AttrId::from_index(a)).index();
            let mut bits = vec![0u64; n_queries.div_ceil(64)];
            for q in 0..n_queries {
                if instance.alpha(AttrId::from_index(a), vpart_model::QueryId::from_index(q)) {
                    bits[q / 64] |= 1 << (q % 64);
                }
            }
            key_of_attr.push((table, bits));
        }

        let mut group_index: HashMap<&(usize, Vec<u64>), usize> = HashMap::new();
        let mut group_of = vec![0usize; n_attrs];
        let mut members: Vec<Vec<AttrId>> = Vec::new();
        for a in 0..n_attrs {
            let key = &key_of_attr[a];
            let g = *group_index.entry(key).or_insert_with(|| {
                members.push(Vec::new());
                members.len() - 1
            });
            group_of[a] = g;
            members[g].push(AttrId::from_index(a));
        }
        if members.len() == n_attrs {
            return None;
        }

        // Reduced schema: per table, its groups in first-member order.
        // Groups are created in attribute order and attributes are
        // contiguous per table, so groups are already contiguous per table.
        let mut sb = Schema::builder();
        let mut reduced_attr_of_group = vec![0usize; members.len()];
        let mut next = 0usize;
        for (ti, table) in instance.schema().tables().iter().enumerate() {
            let mut cols: Vec<(String, f64)> = Vec::new();
            let mut seen_groups: Vec<usize> = Vec::new();
            for ai in table.attrs() {
                let g = group_of[ai];
                if !seen_groups.contains(&g) {
                    seen_groups.push(g);
                    let width: f64 = members[g].iter().map(|&a| instance.schema().width(a)).sum();
                    let first = instance.schema().attr(members[g][0]).name.clone();
                    let name = if members[g].len() == 1 {
                        first
                    } else {
                        format!("{first}+{}", members[g].len() - 1)
                    };
                    cols.push((name, width));
                }
            }
            for (slot, &g) in seen_groups.iter().enumerate() {
                reduced_attr_of_group[g] = next + slot;
            }
            next += seen_groups.len();
            let col_refs: Vec<(&str, f64)> = cols.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            sb.table(&instance.schema().tables()[ti].name, &col_refs)
                .expect("reduced schema construction cannot fail");
        }
        let schema = sb.build().expect("non-empty by construction");

        // Reduced workload: identical structure over mapped attributes.
        let mut wb = Workload::builder(&schema);
        let mut qmap = Vec::with_capacity(n_queries);
        for q in instance.workload().queries() {
            let attrs: Vec<AttrId> = {
                let mut v: Vec<AttrId> = q
                    .attrs
                    .iter()
                    .map(|&a| AttrId::from_index(reduced_attr_of_group[group_of[a.index()]]))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let mut spec = match q.kind {
                QueryKind::Read => QuerySpec::read(&q.name),
                QueryKind::Write => QuerySpec::write(&q.name),
            }
            .frequency(q.frequency)
            .access(&attrs);
            for &(t, n) in &q.table_rows {
                spec = spec.rows(t, n);
            }
            qmap.push(wb.add_query(spec).expect("reduced query is valid"));
        }
        for txn in instance.workload().transactions() {
            let qs: Vec<_> = txn.queries.iter().map(|&q| qmap[q.index()]).collect();
            wb.transaction(&txn.name, &qs)
                .expect("reduced txn is valid");
        }
        let workload = wb.build().expect("complete by construction");
        let reduced = Instance::new(format!("{}(reduced)", instance.name()), schema, workload)
            .expect("reduced instance is consistent");

        // Re-express group ids as reduced attribute ids.
        let group_of: Vec<usize> = group_of.iter().map(|&g| reduced_attr_of_group[g]).collect();
        let mut members_by_reduced: Vec<Vec<AttrId>> = vec![Vec::new(); members.len()];
        for (g, mem) in members.into_iter().enumerate() {
            members_by_reduced[reduced_attr_of_group[g]] = mem;
        }

        Some(Reduction {
            reduced,
            group_of,
            members: members_by_reduced,
        })
    }

    /// Expands a partitioning of the reduced instance back to the original
    /// attribute space (each member inherits its group's placement).
    pub fn expand(&self, part: &Partitioning) -> Partitioning {
        let n_sites = part.n_sites();
        let mut y = BitMatrix::new(self.group_of.len(), n_sites);
        for (a, &g) in self.group_of.iter().enumerate() {
            for s in part.attr_sites(AttrId::from_index(g)) {
                y.set(a, s.index());
            }
        }
        let x: Vec<SiteId> = part.x().to_vec();
        Partitioning::from_parts(n_sites, x, y).expect("expanded shapes are consistent")
    }

    /// Reduction ratio `reduced attrs / original attrs` (< 1 when useful).
    pub fn ratio(&self) -> f64 {
        self.reduced.n_attrs() as f64 / self.group_of.len() as f64
    }

    /// Post-expansion member rebalancing — the λ < 1 caveat of the §4
    /// reduction. Solving the *reduced* instance pins every member of a
    /// group to the group's placement, which can concentrate work on one
    /// site; splitting the members would often shave the max load at
    /// unchanged cost, but the reduced model cannot express the split.
    ///
    /// This greedy pass repairs that on the expanded partitioning: it
    /// repeatedly scans members of multi-attribute groups placed on the
    /// currently most-loaded site and relocates one (replica add at the
    /// destination + drop at the source, delta-evaluated via
    /// [`IncrementalCost`]) whenever the move strictly lowers the max
    /// load without raising objective (4) — or objective (6), which
    /// additionally covers the Appendix A latency term when enabled —
    /// beyond rounding noise. Members whose replica is forced by a
    /// transaction's read set stay put, so the result remains feasible.
    ///
    /// `part` must be a feasible partitioning of the **original**
    /// `instance`. Returns the rebalanced partitioning and the number of
    /// member moves applied (0 means `part` is returned unchanged; the
    /// pass is skipped entirely when `λ = 1`, where max load has no
    /// objective weight).
    pub fn rebalance_expanded(
        &self,
        instance: &Instance,
        part: &Partitioning,
        cost: &CostConfig,
    ) -> (Partitioning, usize) {
        if cost.lambda >= 1.0 {
            return (part.clone(), 0);
        }
        let n_sites = part.n_sites();
        let movable: Vec<AttrId> = self
            .members
            .iter()
            .filter(|m| m.len() > 1)
            .flatten()
            .copied()
            .collect();
        if movable.is_empty() || n_sites < 2 {
            return (part.clone(), 0);
        }
        let coeffs = CostCoefficients::compute(instance, cost);
        let mut inc = IncrementalCost::new(instance, &coeffs, cost, part.clone());
        let mut moves = 0usize;
        // Each accepted move strictly lowers max work, so termination is
        // guaranteed; the cap only bounds pathological slow descent.
        let cap = movable.len() * n_sites;
        'pass: for _ in 0..cap {
            let obj4 = inc.objective4();
            let obj6 = inc.objective6();
            let max_work = inc.max_work();
            let eps = 1e-9 * (1.0 + obj4.abs());
            let eps6 = 1e-9 * (1.0 + obj6.abs());
            let load_eps = 1e-9 * (1.0 + max_work);
            // The most-loaded site is the only one whose members can
            // lower m by leaving.
            let src = (0..n_sites)
                .map(SiteId::from_index)
                .max_by(|&a, &b| inc.site_work(a).total_cmp(&inc.site_work(b)))
                .expect("n_sites >= 2");
            for &a in &movable {
                if !inc.partitioning().has_attr(a, src) {
                    continue;
                }
                for s in 0..n_sites {
                    let dst = SiteId::from_index(s);
                    if dst == src || inc.partitioning().has_attr(a, dst) {
                        continue;
                    }
                    let mark = inc.mark();
                    inc.apply_attr_replica(a, dst);
                    if !inc.apply_attr_drop(a, src) {
                        // A transaction on `src` reads `a`: the member is
                        // pinned there, no destination can free it.
                        inc.revert(mark);
                        break;
                    }
                    // Objective (6) is also guarded explicitly: with the
                    // Appendix A latency term enabled, relocating a
                    // written attribute can flip a write query's ψ to
                    // remote, raising (6) even at equal cost + lower load.
                    if inc.objective4() <= obj4 + eps
                        && inc.max_work() < max_work - load_eps
                        && inc.objective6() <= obj6 + eps6
                    {
                        inc.commit();
                        moves += 1;
                        continue 'pass;
                    }
                    inc.revert(mark);
                }
            }
            break; // full scan without an accepted move: local optimum
        }
        (inc.into_partitioning(), moves)
    }

    /// Restricts a partitioning of the *original* instance to the reduced
    /// attribute space: a group is placed wherever any member is. The
    /// result is feasible for the reduced instance (read sets only grow)
    /// and costs at most as much extra as the union replication — good
    /// enough for a warm-start incumbent.
    pub fn restrict(&self, part: &Partitioning) -> Partitioning {
        let n_sites = part.n_sites();
        let mut y = BitMatrix::new(self.reduced.n_attrs(), n_sites);
        for (a, &g) in self.group_of.iter().enumerate() {
            for s in part.attr_sites(AttrId::from_index(a)) {
                y.set(g, s.index());
            }
        }
        Partitioning::from_parts(n_sites, part.x().to_vec(), y)
            .expect("restricted shapes are consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CostConfig;
    use crate::cost::objective::evaluate;
    use vpart_model::TableId;

    /// Table with 4 attributes where a0/a1 are co-accessed and a2/a3 are
    /// co-accessed by a different query.
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0), ("c", 2.0), ("d", 2.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::read("q1")
                    .access(&[AttrId(2), AttrId(3)])
                    .frequency(2.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("red", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn groups_co_accessed_attributes() {
        let ins = instance();
        let red = Reduction::compute(&ins).expect("reducible");
        assert_eq!(red.reduced.n_attrs(), 2);
        assert_eq!(red.group_of, vec![0, 0, 1, 1]);
        assert_eq!(red.members[0], vec![AttrId(0), AttrId(1)]);
        // Widths add up.
        assert_eq!(red.reduced.schema().width(AttrId(0)), 12.0);
        assert_eq!(red.reduced.schema().width(AttrId(1)), 4.0);
        assert!(red.ratio() < 1.0);
    }

    #[test]
    fn expansion_preserves_cost() {
        let ins = instance();
        let red = Reduction::compute(&ins).unwrap();
        let cfg = CostConfig::default();
        // Place group 0 on site 0, group 1 on site 1, txns accordingly.
        let rp = Partitioning::minimal_for_x(&red.reduced, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let full = red.expand(&rp);
        full.validate(&ins, false).unwrap();
        let cost_reduced = evaluate(&red.reduced, &rp, &cfg);
        let cost_full = evaluate(&ins, &full, &cfg);
        assert!(
            (cost_reduced.objective4 - cost_full.objective4).abs() < 1e-9,
            "reduced {} vs expanded {}",
            cost_reduced.objective4,
            cost_full.objective4
        );
        assert!((cost_reduced.objective6 - cost_full.objective6).abs() < 1e-9);
    }

    #[test]
    fn no_reduction_when_all_attrs_distinct() {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(1)]))
            .unwrap();
        wb.transaction("T", &[q0, q1]).unwrap();
        let ins = Instance::new("x", schema, wb.build().unwrap()).unwrap();
        assert!(Reduction::compute(&ins).is_none());
    }

    #[test]
    fn grouping_respects_table_boundaries() {
        // Same access pattern but different tables must not merge.
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0)]).unwrap();
        sb.table("S", &[("b", 4.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q = wb
            .add_query(
                QuerySpec::read("q")
                    .access(&[AttrId(0), AttrId(1)])
                    .rows(TableId(0), 1.0)
                    .rows(TableId(1), 1.0),
            )
            .unwrap();
        wb.transaction("T", &[q]).unwrap();
        let ins = Instance::new("x", schema, wb.build().unwrap()).unwrap();
        assert!(Reduction::compute(&ins).is_none());
    }

    /// R{a(4), u1(8), u2(8)}: a is read (T0) and written (T1); u1/u2 are
    /// never accessed, so they form a 2-member group whose write work can
    /// be split across sites at unchanged cost.
    fn rebalanceable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("u1", 8.0), ("u2", 8.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::write("q1").access(&[AttrId(0)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("reb", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn rebalance_splits_group_members_to_shave_max_load() {
        let ins = rebalanceable();
        let red = Reduction::compute(&ins).expect("u1/u2 group");
        let cfg = CostConfig::default(); // λ = 0.9 < 1
                                         // Everything on site 0 of 2 — the expansion-pinned worst case.
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let before = evaluate(&ins, &part, &cfg);
        let (better, moves) = red.rebalance_expanded(&ins, &part, &cfg);
        assert!(moves > 0, "a movable member must be found");
        better.validate(&ins, false).unwrap();
        let after = evaluate(&ins, &better, &cfg);
        assert!(
            after.max_work < before.max_work - 1e-9,
            "max load must drop: {} -> {}",
            before.max_work,
            after.max_work
        );
        assert!(
            after.objective4 <= before.objective4 + 1e-9 * (1.0 + before.objective4),
            "cost must not rise: {} -> {}",
            before.objective4,
            after.objective4
        );
        // Both never-read members leave the loaded site (site 0 keeps the
        // read/written a: work 8 + 4; site 1 takes u1 + u2: work 16 —
        // the balanced optimum for these weights).
        assert!(!better.has_attr(AttrId(1), SiteId(0)));
        assert!(!better.has_attr(AttrId(2), SiteId(0)));
        assert_eq!(after.max_work, 16.0);
    }

    #[test]
    fn rebalance_is_identity_when_lambda_is_one() {
        let ins = rebalanceable();
        let red = Reduction::compute(&ins).unwrap();
        let cfg = CostConfig::default().with_lambda(1.0);
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let (same, moves) = red.rebalance_expanded(&ins, &part, &cfg);
        assert_eq!(moves, 0);
        assert_eq!(same, part);
    }

    #[test]
    fn rebalance_respects_the_latency_term() {
        // R{a, u1, u2} where u1/u2 are *written* (α = 1) by T1 but never
        // read. With p = 0 their placement is cost-neutral under
        // objective (4) and moving one off the loaded site lowers max
        // load — but it flips the write query's ψ to remote. A dominant
        // latency penalty must veto every such move; without it the
        // moves go through.
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("u1", 8.0), ("u2", 8.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::write("q1").access(&[AttrId(1), AttrId(2)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        let ins = Instance::new("lat-reb", schema, wb.build().unwrap()).unwrap();
        let red = Reduction::compute(&ins).expect("u1/u2 group");
        let part = Partitioning::single_site(&ins, 2).unwrap();

        let plain = CostConfig::default().with_p(0.0).with_lambda(0.5);
        let (_, moves) = red.rebalance_expanded(&ins, &part, &plain);
        assert!(moves > 0, "without latency the split is accepted");

        let latency = plain.with_latency(1e6);
        let before6 = evaluate(&ins, &part, &latency).objective6;
        let (same, moves) = red.rebalance_expanded(&ins, &part, &latency);
        assert_eq!(moves, 0, "dominant latency penalty must veto the move");
        assert_eq!(same, part);
        assert!(evaluate(&ins, &same, &latency).objective6 <= before6 + 1e-9);
    }

    #[test]
    fn rebalance_never_moves_read_pinned_members() {
        // Both members are read by a transaction on site 0: forced
        // replicas cannot move, so the pass is a no-op.
        let ins = instance(); // a/b co-read by T0, c/d co-read by T1
        let red = Reduction::compute(&ins).unwrap();
        let cfg = CostConfig::default();
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let (same, moves) = red.rebalance_expanded(&ins, &part, &cfg);
        assert_eq!(moves, 0);
        assert_eq!(same, part);
    }

    #[test]
    fn never_read_attributes_group_together_per_table() {
        // Two attributes accessed by no query share the empty access set.
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("u1", 8.0), ("u2", 8.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q = wb
            .add_query(QuerySpec::read("q").access(&[AttrId(0)]))
            .unwrap();
        wb.transaction("T", &[q]).unwrap();
        let ins = Instance::new("x", schema, wb.build().unwrap()).unwrap();
        let red = Reduction::compute(&ins).unwrap();
        assert_eq!(red.reduced.n_attrs(), 2);
        assert_eq!(red.group_of[1], red.group_of[2]);
    }
}
