//! Cost model configuration.

use serde::{Deserialize, Serialize};

/// How local storage access of *write* queries is accounted (§2.1).
///
/// The paper discusses three strategies and adopts
/// [`WriteAccounting::AllAttributes`] — a conservative overestimate that
/// keeps the program linear-sized. The other two are implemented for cost
/// *evaluation* and ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WriteAccounting {
    /// Writes pay for **all** attributes of touched tables on every replica
    /// site (`A_W = Σ W·β·δ·y`). Exact for full-row inserts, an
    /// overestimate for narrow updates. The paper's choice; the only
    /// strategy expressible in the linear program without quadratic blowup.
    #[default]
    AllAttributes,
    /// Writes pay no local access at all; only network transfer counts.
    /// Underestimates, so attributes tend to be replicated more.
    NoAttributes,
    /// Writes pay for attribute `a` on site `s` only if some *written*
    /// attribute `a'` of the same table is also on `s` (`y_{a,s}·y_{a',s}`
    /// pairing). Most accurate; costs `|A|²|S|` extra variables when
    /// linearized, so it is supported for evaluation only.
    RelevantAttributes,
}

/// Parameters of the cost model (§2, §5 defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostConfig {
    /// Network penalty factor `p`: how much more expensive one transferred
    /// byte is than one locally accessed byte. The paper estimates
    /// `p ∈ [3, 128]` and uses **8** (10-gigabit network). `p = 0`
    /// simulates *local* placement of all partitions (Table 6).
    pub p: f64,
    /// Load-balancing blend `λ ∈ [0, 1]` of objective (6): `λ·cost +
    /// (1−λ)·max_site_work`. `λ = 1` disables load balancing.
    ///
    /// **Default: 0.9.** The paper *prints* `λ = 0.1`, but its prose says
    /// the opposite of its formula ("we mainly focus on minimizing the
    /// total costs and therefore set λ low" only makes sense if λ weighted
    /// the *load* term), and its published results require cost-dominant
    /// optimization: Table 5's replicated-vs-disjoint ratios are ≤ 100%
    /// and Table 6's footnote attributes small cost regressions to
    /// "λ > 0", i.e. λ = 0 would be pure cost minimization. Under the
    /// printed formula with λ = 0.1 the max-load term dominates and those
    /// results are not reproducible (replication would *raise* reported
    /// cost). We therefore read formula (6) literally but default to the
    /// behavioral equivalent of the paper's intent: λ = 0.9 (cost 90%,
    /// load tie-break 10%). See DESIGN.md §6.
    pub lambda: f64,
    /// Write accounting strategy (see [`WriteAccounting`]).
    pub write_accounting: WriteAccounting,
    /// Latency penalty `p_l` of Appendix A; `None` disables the latency
    /// term (the paper's default — consensus in related work ignores
    /// latency).
    pub latency_penalty: Option<f64>,
}

impl Default for CostConfig {
    fn default() -> Self {
        Self {
            p: 8.0,
            lambda: 0.9,
            write_accounting: WriteAccounting::AllAttributes,
            latency_penalty: None,
        }
    }
}

impl CostConfig {
    /// The paper's remote-placement default (`p = 8`, `λ = 0.1`).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Local placement: all partitions on one host, no transfer cost
    /// (`p = 0`), as in Table 6's "Local" columns.
    pub fn local_placement() -> Self {
        Self {
            p: 0.0,
            ..Self::default()
        }
    }

    /// Sets the network penalty.
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Sets the load-balancing blend.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the write accounting strategy.
    pub fn with_write_accounting(mut self, wa: WriteAccounting) -> Self {
        self.write_accounting = wa;
        self
    }

    /// Enables the Appendix A latency term with penalty `pl`.
    pub fn with_latency(mut self, pl: f64) -> Self {
        self.latency_penalty = Some(pl);
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), crate::CoreError> {
        if !self.p.is_finite() || self.p < 0.0 {
            return Err(crate::CoreError::BadConfig(format!(
                "p must be >= 0, got {}",
                self.p
            )));
        }
        if !self.lambda.is_finite() || !(0.0..=1.0).contains(&self.lambda) {
            return Err(crate::CoreError::BadConfig(format!(
                "lambda must be in [0, 1], got {}",
                self.lambda
            )));
        }
        if let Some(pl) = self.latency_penalty {
            if !pl.is_finite() || pl < 0.0 {
                return Err(crate::CoreError::BadConfig(format!(
                    "latency penalty must be >= 0, got {pl}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CostConfig::default();
        assert_eq!(c.p, 8.0);
        assert_eq!(c.lambda, 0.9);
        assert_eq!(c.write_accounting, WriteAccounting::AllAttributes);
        assert!(c.latency_penalty.is_none());
        c.validate().unwrap();
    }

    #[test]
    fn local_placement_zeroes_p() {
        let c = CostConfig::local_placement();
        assert_eq!(c.p, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn builders_chain() {
        let c = CostConfig::default()
            .with_p(3.0)
            .with_lambda(1.0)
            .with_write_accounting(WriteAccounting::NoAttributes)
            .with_latency(2.0);
        assert_eq!(c.p, 3.0);
        assert_eq!(c.lambda, 1.0);
        assert_eq!(c.latency_penalty, Some(2.0));
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(CostConfig::default().with_p(-1.0).validate().is_err());
        assert!(CostConfig::default().with_lambda(1.5).validate().is_err());
        assert!(CostConfig::default()
            .with_latency(f64::NAN)
            .validate()
            .is_err());
    }
}
