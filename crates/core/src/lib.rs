//! Core algorithms of *"Vertical partitioning of relational OLTP databases
//! using integer programming"* (Amossen, ICDE Workshops 2010).
//!
//! This crate implements the paper's primary contribution:
//!
//! * the **cost model** of §2.1–2.2 — coefficients `c1..c4`, the reported
//!   objective (4) `A + p·B`, the optimized objective (6) with load
//!   balancing weight `λ`, three write-accounting strategies, and the
//!   latency extension of Appendix A ([`cost`]),
//! * the **QP solver** — the linearized mixed-integer program (7) solved by
//!   branch & bound, with optional reasonable-cuts reduction and symmetry
//!   breaking ([`qp`]),
//! * the **SA solver** — the simulated-annealing heuristic of Algorithm 1
//!   with alternating exact subproblem re-optimization ([`sa`]),
//! * an **exhaustive reference solver** for tiny instances ([`exact`]), and
//! * the **reasonable cuts** instance reduction of §4 ([`reduce`]).
//!
//! Quick start: build an [`vpart_model::Instance`], pick a [`CostConfig`],
//! and run a solver:
//!
//! ```
//! use vpart_core::{CostConfig, sa::{SaConfig, SaSolver}};
//! use vpart_model::{Schema, Workload, Instance, AttrId, workload::QuerySpec};
//!
//! let mut sb = Schema::builder();
//! sb.table("T", &[("k", 4.0), ("v", 100.0)]).unwrap();
//! let schema = sb.build().unwrap();
//! let mut wb = Workload::builder(&schema);
//! let q = wb.add_query(QuerySpec::read("q").access(&[AttrId(0)])).unwrap();
//! wb.transaction("txn", &[q]).unwrap();
//! let instance = Instance::new("ex", schema, wb.build().unwrap()).unwrap();
//!
//! let report = SaSolver::new(SaConfig::fast_deterministic(7))
//!     .solve(&instance, 2, &CostConfig::default())
//!     .unwrap();
//! assert!(report.partitioning.validate(&instance, false).is_ok());
//! ```

// Coefficient and model-building kernels use explicit index loops that
// mirror the paper's (t, a, s) subscripts.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod cost;
pub mod error;
pub mod exact;
pub mod qp;
pub mod reduce;
pub mod report;
pub mod sa;

pub use config::{CostConfig, WriteAccounting};
pub use cost::coeffs::CostCoefficients;
pub use cost::incremental::IncrementalCost;
pub use cost::objective::{evaluate, fast_objective6, objective4, objective6, CostBreakdown};
pub use cost::predict::{predicted_txn_bytes, TxnBytes};
pub use error::CoreError;
pub use report::{RestartStat, SolveReport};
