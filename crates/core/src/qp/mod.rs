//! The "QP solver": the paper's linearized quadratic program (7).
//!
//! [`builder`] constructs the mixed-integer linear program — decision
//! variables `x[t][s]`, `y[a][s]`, linearization variables `u[t][a][s]`
//! and the max-load variable `m` — and [`solver`] drives the
//! `vpart-ilp` branch & bound, maps the solution back to a
//! [`vpart_model::Partitioning`], and packages a [`crate::SolveReport`].

pub mod builder;
pub mod solver;

pub use builder::{build_qp_model, QpArtifacts, QpOptions};
pub use solver::{QpConfig, QpSolver};
