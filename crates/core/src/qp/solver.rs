//! Driving the linearized MIP to a partitioning.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::objective::evaluate;
use crate::error::CoreError;
use crate::qp::builder::{build_qp_model, QpOptions};
use crate::reduce::Reduction;
use crate::report::{SolveReport, Termination};
use std::time::{Duration, Instant};
use vpart_ilp::{SolveParams, SolveStatus};
use vpart_model::{Instance, Partitioning};
use vpart_obs::Obs;

/// Configuration of the QP (exact) solver.
#[derive(Debug, Clone)]
pub struct QpConfig {
    /// Structural model options.
    pub options: QpOptions,
    /// Apply the reasonable-cuts reduction of §4 before building the MIP.
    pub reasonable_cuts: bool,
    /// Wall-clock limit (paper: 30 minutes).
    pub time_limit: Duration,
    /// Relative MIP gap (paper: 0.1%).
    pub mip_gap: f64,
    /// Node limit for branch & bound.
    pub node_limit: usize,
    /// Optional warm-start partitioning (e.g. an SA solution). When `None`,
    /// the trivial single-site layout primes the incumbent.
    pub warm_start: Option<Partitioning>,
    /// Observability sink. Off by default ([`Obs::disabled`]); when
    /// enabled the solve records a `qp_solve` span plus the
    /// `qp_branch_nodes_total` / `qp_lp_pivots_total` counters out of the
    /// branch & bound statistics.
    pub obs: Obs,
}

impl Default for QpConfig {
    fn default() -> Self {
        Self {
            options: QpOptions::default(),
            reasonable_cuts: true,
            time_limit: Duration::from_secs(30 * 60),
            mip_gap: 1e-3,
            node_limit: usize::MAX,
            warm_start: None,
            obs: Obs::disabled(),
        }
    }
}

impl QpConfig {
    /// Paper setup with a custom time limit.
    pub fn with_time_limit(seconds: f64) -> Self {
        Self {
            time_limit: Duration::from_secs_f64(seconds),
            ..Self::default()
        }
    }

    /// Disables attribute replication (Table 5's disjoint mode).
    pub fn disjoint(mut self) -> Self {
        self.options.allow_replication = false;
        self
    }
}

/// Cheap deterministic primal heuristic priming the branch & bound: the
/// best of the single-site layout and a few alternating-subproblem passes
/// from seeded random transaction assignments (canonicalized so symmetry
/// breaking accepts them). Disjoint mode only uses the single-site layout
/// (the greedy may replicate).
fn greedy_incumbent(
    instance: &Instance,
    coeffs: &crate::cost::coeffs::CostCoefficients,
    n_sites: usize,
    cost: &CostConfig,
) -> Option<Partitioning> {
    use crate::cost::objective::fast_objective6;
    use crate::sa::subproblem::{optimal_x_for_y, optimal_y_for_x};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut best = Partitioning::single_site(instance, n_sites).ok()?;
    let mut best_cost = fast_objective6(instance, coeffs, &best, cost);
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0x9A11 + seed);
        let x: Vec<vpart_model::SiteId> = (0..instance.n_txns())
            .map(|_| vpart_model::SiteId::from_index(rng.gen_range(0..n_sites)))
            .collect();
        let mut p = optimal_y_for_x(instance, coeffs, &x, n_sites, cost);
        for _ in 0..2 {
            p = optimal_x_for_y(instance, coeffs, &p, cost);
            p = optimal_y_for_x(instance, coeffs, p.x(), n_sites, cost);
        }
        let c = fast_objective6(instance, coeffs, &p, cost);
        if c < best_cost {
            best = p;
            best_cost = c;
        }
    }
    Some(best.canonicalized())
}

/// The exact solver: builds and solves the linearized program (7).
#[derive(Debug, Clone, Default)]
pub struct QpSolver {
    /// Solver configuration.
    pub config: QpConfig,
}

impl QpSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: QpConfig) -> Self {
        Self { config }
    }

    /// Finds a minimum-cost partitioning of `instance` over `n_sites`.
    pub fn solve(
        &self,
        instance: &Instance,
        n_sites: usize,
        cost: &CostConfig,
    ) -> Result<SolveReport, CoreError> {
        cost.validate()?;
        if n_sites == 0 {
            return Err(CoreError::Model(vpart_model::ModelError::NoSites));
        }
        let start = Instant::now();
        let span = self.config.obs.span_begin(
            "qp_solve",
            &[
                ("n_sites", n_sites.into()),
                ("reasonable_cuts", self.config.reasonable_cuts.into()),
            ],
        );

        // Reasonable-cuts reduction (§4).
        let reduction = if self.config.reasonable_cuts {
            Reduction::compute(instance)
        } else {
            None
        };
        let work_instance = reduction.as_ref().map_or(instance, |r| &r.reduced);

        let coeffs = CostCoefficients::compute(work_instance, cost);
        let art = build_qp_model(work_instance, &coeffs, n_sites, cost, &self.config.options);

        // Warm start: the supplied partitioning (restricted to group space
        // under reduction), or an internal deterministic greedy multistart
        // (alternating exact subproblems from a few seeds, plus the
        // single-site layout). An infeasible start (e.g. replicated under
        // disjoint mode) is simply dropped.
        let warm = match (&self.config.warm_start, &reduction) {
            (Some(p), None) => Some(p.clone()),
            (Some(p), Some(r)) => Some(r.restrict(p)),
            (None, _) => greedy_incumbent(work_instance, &coeffs, n_sites, cost),
        };
        let initial = warm.and_then(|p| {
            let vals = art.assignment_from(&coeffs, &p);
            art.model.is_feasible(&vals, 1e-6).then_some(vals)
        });

        let params = SolveParams {
            time_limit: self.config.time_limit,
            mip_gap: self.config.mip_gap,
            node_limit: self.config.node_limit,
            int_tol: 1e-6,
            initial_solution: initial,
        };
        let sol = art.model.solve(&params)?;

        match sol.status {
            SolveStatus::Optimal | SolveStatus::Feasible => {}
            SolveStatus::Infeasible => {
                return Err(CoreError::Ilp("model unexpectedly infeasible".into()));
            }
            SolveStatus::Unbounded => {
                return Err(CoreError::Ilp("model unexpectedly unbounded".into()));
            }
            SolveStatus::NoSolutionFound => return Err(CoreError::NoSolution),
        }

        let mut part = art.extract(&sol.values);
        let mut rebalanced_members = 0usize;
        if let Some(r) = &reduction {
            part = r.expand(&part);
            // The reduced model pins group members together; with load
            // balancing in the objective, splitting them can lower the max
            // load at unchanged cost (§4's λ < 1 caveat). Objective (4) is
            // not raised, so any optimality claim below still holds.
            if cost.lambda < 1.0 {
                let (better, moved) = r.rebalance_expanded(instance, &part, cost);
                if moved > 0 {
                    part = better;
                    rebalanced_members = moved;
                }
            }
        }
        part.validate(instance, !self.config.options.allow_replication)?;

        let mut breakdown = evaluate(instance, &part, cost);
        // Incumbent guarantee: never return worse than a supplied warm
        // start. The MIP terminates within `mip_gap` of the model optimum
        // (the paper runs GLPK at 0.1%), and under reduction the warm start
        // is only usable in restricted (union-replicated) form, so the
        // extracted solution can evaluate slightly above the original warm
        // start even when the solve reports success.
        let mut warm_start_won = false;
        if let Some(ws) = &self.config.warm_start {
            if ws
                .validate(instance, !self.config.options.allow_replication)
                .is_ok()
            {
                let ws_breakdown = evaluate(instance, ws, cost);
                if ws_breakdown.objective6 < breakdown.objective6 {
                    part = ws.clone();
                    breakdown = ws_breakdown;
                    warm_start_won = true;
                    rebalanced_members = 0; // the rebalanced layout was discarded
                }
            }
        }
        // A warm start beating the "optimal" MIP solution means the proof
        // only covers the (gap-tolerant, possibly reduced) model — don't
        // claim optimality for a solution the model couldn't express.
        let termination = if sol.status == SolveStatus::Optimal && !warm_start_won {
            Termination::Optimal
        } else {
            Termination::LimitReached
        };
        let obs = &self.config.obs;
        if obs.is_enabled() {
            obs.counter_add("qp_branch_nodes_total", sol.stats.nodes as f64);
            obs.counter_add("qp_lp_pivots_total", sol.stats.lp_iterations as f64);
            obs.observe_wall("solve_wall_seconds", start.elapsed().as_secs_f64());
        }
        obs.span_end(
            span,
            &[
                ("nodes", sol.stats.nodes.into()),
                ("lp_pivots", sol.stats.lp_iterations.into()),
                ("exact", (termination == Termination::Optimal).into()),
                ("objective6", breakdown.objective6.into()),
                ("gap", sol.gap.into()),
            ],
        );
        Ok(SolveReport {
            partitioning: part,
            breakdown,
            termination,
            elapsed: start.elapsed(),
            detail: format!(
                "mip: {} nodes, {} lp iterations, gap {:.4}%, reduced |A| {}{}{}",
                sol.stats.nodes,
                sol.stats.lp_iterations,
                sol.gap * 100.0,
                work_instance.n_attrs(),
                if rebalanced_members > 0 {
                    format!(", rebalanced {rebalanced_members} group member(s)")
                } else {
                    String::new()
                },
                if warm_start_won {
                    ", warm start retained (better under evaluate)"
                } else {
                    ""
                },
            ),
            restarts: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, SiteId, Workload};

    /// Two independent read transactions on two tables: the obvious optimum
    /// for 2 sites splits them (each table fully local to its reader).
    fn separable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 10.0), ("r2", 10.0)]).unwrap();
        sb.table("S", &[("s1", 10.0), ("s2", 10.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("sep", schema, wb.build().unwrap()).unwrap()
    }

    /// One wide table read by two transactions on disjoint column sets.
    /// Vertical partitioning should cut the table so each reader only pays
    /// its own columns.
    fn cuttable() -> Instance {
        let mut sb = Schema::builder();
        sb.table("W", &[("a", 100.0), ("b", 100.0), ("c", 1.0), ("d", 1.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("cut", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn splits_separable_workload() {
        let ins = separable();
        let cfg = CostConfig::default();
        let report = QpSolver::default().solve(&ins, 2, &cfg).unwrap();
        assert_eq!(report.termination, Termination::Optimal);
        // Optimal: each transaction alone with its table → each read pays
        // exactly its own table width (20 per txn, ×1 row ×freq 1).
        assert_eq!(report.breakdown.objective4, 40.0);
        let p = &report.partitioning;
        assert_ne!(
            p.site_of(vpart_model::TxnId(0)),
            p.site_of(vpart_model::TxnId(1))
        );
    }

    #[test]
    fn single_site_matches_trivial_layout() {
        let ins = separable();
        let cfg = CostConfig::default();
        let report = QpSolver::default().solve(&ins, 1, &cfg).unwrap();
        let trivial = Partitioning::single_site(&ins, 1).unwrap();
        let trivial_cost = evaluate(&ins, &trivial, &cfg).objective4;
        assert_eq!(report.breakdown.objective4, trivial_cost);
    }

    #[test]
    fn vertical_cut_of_wide_table() {
        let ins = cuttable();
        let cfg = CostConfig::default();
        let report = QpSolver::default().solve(&ins, 2, &cfg).unwrap();
        assert_eq!(report.termination, Termination::Optimal);
        // Each reader pays only its columns: 200 (a+b) + 2 (c+d).
        assert_eq!(report.breakdown.objective4, 202.0);
    }

    #[test]
    fn disjoint_mode_never_beats_replicated() {
        let ins = cuttable();
        let cfg = CostConfig::default();
        let replicated = QpSolver::default().solve(&ins, 2, &cfg).unwrap();
        let disjoint = QpSolver::new(QpConfig::default().disjoint())
            .solve(&ins, 2, &cfg)
            .unwrap();
        assert!(!disjoint.partitioning.is_replicated());
        assert!(disjoint.breakdown.objective4 >= replicated.breakdown.objective4 - 1e-9);
    }

    #[test]
    fn reduction_and_pruning_do_not_change_optimum() {
        let ins = cuttable();
        let cfg = CostConfig::default().with_lambda(1.0);
        let mut costs = Vec::new();
        for (cuts, prune, sym) in [
            (true, true, true),
            (false, false, false),
            (false, true, false),
            (true, false, true),
        ] {
            let qc = QpConfig {
                reasonable_cuts: cuts,
                options: QpOptions {
                    prune_linearization: prune,
                    symmetry_breaking: sym,
                    ..QpOptions::default()
                },
                mip_gap: 0.0,
                ..QpConfig::default()
            };
            let r = QpSolver::new(qc).solve(&ins, 2, &cfg).unwrap();
            assert_eq!(r.termination, Termination::Optimal);
            costs.push(r.breakdown.objective4);
        }
        for w in costs.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-6, "costs diverge: {costs:?}");
        }
    }

    #[test]
    fn warm_start_is_accepted() {
        let ins = separable();
        let cfg = CostConfig::default();
        let warm = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let qc = QpConfig {
            reasonable_cuts: false, // warm start only usable unreduced
            warm_start: Some(warm),
            ..QpConfig::default()
        };
        let r = QpSolver::new(qc).solve(&ins, 2, &cfg).unwrap();
        assert_eq!(r.termination, Termination::Optimal);
        assert_eq!(r.breakdown.objective4, 40.0);
    }

    #[test]
    fn zero_sites_rejected() {
        let ins = separable();
        assert!(matches!(
            QpSolver::default().solve(&ins, 0, &CostConfig::default()),
            Err(CoreError::Model(vpart_model::ModelError::NoSites))
        ));
    }
}
