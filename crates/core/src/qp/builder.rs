//! Construction of the linearized MIP (7).
//!
//! Model recap (minimization):
//!
//! ```text
//!   min  λ·Σ c1(a,t)·u[t,a,s] + λ·Σ c2(a)·y[a,s] + (1−λ)·m
//!   s.t. Σ_s x[t,s] = 1                               ∀t
//!        Σ_s y[a,s] ≥ 1                               ∀a   (= 1 disjoint)
//!        y[a,s] − x[t,s] ≥ 0                          ∀(a,t): φ[a,t], ∀s
//!        Σ c3(a,t)·u[t,a,s] + Σ c4(a)·y[a,s] ≤ m      ∀s   (λ < 1 only)
//!        u ≤ x,  u ≤ y,  u ≥ x + y − 1                (per-sign pruning)
//!        x, y binary;  u ∈ [0,1];  m ≥ 0
//! ```
//!
//! `u[t,a,s]` exists only for `(a,t)` pairs with a nonzero `c1`/`c3`
//! coefficient. The three linearization rows force `u = x·y` at binary
//! points; per-sign pruning keeps only the side the optimizer pushes
//! against (minimizing with a positive coefficient needs the lower
//! envelope, a negative one the upper), which roughly halves the row count
//! and is validated against the unpruned model in tests.

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use vpart_ilp::{Cmp, LinExpr, Model, VarRef};
use vpart_model::{Instance, Partitioning, TxnId};

/// Structural options of the MIP (everything except solve limits).
#[derive(Debug, Clone)]
pub struct QpOptions {
    /// Allow attribute replication (`Σ_s y ≥ 1`); `false` forces a disjoint
    /// partitioning (`Σ_s y = 1`) as in Table 5's right half.
    pub allow_replication: bool,
    /// Fix `x[t,s] = 0` for `s > t` (sites are interchangeable, so some
    /// canonical solution always satisfies this).
    pub symmetry_breaking: bool,
    /// Emit only the linearization rows required by coefficient signs.
    pub prune_linearization: bool,
}

impl Default for QpOptions {
    fn default() -> Self {
        Self {
            allow_replication: true,
            symmetry_breaking: true,
            prune_linearization: true,
        }
    }
}

/// The built model plus the variable layout needed to read solutions back.
#[derive(Debug)]
pub struct QpArtifacts {
    /// The MILP.
    pub model: Model,
    /// `x[t][s]` variables.
    pub x: Vec<Vec<VarRef>>,
    /// `y[a][s]` variables.
    pub y: Vec<Vec<VarRef>>,
    /// `u` variables: per transaction, per sparse term index, per site
    /// (`u[t][k][s]` corresponds to `coeffs.txn_terms(t)[k]`).
    pub u: Vec<Vec<Vec<VarRef>>>,
    /// The max-load variable (present iff `λ < 1`).
    pub m: Option<VarRef>,
    /// Number of sites.
    pub n_sites: usize,
}

/// Builds the linearized program for `instance` over `n_sites` sites.
pub fn build_qp_model(
    instance: &Instance,
    coeffs: &CostCoefficients,
    n_sites: usize,
    cost: &CostConfig,
    opts: &QpOptions,
) -> QpArtifacts {
    let n_txns = instance.n_txns();
    let n_attrs = instance.n_attrs();
    let lambda = cost.lambda;
    let balance = lambda < 1.0;

    let mut model = Model::minimize();

    // x[t][s]
    let x: Vec<Vec<VarRef>> = (0..n_txns)
        .map(|t| {
            (0..n_sites)
                .map(|s| model.binary(format!("x_{t}_{s}"), 0.0))
                .collect()
        })
        .collect();
    // y[a][s] carries the λ·c2 objective term.
    let y: Vec<Vec<VarRef>> = (0..n_attrs)
        .map(|a| {
            let c2 = coeffs.c2(vpart_model::AttrId::from_index(a));
            (0..n_sites)
                .map(|s| model.binary(format!("y_{a}_{s}"), lambda * c2))
                .collect()
        })
        .collect();
    // m
    let m = balance.then(|| {
        model.add_var(
            "m",
            vpart_ilp::VarKind::Continuous,
            0.0,
            f64::INFINITY,
            1.0 - lambda,
        )
    });

    // u[t][k][s] for sparse (t, a) pairs; objective λ·c1.
    let mut u: Vec<Vec<Vec<VarRef>>> = Vec::with_capacity(n_txns);
    for t in 0..n_txns {
        let terms = coeffs.txn_terms(TxnId::from_index(t));
        let mut per_term = Vec::with_capacity(terms.len());
        for &(a, c1, c3) in terms {
            let needed = c1 != 0.0 || (balance && c3 != 0.0);
            let vars: Vec<VarRef> = (0..n_sites)
                .map(|s| {
                    if needed {
                        model.add_var(
                            format!("u_{t}_{}_{s}", a.index()),
                            vpart_ilp::VarKind::Continuous,
                            0.0,
                            1.0,
                            lambda * c1,
                        )
                    } else {
                        // Placeholder, never constrained nor in objective.
                        VarRef(usize::MAX)
                    }
                })
                .collect();
            per_term.push(vars);
        }
        u.push(per_term);
    }

    // Assignment: each transaction on exactly one site.
    for t in 0..n_txns {
        let expr: LinExpr = (0..n_sites).map(|s| (x[t][s], 1.0)).collect();
        model.add_constraint(format!("assign_{t}"), expr, Cmp::Eq, 1.0);
    }
    // Coverage: each attribute somewhere (exactly one site when disjoint).
    for a in 0..n_attrs {
        let expr: LinExpr = (0..n_sites).map(|s| (y[a][s], 1.0)).collect();
        let cmp = if opts.allow_replication {
            Cmp::Ge
        } else {
            Cmp::Eq
        };
        model.add_constraint(format!("cover_{a}"), expr, cmp, 1.0);
    }
    // Single-sitedness of reads: y[a,s] ≥ x[t,s] for φ[a,t] = 1.
    for t in 0..n_txns {
        for &a in instance.read_set(TxnId::from_index(t)) {
            for s in 0..n_sites {
                model.add_constraint(
                    format!("ss_{t}_{}_{s}", a.index()),
                    [(y[a.index()][s], 1.0), (x[t][s], -1.0)],
                    Cmp::Ge,
                    0.0,
                );
            }
        }
    }
    // Linearization rows. For pairs with φ[a,t] = 1, single-sitedness
    // already forces y[a,s] = 1 wherever x[t,s] = 1, so the standard
    // McCormick lower envelope `u ≥ x + y − 1` can be strengthened to
    // `u ≥ x` — a much tighter LP relaxation of the load constraints
    // (otherwise the LP zeroes the read-work term by splitting x and y).
    for t in 0..n_txns {
        let txn = TxnId::from_index(t);
        let terms = coeffs.txn_terms(txn);
        for (k, &(a, c1, c3)) in terms.iter().enumerate() {
            if u[t][k][0].0 == usize::MAX {
                continue;
            }
            let phi = instance.phi(a, txn);
            let need_lower =
                !opts.prune_linearization || lambda * c1 > 0.0 || (balance && c3 > 0.0);
            let need_upper = !opts.prune_linearization || lambda * c1 < 0.0;
            if need_upper {
                // Σ_s u ≤ Σ_s x = 1: stops the LP from collecting the
                // (negative-c1) write-transfer saving on several fractional
                // sites at once.
                let expr: LinExpr = (0..n_sites).map(|s| (u[t][k][s], 1.0)).collect();
                model.add_constraint(format!("usum_{t}_{}", a.index()), expr, Cmp::Le, 1.0);
            }
            for s in 0..n_sites {
                let uv = u[t][k][s];
                if need_upper {
                    model.add_constraint(
                        format!("ux_{t}_{}_{s}", a.index()),
                        [(uv, 1.0), (x[t][s], -1.0)],
                        Cmp::Le,
                        0.0,
                    );
                    model.add_constraint(
                        format!("uy_{t}_{}_{s}", a.index()),
                        [(uv, 1.0), (y[a.index()][s], -1.0)],
                        Cmp::Le,
                        0.0,
                    );
                }
                if need_lower {
                    if phi {
                        model.add_constraint(
                            format!("ul_{t}_{}_{s}", a.index()),
                            [(uv, 1.0), (x[t][s], -1.0)],
                            Cmp::Ge,
                            0.0,
                        );
                    } else {
                        model.add_constraint(
                            format!("ul_{t}_{}_{s}", a.index()),
                            [(uv, 1.0), (x[t][s], -1.0), (y[a.index()][s], -1.0)],
                            Cmp::Ge,
                            -1.0,
                        );
                    }
                }
            }
        }
    }
    // Load-balancing rows: work(s) ≤ m.
    if let Some(mv) = m {
        for s in 0..n_sites {
            let mut expr = LinExpr::new();
            for t in 0..n_txns {
                let terms = coeffs.txn_terms(TxnId::from_index(t));
                for (k, &(_, _, c3)) in terms.iter().enumerate() {
                    if c3 != 0.0 && u[t][k][s].0 != usize::MAX {
                        expr.push(u[t][k][s], c3);
                    }
                }
            }
            for a in 0..n_attrs {
                let c4 = coeffs.c4(vpart_model::AttrId::from_index(a));
                if c4 != 0.0 {
                    expr.push(y[a][s], c4);
                }
            }
            expr.push(mv, -1.0);
            model.add_constraint(format!("load_{s}"), expr, Cmp::Le, 0.0);
        }
        // Aggregate cut: the total unavoidable work — reads of φ-pairs are
        // always paid at the executing site, and every attribute has at
        // least one replica — spread over |S| sites bounds m from below.
        let mut unavoidable = 0.0;
        for t in 0..n_txns {
            let txn = TxnId::from_index(t);
            for &(a, _, c3) in coeffs.txn_terms(txn) {
                if instance.phi(a, txn) {
                    unavoidable += c3;
                }
            }
        }
        for a in 0..n_attrs {
            unavoidable += coeffs.c4(vpart_model::AttrId::from_index(a));
        }
        model.add_constraint(
            "m_floor",
            [(mv, 1.0)],
            Cmp::Ge,
            unavoidable / n_sites as f64,
        );
    }
    // Symmetry breaking: transaction t may only use sites 0..=t.
    if opts.symmetry_breaking {
        for (t, row) in x.iter().enumerate().take(n_sites.saturating_sub(1)) {
            for (s, &xv) in row.iter().enumerate().skip(t + 1) {
                model.add_constraint(format!("sym_{t}_{s}"), [(xv, 1.0)], Cmp::Eq, 0.0);
            }
        }
    }

    QpArtifacts {
        model,
        x,
        y,
        u,
        m,
        n_sites,
    }
}

impl QpArtifacts {
    /// Builds a full MIP assignment from a feasible partitioning (used as a
    /// warm-start incumbent). `u` is set to `x·y` and `m` to the induced
    /// max load, so the point satisfies every (even pruned) row.
    pub fn assignment_from(&self, coeffs: &CostCoefficients, part: &Partitioning) -> Vec<f64> {
        let mut vals = vec![0.0; self.model.n_vars()];
        for (t, row) in self.x.iter().enumerate() {
            vals[row[part.site_of(TxnId::from_index(t)).index()].0] = 1.0;
        }
        for (a, row) in self.y.iter().enumerate() {
            for s in part.attr_sites(vpart_model::AttrId::from_index(a)) {
                vals[row[s.index()].0] = 1.0;
            }
        }
        let mut site_work = vec![0.0; self.n_sites];
        for (t, per_term) in self.u.iter().enumerate() {
            let txn = TxnId::from_index(t);
            let home = part.site_of(txn);
            let terms = coeffs.txn_terms(txn);
            for (k, vars) in per_term.iter().enumerate() {
                let (a, _, c3) = terms[k];
                if part.has_attr(a, home) {
                    if vars[home.index()].0 != usize::MAX {
                        vals[vars[home.index()].0] = 1.0;
                    }
                    site_work[home.index()] += c3;
                }
            }
        }
        if let Some(mv) = self.m {
            for a in 0..part.n_attrs() {
                let attr = vpart_model::AttrId::from_index(a);
                for s in part.attr_sites(attr) {
                    site_work[s.index()] += coeffs.c4(attr);
                }
            }
            vals[mv.0] = site_work.iter().fold(0.0f64, |m, &w| m.max(w));
        }
        vals
    }

    /// Extracts the partitioning encoded by a MIP solution vector.
    pub fn extract(&self, values: &[f64]) -> Partitioning {
        let n_attrs = self.y.len();
        let mut xs = Vec::with_capacity(self.x.len());
        for row in &self.x {
            let site = (0..self.n_sites)
                .max_by(|&a, &b| values[row[a].0].total_cmp(&values[row[b].0]))
                .expect("n_sites >= 1");
            xs.push(vpart_model::SiteId::from_index(site));
        }
        let mut y = vpart_model::BitMatrix::new(n_attrs, self.n_sites);
        for (a, row) in self.y.iter().enumerate() {
            for (s, &v) in row.iter().enumerate() {
                if values[v.0] > 0.5 {
                    y.set(a, s);
                }
            }
        }
        Partitioning::from_parts(self.n_sites, xs, y).expect("model enforces shapes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, Workload};

    fn tiny() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::write("q1").access(&[AttrId(1)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("qp", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn model_dimensions() {
        let ins = tiny();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let art = build_qp_model(&ins, &coeffs, 2, &cfg, &QpOptions::default());
        art.model.validate().unwrap();
        // 2 txns × 2 sites x-vars + 2 attrs × 2 sites y-vars + m + u's.
        assert_eq!(art.x.len(), 2);
        assert_eq!(art.y.len(), 2);
        assert!(art.m.is_some());
        assert!(art.model.n_vars() >= 9);
        // Integer count = x + y only (u continuous).
        assert_eq!(art.model.n_int_vars(), 8);
    }

    #[test]
    fn lambda_one_drops_load_machinery() {
        let ins = tiny();
        let cfg = CostConfig::default().with_lambda(1.0);
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let art = build_qp_model(&ins, &coeffs, 2, &cfg, &QpOptions::default());
        assert!(art.m.is_none());
    }

    #[test]
    fn warm_start_assignment_is_feasible() {
        let ins = tiny();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        for opts in [
            QpOptions::default(),
            QpOptions {
                prune_linearization: false,
                ..QpOptions::default()
            },
            QpOptions {
                symmetry_breaking: false,
                ..QpOptions::default()
            },
        ] {
            let art = build_qp_model(&ins, &coeffs, 2, &cfg, &opts);
            // Canonical single-site layout satisfies symmetry breaking.
            let part = Partitioning::single_site(&ins, 2).unwrap();
            let vals = art.assignment_from(&coeffs, &part);
            assert!(
                art.model.is_feasible(&vals, 1e-9),
                "warm start must satisfy the model (opts {opts:?})"
            );
            // Round-trip through extract.
            let back = art.extract(&vals);
            assert_eq!(back, part);
        }
    }

    #[test]
    fn disjoint_mode_forces_equality_cover() {
        let ins = tiny();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let art = build_qp_model(
            &ins,
            &coeffs,
            2,
            &cfg,
            &QpOptions {
                allow_replication: false,
                ..QpOptions::default()
            },
        );
        // A replicated assignment must be infeasible now.
        let mut part = Partitioning::single_site(&ins, 2).unwrap();
        part.add_replica(AttrId(0), vpart_model::SiteId(1));
        let vals = art.assignment_from(&coeffs, &part);
        assert!(!art.model.is_feasible(&vals, 1e-9));
    }
}
