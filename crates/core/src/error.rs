//! Error type for the core solvers.

use std::fmt;

/// Errors raised by the cost model and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid configuration parameter.
    BadConfig(String),
    /// The underlying model rejected an input.
    Model(vpart_model::ModelError),
    /// The MILP solver failed.
    Ilp(String),
    /// The MILP search found no integer-feasible point (paper's "t/o").
    NoSolution,
    /// Instance too large for the exhaustive reference solver.
    TooLarge {
        what: &'static str,
        limit: usize,
        got: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Ilp(msg) => write!(f, "ilp solver error: {msg}"),
            Self::NoSolution => write!(f, "no integer-feasible solution found within limits"),
            Self::TooLarge { what, limit, got } => {
                write!(
                    f,
                    "instance too large for exhaustive solve: {what} = {got} > {limit}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<vpart_model::ModelError> for CoreError {
    fn from(e: vpart_model::ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<vpart_ilp::IlpError> for CoreError {
    fn from(e: vpart_ilp::IlpError) -> Self {
        Self::Ilp(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = vpart_model::ModelError::EmptyWorkload.into();
        assert!(e.to_string().contains("workload"));
        let e: CoreError = vpart_ilp::IlpError::IterationLimit.into();
        assert!(e.to_string().contains("iteration"));
        assert!(CoreError::NoSolution
            .to_string()
            .contains("no integer-feasible"));
    }
}
