//! Per-transaction predicted-byte decomposition.
//!
//! [`evaluate`](crate::cost::objective::evaluate) reports workload-level
//! totals; the replay harness (`vpart_engine::replay`) needs the same
//! quantities *per transaction* so a trace with arbitrary per-template
//! execution counts can be priced: the model's prediction for a stream
//! with counts `n_t` is `Σ_t n_t · TxnBytes[t]`.
//!
//! One "execution" of transaction `t` here means what one engine
//! execution means: every query of `t` runs at its workload frequency
//! (the cost model's totals are exactly one execution of every
//! transaction). Summed over all transactions, the decomposition equals
//! the [`CostBreakdown`](crate::cost::objective::CostBreakdown) totals —
//! asserted by tests, since the two are computed by independent walks.

use crate::config::{CostConfig, WriteAccounting};
use vpart_model::{AttrId, Instance, Partitioning, TxnId};

/// Predicted bytes for a single execution of one transaction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TxnBytes {
    /// Bytes read by storage access methods (whole fraction rows at the
    /// home site, for every read query of the transaction).
    pub read: f64,
    /// Bytes written by storage access methods across all replica sites,
    /// per the configured write-accounting strategy.
    pub written: f64,
    /// Bytes shipped to remote replicas (α-attribute replication traffic).
    pub transferred: f64,
}

impl TxnBytes {
    /// Total predicted bytes touched (read + written + transferred).
    pub fn total(&self) -> f64 {
        self.read + self.written + self.transferred
    }
}

/// The model's per-transaction byte decomposition under `part`.
///
/// Entry `t` prices one execution of `TxnId(t)`; the component sums over
/// all transactions equal the `read`/`write`/`transfer` fields of
/// [`evaluate`](crate::cost::objective::evaluate).
pub fn predicted_txn_bytes(
    instance: &Instance,
    part: &Partitioning,
    config: &CostConfig,
) -> Vec<TxnBytes> {
    let n_sites = part.n_sites();
    let mut out = Vec::with_capacity(instance.n_txns());
    for t in 0..instance.n_txns() {
        let txn = TxnId::from_index(t);
        let home = part.site_of(txn);
        let mut bytes = TxnBytes::default();
        for &qid in &instance.workload().txn(txn).queries {
            let q = instance.workload().query(qid);
            if q.kind.is_write() {
                for &(table, rows) in &q.table_rows {
                    let mut relevant_sites = vec![false; n_sites];
                    if config.write_accounting == WriteAccounting::RelevantAttributes {
                        for &a in &q.attrs {
                            if instance.schema().table_of(a) == table {
                                for s in part.attr_sites(a) {
                                    relevant_sites[s.index()] = true;
                                }
                            }
                        }
                    }
                    for ai in instance.schema().table_attrs(table) {
                        let a = AttrId::from_index(ai);
                        let w = instance.schema().width(a) * q.frequency * rows;
                        match config.write_accounting {
                            WriteAccounting::AllAttributes => {
                                bytes.written += w * part.replication(a) as f64;
                            }
                            WriteAccounting::NoAttributes => {}
                            WriteAccounting::RelevantAttributes => {
                                for s in part.attr_sites(a) {
                                    if relevant_sites[s.index()] {
                                        bytes.written += w;
                                    }
                                }
                            }
                        }
                        if q.accesses_attr(a) {
                            for s in part.attr_sites(a) {
                                if s != home {
                                    bytes.transferred += w;
                                }
                            }
                        }
                    }
                }
            } else {
                for &(table, rows) in &q.table_rows {
                    for ai in instance.schema().table_attrs(table) {
                        let a = AttrId::from_index(ai);
                        if part.has_attr(a, home) {
                            bytes.read += instance.schema().width(a) * q.frequency * rows;
                        }
                    }
                }
            }
        }
        out.push(bytes);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::objective::evaluate;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, SiteId, Workload};

    /// R{k(4), v(8)}: T0 reads k (f=2); T1 writes v (f=1, 3 rows).
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("k", 4.0), ("v", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 3.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("predict", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn per_txn_bytes_by_hand() {
        let ins = instance();
        let cfg = CostConfig::default();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let per = predicted_txn_bytes(&ins, &part, &cfg);
        // T0: reads whole fraction (k+v = 12) × f2 × 1 row = 24.
        assert_eq!(
            per[0],
            TxnBytes {
                read: 24.0,
                written: 0.0,
                transferred: 0.0
            }
        );
        // T1: writes all attrs (12) × 3 rows on one replica = 36; no
        // remote replicas → no transfer.
        assert_eq!(
            per[1],
            TxnBytes {
                read: 0.0,
                written: 36.0,
                transferred: 0.0
            }
        );
        assert_eq!(per[1].total(), 36.0);
    }

    /// The per-transaction decomposition sums to the workload-level
    /// breakdown, for every write-accounting strategy and with
    /// replication in play — two independent walks agreeing.
    #[test]
    fn sums_match_evaluate() {
        let ins = instance();
        for wa in [
            WriteAccounting::AllAttributes,
            WriteAccounting::NoAttributes,
            WriteAccounting::RelevantAttributes,
        ] {
            let cfg = CostConfig::default().with_write_accounting(wa);
            let mut part = Partitioning::single_site(&ins, 2).unwrap();
            part.add_replica(AttrId(1), SiteId(1));
            let per = predicted_txn_bytes(&ins, &part, &cfg);
            let b = evaluate(&ins, &part, &cfg);
            let read: f64 = per.iter().map(|t| t.read).sum();
            let written: f64 = per.iter().map(|t| t.written).sum();
            let transferred: f64 = per.iter().map(|t| t.transferred).sum();
            assert!((read - b.read).abs() < 1e-9, "{wa:?} read");
            assert!((written - b.write).abs() < 1e-9, "{wa:?} write");
            assert!((transferred - b.transfer).abs() < 1e-9, "{wa:?} transfer");
        }
    }

    #[test]
    fn sums_match_evaluate_on_tpcc_shaped_layouts() {
        let ins = instance();
        let cfg = CostConfig::default();
        for x in [
            vec![SiteId(0), SiteId(0)],
            vec![SiteId(0), SiteId(1)],
            vec![SiteId(1), SiteId(0)],
        ] {
            let part = Partitioning::minimal_for_x(&ins, x, 2).unwrap();
            let per = predicted_txn_bytes(&ins, &part, &cfg);
            let b = evaluate(&ins, &part, &cfg);
            let total: f64 = per.iter().map(TxnBytes::total).sum();
            assert!(
                (total - (b.read + b.write + b.transfer)).abs() < 1e-9,
                "decomposition total diverges"
            );
        }
    }
}
