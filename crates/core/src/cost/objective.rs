//! Objective evaluation for a concrete partitioning.
//!
//! Two evaluation paths are provided:
//!
//! * [`evaluate`] — the authoritative query-level evaluation. Walks every
//!   query, supports all three write-accounting strategies and the latency
//!   term, and returns a full [`CostBreakdown`].
//! * [`fast_objective6`] — a coefficient-based fast path used inside the
//!   simulated-annealing inner loop (identical to `evaluate` for the
//!   `AllAttributes`/`NoAttributes` strategies; property-tested against it).
//!
//! The paper's convention: solvers *minimize* objective (6) but always
//! *report* objective (4) — `A + p·B` — as "the actual cost of a solution".

use crate::config::{CostConfig, WriteAccounting};
use crate::cost::coeffs::CostCoefficients;
use crate::cost::latency::latency_term;
use vpart_model::{AttrId, Instance, Partitioning, TxnId};

/// Full cost decomposition of a partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct CostBreakdown {
    /// `A_R`: bytes read by storage access methods (single-sited reads).
    pub read: f64,
    /// `A_W`: bytes written by storage access methods, per the configured
    /// write-accounting strategy.
    pub write: f64,
    /// `B`: bytes transferred between sites (write replication traffic).
    pub transfer: f64,
    /// Objective (4): `A_R + A_W + p·B` — the paper's reported cost.
    pub objective4: f64,
    /// Work per site (equation (5)).
    pub site_work: Vec<f64>,
    /// `m`: the maximum site work.
    pub max_work: f64,
    /// Objective (6): `λ·objective4 + (1−λ)·m`.
    pub objective6: f64,
    /// Appendix A latency term `p_l·Σ f_q·ψ_q` (0 when disabled).
    pub latency: f64,
}

/// Evaluates the full cost breakdown of `p` on `instance`.
pub fn evaluate(instance: &Instance, part: &Partitioning, config: &CostConfig) -> CostBreakdown {
    let n_sites = part.n_sites();
    let mut read = 0.0;
    let mut write = 0.0;
    let mut transfer = 0.0;
    let mut site_read = vec![0.0; n_sites];
    let mut site_write = vec![0.0; n_sites];

    for (qi, q) in instance.workload().queries().iter().enumerate() {
        let qid = vpart_model::QueryId::from_index(qi);
        let t = instance.gamma(qid);
        let home = part.site_of(t);
        if q.kind.is_write() {
            for &(table, rows) in &q.table_rows {
                // Which sites hold a *written* attribute of this table?
                // (Only needed for the RelevantAttributes strategy.)
                let mut relevant_sites = vec![false; n_sites];
                if config.write_accounting == WriteAccounting::RelevantAttributes {
                    for &a in &q.attrs {
                        if instance.schema().table_of(a) == table {
                            for s in part.attr_sites(a) {
                                relevant_sites[s.index()] = true;
                            }
                        }
                    }
                }
                for ai in instance.schema().table_attrs(table) {
                    let a = AttrId::from_index(ai);
                    let w = instance.schema().width(a) * q.frequency * rows;
                    match config.write_accounting {
                        WriteAccounting::AllAttributes => {
                            for s in part.attr_sites(a) {
                                write += w;
                                site_write[s.index()] += w;
                            }
                        }
                        WriteAccounting::NoAttributes => {}
                        WriteAccounting::RelevantAttributes => {
                            for s in part.attr_sites(a) {
                                if relevant_sites[s.index()] {
                                    write += w;
                                    site_write[s.index()] += w;
                                }
                            }
                        }
                    }
                    // Transfer: updated attributes travel to every replica
                    // site other than the executing one.
                    if q.accesses_attr(a) {
                        for s in part.attr_sites(a) {
                            if s != home {
                                transfer += w;
                            }
                        }
                    }
                }
            }
        } else {
            // Read: single-sited — pay for every locally present attribute
            // of the touched tables on the home site.
            for &(table, rows) in &q.table_rows {
                for ai in instance.schema().table_attrs(table) {
                    let a = AttrId::from_index(ai);
                    if part.has_attr(a, home) {
                        let w = instance.schema().width(a) * q.frequency * rows;
                        read += w;
                        site_read[home.index()] += w;
                    }
                }
            }
        }
    }

    let site_work: Vec<f64> = site_read
        .iter()
        .zip(&site_write)
        .map(|(r, w)| r + w)
        .collect();
    let max_work = site_work.iter().fold(0.0f64, |m, &w| m.max(w));
    let objective4 = read + write + config.p * transfer;
    let latency = latency_term(instance, part, config);
    let objective6 = config.lambda * objective4 + (1.0 - config.lambda) * max_work + latency;

    CostBreakdown {
        read,
        write,
        transfer,
        objective4,
        site_work,
        max_work,
        objective6,
        latency,
    }
}

/// Objective (4) — the paper's reported cost — of a partitioning.
pub fn objective4(instance: &Instance, part: &Partitioning, config: &CostConfig) -> f64 {
    evaluate(instance, part, config).objective4
}

/// Objective (6) — the optimized blend — of a partitioning.
pub fn objective6(instance: &Instance, part: &Partitioning, config: &CostConfig) -> f64 {
    evaluate(instance, part, config).objective6
}

/// Coefficient-based evaluation of objective (6), used by the SA inner
/// loop. Matches [`evaluate`] exactly for the `AllAttributes` and
/// `NoAttributes` strategies (the ones expressible as static coefficients).
/// Includes the latency term when enabled.
pub fn fast_objective6(
    instance: &Instance,
    coeffs: &CostCoefficients,
    part: &Partitioning,
    config: &CostConfig,
) -> f64 {
    let n_sites = part.n_sites();
    let mut quad = 0.0; // Σ c1(a,t)·y[a][x_t]
    let mut site_read = vec![0.0; n_sites];
    for t in 0..part.n_txns() {
        let txn = TxnId::from_index(t);
        let s = part.site_of(txn);
        for &(a, c1, c3) in coeffs.txn_terms(txn) {
            if part.has_attr(a, s) {
                quad += c1;
                site_read[s.index()] += c3;
            }
        }
    }
    let mut lin = 0.0; // Σ c2(a)·replicas(a)
    let mut site_write = vec![0.0; n_sites];
    for a in 0..part.n_attrs() {
        let attr = AttrId::from_index(a);
        let c2 = coeffs.c2(attr);
        let c4 = coeffs.c4(attr);
        for s in part.attr_sites(attr) {
            lin += c2;
            site_write[s.index()] += c4;
        }
    }
    let m = site_read
        .iter()
        .zip(&site_write)
        .map(|(r, w)| r + w)
        .fold(0.0f64, f64::max);
    let obj4 = quad + lin;
    config.lambda * obj4 + (1.0 - config.lambda) * m + latency_term(instance, part, config)
}

/// Coefficient-based objective (4) (`Σ c1·x·y + Σ c2·y`).
pub fn fast_objective4(coeffs: &CostCoefficients, part: &Partitioning) -> f64 {
    let mut total = 0.0;
    for t in 0..part.n_txns() {
        let txn = TxnId::from_index(t);
        let s = part.site_of(txn);
        for &(a, c1, _) in coeffs.txn_terms(txn) {
            if part.has_attr(a, s) {
                total += c1;
            }
        }
    }
    for a in 0..part.n_attrs() {
        let attr = AttrId::from_index(a);
        total += coeffs.c2(attr) * part.replication(attr) as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, SiteId, Workload};

    /// R{k(4), v(8)}: T0 reads k (f=2); T1 writes v (f=1, 3 rows).
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("k", 4.0), ("v", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 3.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("obj", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn single_site_costs_by_hand() {
        let ins = instance();
        let cfg = CostConfig::default();
        let p = Partitioning::single_site(&ins, 1).unwrap();
        let b = evaluate(&ins, &p, &cfg);
        // Read: q0 on site 0 reads both k and v (whole table present):
        // W_k = 8, W_v = 16 → A_R = 24.
        assert_eq!(b.read, 24.0);
        // Write (AllAttributes): q1 writes table on 1 replica site:
        // W_k = 12, W_v = 24 → A_W = 36.
        assert_eq!(b.write, 36.0);
        // No remote replicas → B = 0.
        assert_eq!(b.transfer, 0.0);
        assert_eq!(b.objective4, 60.0);
        assert_eq!(b.max_work, 60.0);
        assert_eq!(b.site_work, vec![60.0]);
        // objective6 = 0.1·60 + 0.9·60 = 60.
        assert!((b.objective6 - 60.0).abs() < 1e-12);
        assert_eq!(b.latency, 0.0);
    }

    #[test]
    fn two_sites_with_replication_by_hand() {
        let ins = instance();
        let cfg = CostConfig::default();
        // T0 on site 0, T1 on site 1; k placed on both, v on both.
        let mut p = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        // minimal: k on site 0 (read by T0); v unread → site 0.
        p.add_replica(AttrId(0), SiteId(1));
        p.add_replica(AttrId(1), SiteId(1));
        let b = evaluate(&ins, &p, &cfg);
        // Read unchanged (both attrs on site 0): 24.
        assert_eq!(b.read, 24.0);
        // Write: both attrs now on 2 sites → 2·36 = 72.
        assert_eq!(b.write, 72.0);
        // Transfer: v (α of q1) has a replica on site 0 ≠ home(T1)=1 → 24.
        assert_eq!(b.transfer, 24.0);
        assert_eq!(b.objective4, 24.0 + 72.0 + 8.0 * 24.0);
        // Site work: site0 = read 24 + write 36 = 60; site1 = write 36.
        assert_eq!(b.site_work, vec![60.0, 36.0]);
        assert_eq!(b.max_work, 60.0);
    }

    #[test]
    fn fast_paths_agree_with_evaluate() {
        let ins = instance();
        for wa in [
            WriteAccounting::AllAttributes,
            WriteAccounting::NoAttributes,
        ] {
            let cfg = CostConfig::default().with_write_accounting(wa);
            let coeffs = CostCoefficients::compute(&ins, &cfg);
            for x in [
                vec![SiteId(0), SiteId(0)],
                vec![SiteId(0), SiteId(1)],
                vec![SiteId(1), SiteId(0)],
            ] {
                let mut p = Partitioning::minimal_for_x(&ins, x, 2).unwrap();
                let b = evaluate(&ins, &p, &cfg);
                assert!(
                    (fast_objective6(&ins, &coeffs, &p, &cfg) - b.objective6).abs() < 1e-9,
                    "fast6 mismatch ({wa:?})"
                );
                assert!((fast_objective4(&coeffs, &p) - b.objective4).abs() < 1e-9);
                // And again with extra replication.
                p.add_replica(AttrId(0), SiteId(1));
                let b = evaluate(&ins, &p, &cfg);
                assert!((fast_objective6(&ins, &coeffs, &p, &cfg) - b.objective6).abs() < 1e-9);
                assert!((fast_objective4(&coeffs, &p) - b.objective4).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn relevant_accounting_is_at_most_all_attributes() {
        let ins = instance();
        let all = CostConfig::default();
        let rel = CostConfig::default().with_write_accounting(WriteAccounting::RelevantAttributes);
        let none = CostConfig::default().with_write_accounting(WriteAccounting::NoAttributes);
        let mut p = Partitioning::single_site(&ins, 2).unwrap();
        p.add_replica(AttrId(0), SiteId(1)); // k alone on site 1
        let b_all = evaluate(&ins, &p, &all);
        let b_rel = evaluate(&ins, &p, &rel);
        let b_none = evaluate(&ins, &p, &none);
        // Site 1 holds only k, which q1 does not write → relevant pays
        // nothing there, all-attributes pays W_k = 12.
        assert_eq!(b_all.write, 36.0 + 12.0);
        assert_eq!(b_rel.write, 36.0);
        assert_eq!(b_none.write, 0.0);
        assert!(b_none.write <= b_rel.write && b_rel.write <= b_all.write);
    }

    #[test]
    fn local_placement_has_zero_transfer_cost_weight() {
        let ins = instance();
        let cfg = CostConfig::local_placement();
        let mut p = Partitioning::single_site(&ins, 2).unwrap();
        p.add_replica(AttrId(1), SiteId(1));
        let b = evaluate(&ins, &p, &cfg);
        assert!(b.transfer > 0.0); // bytes still counted...
        assert_eq!(b.objective4, b.read + b.write); // ...but cost-free
    }
}
