//! Static cost coefficients (§2.1).
//!
//! For a workload with weights `W_{a,q} = w_a · f_q · n_{a,q}`:
//!
//! * `c1(a,t) = Σ_q W_{a,q}·γ_{q,t}·(β_{a,q}(1−δ_q) − p·α_{a,q}·δ_q)` —
//!   the coefficient of the product `x_{t,s}·y_{a,s}` in objective (4),
//! * `c2(a) = Σ_q W_{a,q}·δ_q·(β_{a,q} + p·α_{a,q})` — the per-replica
//!   cost of attribute `a`,
//! * `c3(a,t) = Σ_q W_{a,q}·γ_{q,t}·β_{a,q}·(1−δ_q)` — read work (load),
//! * `c4(a) = Σ_q W_{a,q}·β_{a,q}·δ_q` — write work per replica (load).
//!
//! All four are fully determined by the instance and the
//! [`CostConfig`] (through `p` and the write-accounting
//! strategy) and are computed once before solving.

use crate::config::{CostConfig, WriteAccounting};
use vpart_model::{AttrId, Instance, TxnId};

/// Per-transaction sparse coefficient row: `(attribute, c1, c3)`, sorted by
/// attribute. Only attributes of tables touched by the transaction appear.
pub type TxnTerms = Vec<(AttrId, f64, f64)>;

/// Precomputed `c1..c4` for an instance under a given cost configuration.
#[derive(Debug, Clone)]
pub struct CostCoefficients {
    per_txn: Vec<TxnTerms>,
    c2: Vec<f64>,
    c4: Vec<f64>,
    /// The network penalty the coefficients were computed with.
    pub p: f64,
}

impl CostCoefficients {
    /// Computes all coefficients for `instance`.
    ///
    /// With [`WriteAccounting::NoAttributes`], the `β`-write terms are
    /// dropped from `c2` and `c4` (transfer still counts).
    /// [`WriteAccounting::RelevantAttributes`] cannot be expressed in
    /// static coefficients; callers needing it must evaluate through
    /// [`crate::cost::objective::evaluate`]. For coefficient purposes it is
    /// treated like `AllAttributes` (the paper's conservative choice).
    pub fn compute(instance: &Instance, config: &CostConfig) -> Self {
        let n_attrs = instance.n_attrs();
        let n_txns = instance.n_txns();
        let p = config.p;
        let count_beta_writes = config.write_accounting != WriteAccounting::NoAttributes;

        let mut c2 = vec![0.0; n_attrs];
        let mut c4 = vec![0.0; n_attrs];
        // Scratch accumulators, re-stamped per transaction.
        let mut acc_c1 = vec![0.0; n_attrs];
        let mut acc_c3 = vec![0.0; n_attrs];
        let mut touched: Vec<usize> = Vec::new();
        let mut stamp = vec![false; n_attrs];

        let mut per_txn = Vec::with_capacity(n_txns);
        for t in 0..n_txns {
            let txn = instance.workload().txn(TxnId::from_index(t));
            for &qid in &txn.queries {
                let q = instance.workload().query(qid);
                let delta = q.kind.is_write();
                for &(table, rows) in &q.table_rows {
                    for ai in instance.schema().table_attrs(table) {
                        let a = AttrId::from_index(ai);
                        let w = instance.schema().width(a) * q.frequency * rows;
                        let alpha = q.accesses_attr(a);
                        if !stamp[ai] {
                            stamp[ai] = true;
                            touched.push(ai);
                        }
                        if delta {
                            // Write: c1 gets the −p·α term; c2/c4 are
                            // txn-independent and accumulated globally.
                            if alpha {
                                acc_c1[ai] -= p * w;
                                c2[ai] += p * w;
                            }
                            if count_beta_writes {
                                c2[ai] += w;
                                c4[ai] += w;
                            }
                        } else {
                            // Read: β contribution to c1 and c3.
                            acc_c1[ai] += w;
                            acc_c3[ai] += w;
                        }
                    }
                }
            }
            touched.sort_unstable();
            let terms: TxnTerms = touched
                .iter()
                .map(|&ai| (AttrId::from_index(ai), acc_c1[ai], acc_c3[ai]))
                .collect();
            for &ai in &touched {
                acc_c1[ai] = 0.0;
                acc_c3[ai] = 0.0;
                stamp[ai] = false;
            }
            touched.clear();
            per_txn.push(terms);
        }

        Self { per_txn, c2, c4, p }
    }

    /// Sparse `(a, c1, c3)` row for transaction `t`.
    #[inline]
    pub fn txn_terms(&self, t: TxnId) -> &TxnTerms {
        &self.per_txn[t.index()]
    }

    /// `c1(a, t)`; zero outside the transaction's touched tables.
    pub fn c1(&self, a: AttrId, t: TxnId) -> f64 {
        self.per_txn[t.index()]
            .binary_search_by_key(&a, |&(aa, _, _)| aa)
            .map(|i| self.per_txn[t.index()][i].1)
            .unwrap_or(0.0)
    }

    /// `c3(a, t)`; zero outside the transaction's touched tables.
    pub fn c3(&self, a: AttrId, t: TxnId) -> f64 {
        self.per_txn[t.index()]
            .binary_search_by_key(&a, |&(aa, _, _)| aa)
            .map(|i| self.per_txn[t.index()][i].2)
            .unwrap_or(0.0)
    }

    /// `c2(a)`.
    #[inline]
    pub fn c2(&self, a: AttrId) -> f64 {
        self.c2[a.index()]
    }

    /// `c4(a)`.
    #[inline]
    pub fn c4(&self, a: AttrId) -> f64 {
        self.c4[a.index()]
    }

    /// Number of attributes covered.
    pub fn n_attrs(&self) -> usize {
        self.c2.len()
    }

    /// Number of transactions covered.
    pub fn n_txns(&self) -> usize {
        self.per_txn.len()
    }

    /// Total count of nonzero `(a, t)` pairs (the `u`-variable support of
    /// the linearized program).
    pub fn nnz_pairs(&self) -> usize {
        self.per_txn.iter().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    /// One table {k(4), v(8)}; txn T0 reads k (freq 2, 1 row); txn T1
    /// writes v (freq 1, 3 rows).
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("k", 4.0), ("v", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 3.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("coeff", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn hand_computed_coefficients() {
        let ins = instance();
        let cfg = CostConfig::default(); // p = 8
        let c = CostCoefficients::compute(&ins, &cfg);
        let (k, v) = (AttrId(0), AttrId(1));
        let (t0, t1) = (TxnId(0), TxnId(1));

        // W for q0: w_k·f2·n1 = 8 on k, w_v·f2·n1 = 16 on v (β support).
        // W for q1: w_k·1·3 = 12 on k, w_v·1·3 = 24 on v.

        // c1(k, T0) = +8 (read β), c1(v, T0) = +16.
        assert_eq!(c.c1(k, t0), 8.0);
        assert_eq!(c.c1(v, t0), 16.0);
        // c1(k, T1): write, α=0 → 0.  c1(v, T1) = −p·24 = −192.
        assert_eq!(c.c1(k, t1), 0.0);
        assert_eq!(c.c1(v, t1), -192.0);
        // c2(k) = W δ (β) = 12; c2(v) = 24·(1 + 8) = 216.
        assert_eq!(c.c2(k), 12.0);
        assert_eq!(c.c2(v), 216.0);
        // c3: read work only.
        assert_eq!(c.c3(k, t0), 8.0);
        assert_eq!(c.c3(v, t0), 16.0);
        assert_eq!(c.c3(v, t1), 0.0);
        // c4: write β work.
        assert_eq!(c.c4(k), 12.0);
        assert_eq!(c.c4(v), 24.0);

        assert_eq!(c.n_attrs(), 2);
        assert_eq!(c.n_txns(), 2);
        assert_eq!(c.nnz_pairs(), 4);
    }

    #[test]
    fn no_attributes_accounting_drops_beta_writes() {
        let ins = instance();
        let cfg = CostConfig::default().with_write_accounting(WriteAccounting::NoAttributes);
        let c = CostCoefficients::compute(&ins, &cfg);
        // Only transfer terms remain in c2; c4 vanishes.
        assert_eq!(c.c2(AttrId(0)), 0.0);
        assert_eq!(c.c2(AttrId(1)), 192.0);
        assert_eq!(c.c4(AttrId(0)), 0.0);
        assert_eq!(c.c4(AttrId(1)), 0.0);
        // c1 unchanged (the −p·α·δ term is transfer, not local access).
        assert_eq!(c.c1(AttrId(1), TxnId(1)), -192.0);
    }

    #[test]
    fn zero_p_removes_transfer_terms() {
        let ins = instance();
        let cfg = CostConfig::local_placement(); // p = 0
        let c = CostCoefficients::compute(&ins, &cfg);
        assert_eq!(c.c1(AttrId(1), TxnId(1)), 0.0);
        assert_eq!(c.c2(AttrId(1)), 24.0);
    }

    #[test]
    fn out_of_support_lookups_are_zero() {
        let ins = instance();
        let c = CostCoefficients::compute(&ins, &CostConfig::default());
        // Both txns touch table R, so support is full here; check an
        // explicit binary-search miss via a synthetic transaction id range.
        assert_eq!(c.txn_terms(TxnId(0)).len(), 2);
    }
}
