//! The latency extension of Appendix A.
//!
//! For each query `q`, the indicator `ψ_q` is 1 iff `q` accesses any
//! remotely placed attribute. Because read queries are single-sited by
//! construction, only *write* queries can touch remote replicas, which the
//! appendix encodes with the `δ_q` factor in its constraints. The total
//! latency estimate is `p_l · Σ_q f_q · ψ_q`, assuming remote accesses of a
//! query happen in parallel with a constant number of round trips.

use crate::config::CostConfig;
use vpart_model::{Instance, Partitioning, QueryId};

/// `ψ_q`: does write query `q` touch any attribute replica placed on a site
/// other than its transaction's executing site?
pub fn psi(instance: &Instance, part: &Partitioning, q: QueryId) -> bool {
    let query = instance.workload().query(q);
    if !query.kind.is_write() {
        return false;
    }
    let home = part.site_of(instance.gamma(q));
    query
        .attrs
        .iter()
        .any(|&a| part.attr_sites(a).any(|s| s != home))
}

/// The Appendix A latency term `p_l · Σ_q f_q · ψ_q`; 0 when the latency
/// penalty is disabled in `config`.
pub fn latency_term(instance: &Instance, part: &Partitioning, config: &CostConfig) -> f64 {
    let Some(pl) = config.latency_penalty else {
        return 0.0;
    };
    let mut total = 0.0;
    for qi in 0..instance.n_queries() {
        let q = QueryId::from_index(qi);
        if psi(instance, part, q) {
            total += instance.workload().query(q).frequency;
        }
    }
    pl * total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, SiteId, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 4.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let qr = wb
            .add_query(QuerySpec::read("qr").access(&[AttrId(0)]))
            .unwrap();
        let qw = wb
            .add_query(QuerySpec::write("qw").access(&[AttrId(1)]).frequency(3.0))
            .unwrap();
        wb.transaction("T", &[qr, qw]).unwrap();
        Instance::new("lat", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn psi_zero_without_remote_replicas() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 2).unwrap();
        assert!(!psi(&ins, &p, QueryId(0)));
        assert!(!psi(&ins, &p, QueryId(1)));
        let cfg = CostConfig::default().with_latency(5.0);
        assert_eq!(latency_term(&ins, &p, &cfg), 0.0);
    }

    #[test]
    fn psi_counts_remote_write_replicas_only() {
        let ins = instance();
        let mut p = Partitioning::single_site(&ins, 2).unwrap();
        // Replicate the *written* attribute b to site 1 (txn runs on 0).
        p.add_replica(AttrId(1), SiteId(1));
        assert!(psi(&ins, &p, QueryId(1)));
        // Reads never count, even with replicas of their attributes.
        p.add_replica(AttrId(0), SiteId(1));
        assert!(!psi(&ins, &p, QueryId(0)));
        // latency = pl · f_qw = 5 · 3.
        let cfg = CostConfig::default().with_latency(5.0);
        assert_eq!(latency_term(&ins, &p, &cfg), 15.0);
        // Disabled by default.
        assert_eq!(latency_term(&ins, &p, &CostConfig::default()), 0.0);
    }
}
