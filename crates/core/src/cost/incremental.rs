//! Incremental (delta) evaluation of objective (6).
//!
//! The simulated-annealing inner loop evaluates one candidate layout per
//! move. Re-running [`fast_objective6`] walks every transaction's
//! coefficient row and every attribute's replica set — `O(nnz + |A|·|S|)`
//! per candidate. [`IncrementalCost`] instead maintains the objective's
//! decomposition under point mutations, so a transaction move costs
//! `O(|terms of the moved txn|)` and a replica change costs `O(|S|)`:
//!
//! * `agg1[a][s] = Σ_{t on s} c1(a,t)` and `agg3[a][s] = Σ_{t on s} c3(a,t)`
//!   — the per-`(attribute, site)` marginals of placing a replica,
//! * `quad = Σ_{(a,s): y[a][s]} agg1[a][s]` — the `x·y` product part of
//!   objective (4),
//! * `lin = Σ_a c2(a)·|replicas(a)|` — the per-replica part,
//! * `site_read[s]`/`site_write[s]` — the equation (5) work decomposition,
//! * `forced[a][s] = #{t on s : a ∈ read_set(t)}` — single-sitedness
//!   reference counts, making feasibility of replica removal an `O(1)`
//!   check.
//!
//! Every mutation appends to an undo log; [`IncrementalCost::revert`]
//! rolls the state (including the owned [`Partitioning`]) back to a
//! [`IncrementalCost::mark`], which is how the annealing loop rejects
//! candidates. Floating-point drift from long add/subtract chains is
//! bounded by [`IncrementalCost::resync`], a full recompute the solver
//! runs at temperature-level checkpoints.
//!
//! Parity: [`IncrementalCost::objective6`] matches [`fast_objective6`]
//! for the `AllAttributes`/`NoAttributes` write-accounting strategies
//! (property-tested under random move/revert sequences). The Appendix A
//! latency term is recomputed exactly (not incrementally) when enabled —
//! correct but `O(|Q|)` per evaluation, so latency-enabled solves lose
//! most of the incremental speedup.
//!
//! [`fast_objective6`]: crate::cost::objective::fast_objective6

use crate::config::CostConfig;
use crate::cost::coeffs::CostCoefficients;
use crate::cost::latency::latency_term;
use vpart_model::{AttrId, Instance, Partitioning, SiteId, TxnId};

/// One entry of the undo log.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `x[t]` changed; `from` is the previous site.
    TxnMoved { t: TxnId, from: SiteId },
    /// `y[a][s]` flipped 0 → 1.
    ReplicaAdded { a: AttrId, s: SiteId },
    /// `y[a][s]` flipped 1 → 0.
    ReplicaDropped { a: AttrId, s: SiteId },
}

/// A position in the undo log; see [`IncrementalCost::mark`].
pub type Mark = usize;

/// Incrementally maintained cost state for one evolving [`Partitioning`].
#[derive(Debug, Clone)]
pub struct IncrementalCost<'a> {
    instance: &'a Instance,
    coeffs: &'a CostCoefficients,
    config: &'a CostConfig,
    part: Partitioning,
    n_sites: usize,
    /// `Σ_{t on s} c1(a,t)` per `(a, s)` (row-major `a * n_sites + s`).
    agg1: Vec<f64>,
    /// `Σ_{t on s} c3(a,t)` per `(a, s)`.
    agg3: Vec<f64>,
    /// Single-sitedness reference counts per `(a, s)`.
    forced: Vec<u32>,
    /// `Σ c1` over placed `(a, s)` cells — the `x·y` part of objective (4).
    quad: f64,
    /// `Σ c2(a)·|replicas(a)|`.
    lin: f64,
    site_read: Vec<f64>,
    site_write: Vec<f64>,
    undo: Vec<Op>,
    /// Mutations applied since construction; drives the periodic
    /// parity self-check under `debug-invariants`.
    #[cfg(feature = "debug-invariants")]
    mutations: u64,
}

/// How often (in mutations) the `debug-invariants` build re-derives the
/// objective from scratch and asserts parity with the incremental state.
#[cfg(feature = "debug-invariants")]
const PARITY_PERIOD: u64 = 1024;

impl<'a> IncrementalCost<'a> {
    /// Builds the accumulators for `part` (which must be feasible for
    /// `instance`; see [`Partitioning::validate`]). Takes ownership of the
    /// partitioning — mutate it only through the `apply_*` operations so
    /// the cached sums stay consistent.
    pub fn new(
        instance: &'a Instance,
        coeffs: &'a CostCoefficients,
        config: &'a CostConfig,
        part: Partitioning,
    ) -> Self {
        let n_sites = part.n_sites();
        let n_attrs = part.n_attrs();
        let mut state = Self {
            instance,
            coeffs,
            config,
            part,
            n_sites,
            agg1: vec![0.0; n_attrs * n_sites],
            agg3: vec![0.0; n_attrs * n_sites],
            forced: vec![0; n_attrs * n_sites],
            quad: 0.0,
            lin: 0.0,
            site_read: vec![0.0; n_sites],
            site_write: vec![0.0; n_sites],
            undo: Vec::new(),
            #[cfg(feature = "debug-invariants")]
            mutations: 0,
        };
        state.rebuild();
        state
    }

    /// Recomputes every accumulator from the current partitioning.
    fn rebuild(&mut self) {
        let n_sites = self.n_sites;
        self.agg1.fill(0.0);
        self.agg3.fill(0.0);
        self.forced.fill(0);
        self.site_read.fill(0.0);
        self.site_write.fill(0.0);
        self.quad = 0.0;
        self.lin = 0.0;
        for t in 0..self.part.n_txns() {
            let txn = TxnId::from_index(t);
            let s = self.part.site_of(txn).index();
            for &(a, c1, c3) in self.coeffs.txn_terms(txn) {
                self.agg1[a.index() * n_sites + s] += c1;
                self.agg3[a.index() * n_sites + s] += c3;
            }
            for &a in self.instance.read_set(txn) {
                self.forced[a.index() * n_sites + s] += 1;
            }
        }
        for a in 0..self.part.n_attrs() {
            let attr = AttrId::from_index(a);
            let c2 = self.coeffs.c2(attr);
            let c4 = self.coeffs.c4(attr);
            for s in self.part.attr_sites(attr) {
                self.quad += self.agg1[a * n_sites + s.index()];
                self.site_read[s.index()] += self.agg3[a * n_sites + s.index()];
                self.lin += c2;
                self.site_write[s.index()] += c4;
            }
        }
    }

    /// The partitioning in its current (possibly uncommitted) state.
    pub fn partitioning(&self) -> &Partitioning {
        &self.part
    }

    /// Consumes the state, returning the partitioning.
    pub fn into_partitioning(self) -> Partitioning {
        self.part
    }

    /// Objective (4): `quad + lin`.
    pub fn objective4(&self) -> f64 {
        self.quad + self.lin
    }

    /// Per-site work (equation (5)).
    pub fn site_work(&self, s: SiteId) -> f64 {
        self.site_read[s.index()] + self.site_write[s.index()]
    }

    /// `m`: the maximum site work.
    pub fn max_work(&self) -> f64 {
        (0..self.n_sites)
            .map(|s| self.site_read[s] + self.site_write[s])
            .fold(0.0f64, f64::max)
    }

    /// Objective (6): `λ·(quad + lin) + (1−λ)·m` plus the Appendix A
    /// latency term when enabled. Matches
    /// [`crate::cost::objective::fast_objective6`] on the same
    /// partitioning.
    pub fn objective6(&self) -> f64 {
        let base =
            self.config.lambda * self.objective4() + (1.0 - self.config.lambda) * self.max_work();
        base + latency_term(self.instance, &self.part, self.config)
    }

    /// Moves transaction `t` to `site`, first adding any replicas its read
    /// set forces there (single-sitedness). `O(|terms(t)|)`. No-op if the
    /// transaction already executes on `site`.
    pub fn apply_txn_move(&mut self, t: TxnId, site: SiteId) {
        let from = self.part.site_of(t);
        if from == site {
            return;
        }
        // Forced replicas must exist before the move so the partitioning
        // never transits through an infeasible state.
        let missing: Vec<AttrId> = self
            .instance
            .read_set(t)
            .iter()
            .copied()
            .filter(|&a| !self.part.has_attr(a, site))
            .collect();
        for a in missing {
            self.apply_attr_replica(a, site);
        }
        let (old, new) = (from.index(), site.index());
        for &(a, c1, c3) in self.coeffs.txn_terms(t) {
            let (ro, rn) = (
                a.index() * self.n_sites + old,
                a.index() * self.n_sites + new,
            );
            self.agg1[ro] -= c1;
            self.agg3[ro] -= c3;
            self.agg1[rn] += c1;
            self.agg3[rn] += c3;
            if self.part.has_attr(a, from) {
                self.quad -= c1;
                self.site_read[old] -= c3;
            }
            if self.part.has_attr(a, site) {
                self.quad += c1;
                self.site_read[new] += c3;
            }
        }
        for &a in self.instance.read_set(t) {
            self.forced[a.index() * self.n_sites + old] -= 1;
            self.forced[a.index() * self.n_sites + new] += 1;
        }
        self.part.move_txn(t, site);
        self.undo.push(Op::TxnMoved { t, from });
        self.note_mutation();
    }

    /// Adds a replica of `a` on `site`. Returns `false` (and does nothing)
    /// if the replica already exists. `O(1)`.
    pub fn apply_attr_replica(&mut self, a: AttrId, site: SiteId) -> bool {
        if self.part.has_attr(a, site) {
            return false;
        }
        let cell = a.index() * self.n_sites + site.index();
        self.quad += self.agg1[cell];
        self.site_read[site.index()] += self.agg3[cell];
        self.lin += self.coeffs.c2(a);
        self.site_write[site.index()] += self.coeffs.c4(a);
        self.part.add_replica(a, site);
        self.undo.push(Op::ReplicaAdded { a, s: site });
        self.note_mutation();
        true
    }

    /// True if the replica of `a` on `site` exists and can be removed
    /// without violating a constraint: no transaction on `site` reads `a`,
    /// and it is not the last replica.
    pub fn can_drop_replica(&self, a: AttrId, site: SiteId) -> bool {
        self.part.has_attr(a, site)
            && self.forced[a.index() * self.n_sites + site.index()] == 0
            && self.part.replication(a) > 1
    }

    /// Removes the replica of `a` on `site` if feasible (see
    /// [`IncrementalCost::can_drop_replica`]); returns whether it did.
    pub fn apply_attr_drop(&mut self, a: AttrId, site: SiteId) -> bool {
        if !self.can_drop_replica(a, site) {
            return false;
        }
        let cell = a.index() * self.n_sites + site.index();
        self.quad -= self.agg1[cell];
        self.site_read[site.index()] -= self.agg3[cell];
        self.lin -= self.coeffs.c2(a);
        self.site_write[site.index()] -= self.coeffs.c4(a);
        self.part.remove_replica(a, site);
        self.undo.push(Op::ReplicaDropped { a, s: site });
        self.note_mutation();
        true
    }

    /// Current undo-log position. Mutations made after a mark can be
    /// rolled back with [`IncrementalCost::revert`].
    pub fn mark(&self) -> Mark {
        self.undo.len()
    }

    /// Rolls every mutation after `mark` back, in reverse order. The
    /// partitioning returns to its exact previous layout; accumulated
    /// floats may differ by rounding noise (bounded via
    /// [`IncrementalCost::resync`]).
    pub fn revert(&mut self, mark: Mark) {
        while self.undo.len() > mark {
            let op = self.undo.pop().expect("undo log not empty");
            match op {
                Op::TxnMoved { t, from } => self.unapply_txn_move(t, from),
                Op::ReplicaAdded { a, s } => self.unapply_replica_add(a, s),
                Op::ReplicaDropped { a, s } => self.unapply_replica_drop(a, s),
            }
        }
    }

    /// Discards undo history (accepts all mutations made so far).
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// Inverse of [`IncrementalCost::apply_txn_move`] without logging.
    fn unapply_txn_move(&mut self, t: TxnId, from: SiteId) {
        let here = self.part.site_of(t);
        let (old, new) = (here.index(), from.index());
        for &(a, c1, c3) in self.coeffs.txn_terms(t) {
            let (ro, rn) = (
                a.index() * self.n_sites + old,
                a.index() * self.n_sites + new,
            );
            self.agg1[ro] -= c1;
            self.agg3[ro] -= c3;
            self.agg1[rn] += c1;
            self.agg3[rn] += c3;
            if self.part.has_attr(a, here) {
                self.quad -= c1;
                self.site_read[old] -= c3;
            }
            if self.part.has_attr(a, from) {
                self.quad += c1;
                self.site_read[new] += c3;
            }
        }
        for &a in self.instance.read_set(t) {
            self.forced[a.index() * self.n_sites + old] -= 1;
            self.forced[a.index() * self.n_sites + new] += 1;
        }
        self.part.move_txn(t, from);
    }

    /// Inverse of [`IncrementalCost::apply_attr_replica`] without logging
    /// or feasibility checks (the log order guarantees feasibility).
    fn unapply_replica_add(&mut self, a: AttrId, site: SiteId) {
        let cell = a.index() * self.n_sites + site.index();
        self.quad -= self.agg1[cell];
        self.site_read[site.index()] -= self.agg3[cell];
        self.lin -= self.coeffs.c2(a);
        self.site_write[site.index()] -= self.coeffs.c4(a);
        self.part.remove_replica(a, site);
    }

    /// Inverse of [`IncrementalCost::apply_attr_drop`] without logging.
    fn unapply_replica_drop(&mut self, a: AttrId, site: SiteId) {
        let cell = a.index() * self.n_sites + site.index();
        self.quad += self.agg1[cell];
        self.site_read[site.index()] += self.agg3[cell];
        self.lin += self.coeffs.c2(a);
        self.site_write[site.index()] += self.coeffs.c4(a);
        self.part.add_replica(a, site);
    }

    /// `debug-invariants` self-check: every [`PARITY_PERIOD`] mutations,
    /// re-derive objective (6) from scratch and assert the incremental
    /// accumulators agree. Catches delta-bookkeeping bugs the moment a
    /// long solve drifts, at ~0.1% amortized cost. Compiles to nothing
    /// without the feature.
    #[cfg(feature = "debug-invariants")]
    fn note_mutation(&mut self) {
        self.mutations += 1;
        if self.mutations % PARITY_PERIOD != 0 {
            return;
        }
        let full = crate::cost::objective::fast_objective6(
            self.instance,
            self.coeffs,
            &self.part,
            self.config,
        );
        let inc = self.objective6();
        assert!(
            (inc - full).abs() <= 1e-6 * (1.0 + full.abs()),
            "debug-invariants: incremental objective {inc} diverged from \
             full recompute {full} after {} mutations",
            self.mutations
        );
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn note_mutation(&mut self) {}

    /// Drift guard: recomputes all accumulators from scratch and returns
    /// the absolute difference in objective (6) between the incremental
    /// and the fresh value. Commits pending mutations (the undo log is
    /// cleared — reverting across a resync would mix stale accumulators).
    pub fn resync(&mut self) -> f64 {
        let before = self.objective6();
        self.undo.clear();
        self.rebuild();
        (before - self.objective6()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WriteAccounting;
    use crate::cost::objective::{evaluate, fast_objective6};
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    /// R{k, v}, S{p, q}: reads on k / p+q, a write on v.
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("k", 4.0), ("v", 8.0)]).unwrap();
        sb.table("S", &[("p", 2.0), ("q", 16.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(2.0))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 3.0),
            )
            .unwrap();
        let q2 = wb
            .add_query(QuerySpec::read("q2").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        wb.transaction("T2", &[q2]).unwrap();
        Instance::new("inc", schema, wb.build().unwrap()).unwrap()
    }

    fn assert_matches_full(inc: &IncrementalCost, ins: &Instance, cfg: &CostConfig) {
        let full = fast_objective6(ins, inc.coeffs, inc.partitioning(), cfg);
        let scale = 1.0 + full.abs();
        assert!(
            (inc.objective6() - full).abs() <= 1e-9 * scale,
            "incremental {} vs full {}",
            inc.objective6(),
            full
        );
        let b = evaluate(ins, inc.partitioning(), cfg);
        assert!((inc.max_work() - b.max_work).abs() <= 1e-9 * (1.0 + b.max_work));
    }

    #[test]
    fn initial_state_matches_full_evaluation() {
        let ins = instance();
        for wa in [
            WriteAccounting::AllAttributes,
            WriteAccounting::NoAttributes,
        ] {
            let cfg = CostConfig::default().with_write_accounting(wa);
            let coeffs = CostCoefficients::compute(&ins, &cfg);
            let part = Partitioning::single_site(&ins, 3).unwrap();
            let inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
            assert_matches_full(&inc, &ins, &cfg);
        }
    }

    #[test]
    fn txn_move_adds_forced_replicas_and_tracks_cost() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        inc.apply_txn_move(TxnId(2), SiteId(1));
        // T2 reads p, q → both must now be on site 1.
        assert!(inc.partitioning().has_attr(AttrId(2), SiteId(1)));
        assert!(inc.partitioning().has_attr(AttrId(3), SiteId(1)));
        inc.partitioning().validate(&ins, false).unwrap();
        assert_matches_full(&inc, &ins, &cfg);
    }

    #[test]
    fn replica_add_and_drop_round_trip() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        let before = inc.objective6();
        assert!(inc.apply_attr_replica(AttrId(1), SiteId(1)));
        assert!(!inc.apply_attr_replica(AttrId(1), SiteId(1)), "idempotent");
        assert_matches_full(&inc, &ins, &cfg);
        assert!(inc.apply_attr_drop(AttrId(1), SiteId(1)));
        assert!((inc.objective6() - before).abs() <= 1e-9 * (1.0 + before.abs()));
    }

    #[test]
    fn drop_respects_feasibility() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        // k is read by T0 on site 0: its only replica is both forced and
        // last, so it cannot be dropped.
        assert!(!inc.can_drop_replica(AttrId(0), SiteId(0)));
        assert!(!inc.apply_attr_drop(AttrId(0), SiteId(0)));
        // After replicating k to site 1, the site-1 copy is unforced and
        // droppable; the site-0 copy remains forced.
        inc.apply_attr_replica(AttrId(0), SiteId(1));
        assert!(inc.can_drop_replica(AttrId(0), SiteId(1)));
        assert!(!inc.can_drop_replica(AttrId(0), SiteId(0)));
        // Missing replicas are not droppable either.
        assert!(!inc.apply_attr_drop(AttrId(2), SiteId(1)));
    }

    #[test]
    fn revert_restores_layout_and_cost() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 3).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        let layout = inc.partitioning().clone();
        let before = inc.objective6();
        let mark = inc.mark();
        inc.apply_txn_move(TxnId(0), SiteId(2));
        inc.apply_attr_replica(AttrId(3), SiteId(1));
        inc.apply_txn_move(TxnId(2), SiteId(1));
        assert!(inc.objective6() != before);
        inc.revert(mark);
        assert_eq!(inc.partitioning(), &layout, "layout restored exactly");
        assert!((inc.objective6() - before).abs() <= 1e-9 * (1.0 + before.abs()));
        assert_matches_full(&inc, &ins, &cfg);
    }

    #[test]
    fn resync_is_a_noop_within_tolerance() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 3).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        // Churn the accumulators with a long apply/revert sequence.
        for round in 0..50usize {
            let mark = inc.mark();
            inc.apply_txn_move(TxnId::from_index(round % 3), SiteId::from_index(round % 3));
            inc.apply_attr_replica(
                AttrId::from_index(round % 4),
                SiteId::from_index((round + 1) % 3),
            );
            if round % 2 == 0 {
                inc.revert(mark);
            } else {
                inc.commit();
            }
        }
        let scale = 1.0 + inc.objective6().abs();
        let drift = inc.resync();
        assert!(drift <= 1e-9 * scale, "checkpoint drift {drift} too large");
        assert_matches_full(&inc, &ins, &cfg);
    }

    /// With `debug-invariants` on, a run long enough to cross several
    /// [`PARITY_PERIOD`] boundaries keeps passing the periodic parity
    /// self-check in `note_mutation` (which would panic on divergence).
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn parity_self_check_passes_long_mutation_runs() {
        let ins = instance();
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 3).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        let mut round = 0usize;
        while inc.mutations < 3 * PARITY_PERIOD {
            round += 1;
            assert!(round < 100_000, "mutation mix failed to accumulate");
            let mark = inc.mark();
            // Cycle through every (txn, site) pair so moves rarely no-op,
            // and alternate replica adds with feasible drops.
            inc.apply_txn_move(
                TxnId::from_index(round % 3),
                SiteId::from_index((round / 3) % 3),
            );
            let (a, s) = (
                AttrId::from_index(round % 4),
                SiteId::from_index((round + 1) % 3),
            );
            if inc.can_drop_replica(a, s) {
                inc.apply_attr_drop(a, s);
            } else {
                inc.apply_attr_replica(a, s);
            }
            if round % 3 == 0 {
                inc.revert(mark);
            } else {
                inc.commit();
            }
        }
        assert_matches_full(&inc, &ins, &cfg);
    }

    #[test]
    fn latency_term_is_included_when_enabled() {
        let ins = instance();
        let cfg = CostConfig::default().with_latency(5.0);
        let coeffs = CostCoefficients::compute(&ins, &cfg);
        let part = Partitioning::single_site(&ins, 2).unwrap();
        let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part);
        // Replicating the written attribute v makes q1 remote → ψ = 1.
        inc.apply_attr_replica(AttrId(1), SiteId(1));
        assert_matches_full(&inc, &ins, &cfg);
    }
}
