//! The cost model of §2.1–2.2 and Appendix A.
//!
//! * [`coeffs`] — the static coefficients `c1(a,t)`, `c2(a)`, `c3(a,t)`,
//!   `c4(a)` induced by schema, workload and statistics,
//! * [`objective`] — evaluation of the reported objective (4), the
//!   optimized objective (6) and the full cost breakdown for a given
//!   partitioning,
//! * [`incremental`] — delta evaluation of objective (6) under point
//!   mutations (the SA inner loop's fast path),
//! * [`latency`] — the ψ-indicator latency term of Appendix A,
//! * [`predict`] — the per-transaction byte decomposition consumed by the
//!   replay harness for model-vs-measured validation.

pub mod coeffs;
pub mod incremental;
pub mod latency;
pub mod objective;
pub mod predict;
