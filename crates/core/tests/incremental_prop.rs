//! Property tests of the incremental objective engine: any random
//! sequence of `apply_*`/`revert` operations on [`IncrementalCost`] must
//! agree with a fresh [`fast_objective6`] recompute of the same layout —
//! for both coefficient-expressible write-accounting strategies and for
//! λ ∈ {1.0, 0.5} — and the checkpoint resync must be a no-op within
//! float tolerance.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpart_core::{fast_objective6, CostCoefficients, CostConfig, IncrementalCost, WriteAccounting};
use vpart_instances::RandomParams;
use vpart_model::{AttrId, Partitioning, SiteId, TxnId};

const TOL: f64 = 1e-9;

fn small_params() -> impl Strategy<Value = (RandomParams, u64)> {
    (2usize..8, 1usize..4, 0u32..70, 2usize..8, any::<u64>()).prop_map(
        |(n_txns, n_tables, update_pct, max_attrs, seed)| {
            (
                RandomParams {
                    name: format!("inc-prop-{n_txns}-{n_tables}-{seed}"),
                    n_txns,
                    n_tables,
                    max_queries_per_txn: 2,
                    update_pct,
                    max_attrs_per_table: max_attrs,
                    max_table_refs: 2,
                    max_attr_refs: 4,
                    widths: vec![2.0, 8.0],
                },
                seed,
            )
        },
    )
}

/// Applies one random mutation; every branch keeps the layout feasible.
fn random_op(inc: &mut IncrementalCost, rng: &mut StdRng, n_sites: usize) {
    let part = inc.partitioning();
    let n_txns = part.n_txns();
    let n_attrs = part.n_attrs();
    match rng.gen_range(0..3u32) {
        0 => {
            let t = TxnId::from_index(rng.gen_range(0..n_txns));
            let s = SiteId::from_index(rng.gen_range(0..n_sites));
            inc.apply_txn_move(t, s);
        }
        1 => {
            let a = AttrId::from_index(rng.gen_range(0..n_attrs));
            let s = SiteId::from_index(rng.gen_range(0..n_sites));
            inc.apply_attr_replica(a, s);
        }
        _ => {
            let a = AttrId::from_index(rng.gen_range(0..n_attrs));
            let s = SiteId::from_index(rng.gen_range(0..n_sites));
            // Refused when forced or last — either way stays feasible.
            inc.apply_attr_drop(a, s);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_op_sequences_agree_with_fresh_recompute((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let n_sites = 3usize;
        for wa in [WriteAccounting::AllAttributes, WriteAccounting::NoAttributes] {
            for lambda in [1.0f64, 0.5] {
                let cfg = CostConfig::default()
                    .with_write_accounting(wa)
                    .with_lambda(lambda);
                let coeffs = CostCoefficients::compute(&instance, &cfg);
                let part = Partitioning::single_site(&instance, n_sites).unwrap();
                let mut inc = IncrementalCost::new(&instance, &coeffs, &cfg, part);
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD1F7);
                for step in 0..100usize {
                    let mark = inc.mark();
                    for _ in 0..rng.gen_range(1..4usize) {
                        random_op(&mut inc, &mut rng, n_sites);
                    }
                    if rng.gen_bool(0.4) {
                        inc.revert(mark);
                    } else {
                        inc.commit();
                    }
                    if step % 10 == 0 {
                        let full = fast_objective6(&instance, &coeffs, inc.partitioning(), &cfg);
                        prop_assert!(
                            (inc.objective6() - full).abs() <= TOL * (1.0 + full.abs()),
                            "{wa:?} λ={lambda} step {step}: incremental {} vs full {full}",
                            inc.objective6()
                        );
                        inc.partitioning().validate(&instance, false).unwrap();
                    }
                }
                // Final parity, then the drift guard must be a no-op.
                let full = fast_objective6(&instance, &coeffs, inc.partitioning(), &cfg);
                prop_assert!(
                    (inc.objective6() - full).abs() <= TOL * (1.0 + full.abs()),
                    "{wa:?} λ={lambda} final: incremental {} vs full {full}",
                    inc.objective6()
                );
                let drift = inc.resync();
                prop_assert!(
                    drift <= TOL * (1.0 + full.abs()),
                    "{wa:?} λ={lambda}: resync moved the objective by {drift}"
                );
                inc.partitioning().validate(&instance, false).unwrap();
            }
        }
    }

    #[test]
    fn revert_to_mark_restores_the_exact_layout((params, seed) in small_params()) {
        let instance = params.generate(seed);
        let n_sites = 2usize;
        let cfg = CostConfig::default();
        let coeffs = CostCoefficients::compute(&instance, &cfg);
        let part = Partitioning::single_site(&instance, n_sites).unwrap();
        let mut inc = IncrementalCost::new(&instance, &coeffs, &cfg, part);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        // Commit a random prefix so the mark is mid-history.
        for _ in 0..10 {
            random_op(&mut inc, &mut rng, n_sites);
        }
        inc.commit();
        let snapshot = inc.partitioning().clone();
        let mark = inc.mark();
        for _ in 0..25 {
            random_op(&mut inc, &mut rng, n_sites);
        }
        inc.revert(mark);
        prop_assert_eq!(inc.partitioning(), &snapshot);
    }
}
