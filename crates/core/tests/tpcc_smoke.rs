//! End-to-end smoke tests of both solvers on the TPC-C instance — the
//! paper's headline experiment (≈37% cost reduction at 2–3 sites).

use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{evaluate, CostConfig};
use vpart_instances::tpcc;
use vpart_model::Partitioning;

#[test]
fn sa_reduces_tpcc_cost_substantially() {
    let ins = tpcc();
    let cost = CostConfig::default();
    let single = Partitioning::single_site(&ins, 1).unwrap();
    let base = evaluate(&ins, &single, &cost).objective4;

    let sa = SaSolver::new(SaConfig::fast_deterministic(11));
    let r = sa.solve(&ins, 2, &cost).unwrap();
    r.partitioning.validate(&ins, false).unwrap();
    let reduction = 1.0 - r.breakdown.objective4 / base;
    assert!(
        reduction > 0.25,
        "expected ≳25% reduction at 2 sites (paper: 36%), got {:.1}% \
         ({} → {})",
        reduction * 100.0,
        base,
        r.breakdown.objective4
    );
}

#[test]
fn qp_solves_tpcc_two_sites() {
    let ins = tpcc();
    let cost = CostConfig::default();
    let single = Partitioning::single_site(&ins, 1).unwrap();
    let base = evaluate(&ins, &single, &cost).objective4;

    let qp = QpSolver::new(QpConfig::with_time_limit(120.0));
    let r = qp.solve(&ins, 2, &cost).unwrap();
    r.partitioning.validate(&ins, false).unwrap();
    let reduction = 1.0 - r.breakdown.objective4 / base;
    eprintln!(
        "tpcc |S|=2: {} -> {} ({:.1}% reduction), {:?}, {}",
        base,
        r.breakdown.objective4,
        reduction * 100.0,
        r.elapsed,
        r.detail
    );
    // The paper reports 36% with the author's (unpublished) statistics;
    // our spec-derived statistics land at ~28% — same shape, different
    // absolute base (see EXPERIMENTS.md).
    assert!(
        reduction > 0.25,
        "expected ≳25% reduction (paper: 36%), got {:.1}%",
        reduction * 100.0
    );
    assert!(
        r.is_optimal(),
        "TPC-C at 2 sites must be solved to optimality"
    );
    // The QP must be at least as good as SA for the same objective.
    let sa = SaSolver::new(SaConfig::fast_deterministic(11))
        .solve(&ins, 2, &cost)
        .unwrap();
    assert!(r.breakdown.objective6 <= sa.breakdown.objective6 + 1e-6 * base);
}
