//! Diagnostic: the root LP relaxation of the TPC-C model must lower-bound
//! any feasible integer point (e.g. the |S|=3 optimum embedded in 4 sites).

// Index loops mirror the (variable, column) subscripts of the LP forms.
#![allow(clippy::needless_range_loop)]

use vpart_core::qp::builder::{build_qp_model, QpOptions};
use vpart_core::reduce::Reduction;
use vpart_core::{CostCoefficients, CostConfig};
use vpart_ilp::presolve::{presolve, Presolved};
use vpart_ilp::simplex::{solve_lp, LpForm, LpOutcome};
use vpart_instances::tpcc;

#[test]
fn root_lp_bounds_feasible_points() {
    let ins = tpcc();
    let cost = CostConfig::default().with_lambda(1.0);
    let red = Reduction::compute(&ins).unwrap();
    let work = &red.reduced;
    let coeffs = CostCoefficients::compute(work, &cost);
    for n_sites in [2usize, 3, 4] {
        let art = build_qp_model(work, &coeffs, n_sites, &cost, &QpOptions::default());
        art.model.validate().unwrap();
        // Feasible reference point: the single-site layout.
        let single = vpart_model::Partitioning::single_site(work, n_sites).unwrap();
        let vals = art.assignment_from(&coeffs, &single);
        assert!(art.model.is_feasible(&vals, 1e-6));
        let single_obj = art.model.objective_value(&vals);

        let overrides = vec![None; art.model.n_vars()];
        let r = presolve(&art.model, &overrides);
        let Presolved::Reduced(lp) = r else {
            panic!("infeasible presolve")
        };
        let form = LpForm {
            n: lp.keep.len(),
            cols: lp.columns(),
            cmps: lp.cmps.clone(),
            rhs: lp.rhs.clone(),
            lower: lp.lower.clone(),
            upper: lp.upper.clone(),
            obj: lp.obj.clone(),
        };
        match solve_lp(&form).unwrap() {
            LpOutcome::Optimal {
                obj, iterations, ..
            } => {
                let total = obj + lp.obj_offset;
                eprintln!(
                    "|S|={n_sites}: root LP {total:.1} (single-site point {single_obj:.1}, \
                     {iterations} iters, {} rows x {} cols)",
                    form.rhs.len(),
                    form.n
                );
                assert!(
                    total <= single_obj + 1e-6 * single_obj.abs(),
                    "|S|={n_sites}: LP 'optimum' {total} exceeds feasible point {single_obj}"
                );
            }
            other => panic!("|S|={n_sites}: unexpected {other:?}"),
        }
    }
}

#[test]
fn inspect_root_lp_solution_four_sites() {
    let ins = tpcc();
    let cost = CostConfig::default().with_lambda(1.0);
    let red = Reduction::compute(&ins).unwrap();
    let work = &red.reduced;
    let coeffs = CostCoefficients::compute(work, &cost);
    let art = build_qp_model(work, &coeffs, 4, &cost, &QpOptions::default());
    let overrides = vec![None; art.model.n_vars()];
    let Presolved::Reduced(lp) = presolve(&art.model, &overrides) else {
        panic!()
    };
    let form = LpForm {
        n: lp.keep.len(),
        cols: lp.columns(),
        cmps: lp.cmps.clone(),
        rhs: lp.rhs.clone(),
        lower: lp.lower.clone(),
        upper: lp.upper.clone(),
        obj: lp.obj.clone(),
    };
    let LpOutcome::Optimal { x, obj, .. } = solve_lp(&form).unwrap() else {
        panic!()
    };
    eprintln!(
        "LP obj {obj} + offset {} = {}",
        lp.obj_offset,
        obj + lp.obj_offset
    );
    let full = lp.expand(&x);
    // Fractionality report.
    let mut worst = (0usize, 0.0f64);
    let mut n_frac = 0;
    for (j, v) in (0..art.model.n_vars()).map(|j| (j, full[j])) {
        let frac = (v - v.round()).abs();
        if frac > 1e-6 {
            n_frac += 1;
            if frac > worst.1 {
                worst = (j, frac);
            }
        }
    }
    eprintln!(
        "fractional entries: {n_frac}, worst var {} frac {}",
        art.model.var_name(vpart_ilp::VarRef(worst.0)),
        worst.1
    );
    // Round integers (x/y binaries) and find violations.
    let mut cand = full.clone();
    for j in 0..art.model.n_vars() {
        cand[j] = if (cand[j] - cand[j].round()).abs() < 1e-6 {
            cand[j].round()
        } else {
            cand[j]
        };
    }
    eprintln!(
        "is_feasible(rounded, 1e-5) = {}",
        art.model.is_feasible(&cand, 1e-5)
    );
    // Print LP residual feasibility in reduced space.
    let mut max_viol: f64 = 0.0;
    for (r, row) in lp.rows.iter().enumerate() {
        let lhs: f64 = row.iter().map(|&(j, c)| c * x[j]).sum();
        let v: f64 = match lp.cmps[r] {
            vpart_ilp::Cmp::Le => lhs - lp.rhs[r],
            vpart_ilp::Cmp::Ge => lp.rhs[r] - lhs,
            vpart_ilp::Cmp::Eq => (lhs - lp.rhs[r]).abs(),
        };
        max_viol = max_viol.max(v);
    }
    eprintln!("max LP row violation: {max_viol:.3e}");
    let mut max_bound_viol: f64 = 0.0;
    for j in 0..form.n {
        max_bound_viol = max_bound_viol
            .max(form.lower[j] - x[j])
            .max(x[j] - form.upper[j]);
    }
    eprintln!("max LP bound violation: {max_bound_viol:.3e}");
}

#[test]
fn branch_and_bound_accepts_root_descendants() {
    let ins = tpcc();
    let cost = CostConfig::default().with_lambda(1.0);
    let red = Reduction::compute(&ins).unwrap();
    let work = &red.reduced;
    let coeffs = CostCoefficients::compute(work, &cost);
    let art = build_qp_model(work, &coeffs, 4, &cost, &QpOptions::default());
    let single = vpart_model::Partitioning::single_site(work, 4).unwrap();
    let vals = art.assignment_from(&coeffs, &single);
    let params = vpart_ilp::SolveParams {
        time_limit: std::time::Duration::from_secs(120),
        initial_solution: Some(vals),
        ..Default::default()
    };
    let sol = art.model.solve(&params).unwrap();
    eprintln!(
        "|S|=4 solve: status {:?} obj {} bound {} gap {} nodes {} exact {}",
        sol.status, sol.objective, sol.best_bound, sol.gap, sol.stats.nodes, sol.stats.exact
    );
    assert!(
        sol.objective < 40000.0,
        "must beat the single-site warm start (got {})",
        sol.objective
    );
}
