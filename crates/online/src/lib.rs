//! Online adaptive repartitioning: keep the partitioning good, not just
//! find it once.
//!
//! The paper computes a one-shot partitioning from a frozen workload, but
//! its own premise — an H-store-like system serving high-volume OLTP —
//! implies the workload *drifts*. This crate closes the loop over the
//! whole stack:
//!
//! * [`tracker`] — [`OnlineWorkload`], a streaming per-template
//!   accumulator under exponential decay or sliding windows that
//!   materializes fresh [`vpart_model::Instance`] snapshots on demand.
//!   Feed it ingested instances (any `vpart_ingest` frontend), raw
//!   execution streams (`vpart_engine::Trace`), or direct counts.
//! * [`drift`] — [`assess_drift`], which re-scores the incumbent
//!   [`vpart_model::Partitioning`] against the current snapshot and
//!   triggers a re-solve when its objective-(6) regression over a cheap
//!   fresh bound exceeds a relative threshold.
//! * warm re-solve — `SaConfig::warm_started` in `vpart_core` anneals
//!   from the incumbent, so drift repair costs a fraction of a cold
//!   multi-start solve ([`WatchConfig::warm_sa`]).
//! * [`migrate`] — [`plan_migration`], which relabels the new layout by a
//!   Hungarian min-cost assignment on fragment-byte overlap (renumbered
//!   -but-identical sites move zero bytes) and diffs it into a
//!   [`vpart_model::MigrationPlan`];
//!   `vpart_engine::Deployment::apply_migration` executes the plan and
//!   meters exactly the estimated bytes.
//! * [`watch`] — [`Watcher`], the epoch loop gluing the above together
//!   (the `vpart watch` CLI command drives it).
//!
//! ```
//! use vpart_online::{OnlineWorkload, TrackerConfig, Watcher, WatchConfig};
//! use vpart_model::{Schema, Workload, Instance, AttrId, workload::QuerySpec};
//!
//! let mut sb = Schema::builder();
//! sb.table("T", &[("k", 4.0), ("v", 100.0)]).unwrap();
//! let schema = sb.build().unwrap();
//! let mut wb = Workload::builder(&schema);
//! let q = wb.add_query(QuerySpec::read("q").access(&[AttrId(0)])).unwrap();
//! wb.transaction("txn", &[q]).unwrap();
//! let observed = Instance::new("chunk", schema.clone(), wb.build().unwrap()).unwrap();
//!
//! let tracker = OnlineWorkload::new("live", schema, TrackerConfig::default()).unwrap();
//! let mut watcher = Watcher::new(tracker, WatchConfig::default()).unwrap();
//! watcher.tracker_mut().observe_instance(&observed).unwrap();
//! let epoch = watcher.end_epoch("first").unwrap();
//! assert!(epoch.resolve.unwrap().cold, "first epoch bootstraps");
//! ```

// `!(x > 0.0)` comparisons are deliberate NaN-rejecting validations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod drift;
pub mod migrate;
pub mod tracker;
pub mod watch;

pub use drift::{adapt_incumbent, assess_drift, DriftAssessment, DriftConfig};
pub use migrate::{canonicalize_against, plan_migration};
pub use tracker::{DecayMode, OnlineWorkload, TrackerConfig};
pub use watch::{EpochOutcome, MigrationOutcome, ResolveOutcome, WatchConfig, Watcher};

use std::fmt;

/// Errors raised by the online repartitioning subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum OnlineError {
    /// Invalid configuration value.
    BadConfig(String),
    /// An observation referenced a template index that was never
    /// registered.
    UnknownTemplate {
        /// The out-of-range index.
        template: usize,
    },
    /// An observed instance's schema differs from the tracker's.
    SchemaMismatch,
    /// The tracker has no registered templates yet — nothing to snapshot.
    NoTraffic,
    /// The incumbent partitioning cannot map onto the snapshot (more
    /// transactions than the snapshot, or a different attribute count).
    IncumbentShape {
        /// Incumbent transaction count.
        txns: usize,
        /// Snapshot transaction count.
        snapshot_txns: usize,
        /// Incumbent attribute count.
        attrs: usize,
        /// Snapshot attribute count.
        snapshot_attrs: usize,
    },
    /// Old and new partitionings disagree on the site count.
    SiteCountMismatch {
        /// Old site count.
        old: usize,
        /// New site count.
        new: usize,
    },
    /// A model-layer error (validation, construction).
    Model(vpart_model::ModelError),
    /// A solver error from `vpart_core`.
    Core(String),
    /// An engine error while applying a migration.
    Engine(String),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadConfig(msg) => write!(f, "invalid online config: {msg}"),
            Self::UnknownTemplate { template } => {
                write!(f, "unknown workload template index {template}")
            }
            Self::SchemaMismatch => {
                write!(
                    f,
                    "observed instance has a different schema than the tracker"
                )
            }
            Self::NoTraffic => write!(f, "no workload observed yet"),
            Self::IncumbentShape {
                txns,
                snapshot_txns,
                attrs,
                snapshot_attrs,
            } => {
                if attrs != snapshot_attrs {
                    write!(
                        f,
                        "incumbent covers {attrs} attributes but the snapshot has \
                         {snapshot_attrs} (different schema?)"
                    )
                } else {
                    write!(
                        f,
                        "incumbent covers {txns} transactions but the snapshot has \
                         {snapshot_txns}"
                    )
                }
            }
            Self::SiteCountMismatch { old, new } => {
                write!(f, "site counts differ: old {old}, new {new}")
            }
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Core(msg) => write!(f, "solver error: {msg}"),
            Self::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<vpart_model::ModelError> for OnlineError {
    fn from(e: vpart_model::ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<vpart_core::CoreError> for OnlineError {
    fn from(e: vpart_core::CoreError) -> Self {
        Self::Core(e.to_string())
    }
}

impl From<vpart_engine::EngineError> for OnlineError {
    fn from(e: vpart_engine::EngineError) -> Self {
        Self::Engine(e.to_string())
    }
}
