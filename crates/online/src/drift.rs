//! Drift detection: is the incumbent partitioning still good enough?
//!
//! Re-solving from scratch on every snapshot would burn the multi-start
//! budget on workloads that did not move. [`assess_drift`] instead
//! re-scores the incumbent against the current snapshot — one accumulator
//! rebuild, the same full recompute `IncrementalCost::resync` runs at the
//! annealer's checkpoints — and compares it with a *fresh bound*: the best
//! of a few deterministic alternating `findSolution` passes (refining the
//! incumbent's transaction assignment and a handful of seeded random
//! ones). The **drift score** is the incumbent's relative regression over
//! that bound,
//!
//! ```text
//! score = (cost(incumbent | snapshot) − bound) / bound
//! ```
//!
//! and a re-solve triggers when the score exceeds
//! [`DriftConfig::threshold`]. The bound is itself a feasible layout, so a
//! triggered re-solve can warm-start from whichever of incumbent/bound is
//! better.

use crate::OnlineError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpart_core::cost::coeffs::CostCoefficients;
use vpart_core::sa::subproblem::{optimal_x_for_y, optimal_y_for_x};
use vpart_core::{CostConfig, IncrementalCost};
use vpart_model::{Instance, Partitioning, SiteId};

/// Drift detector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative regression of the incumbent over the fresh bound that
    /// triggers a re-solve (e.g. `0.05` = 5%).
    pub threshold: f64,
    /// Number of seeded random starting points probed for the fresh bound
    /// (on top of the incumbent refinement). More probes tighten the
    /// bound at proportional cost.
    pub bound_probes: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            threshold: 0.05,
            bound_probes: 2,
        }
    }
}

impl DriftConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        if !(self.threshold >= 0.0) || !self.threshold.is_finite() {
            return Err(OnlineError::BadConfig(format!(
                "drift threshold must be finite and non-negative, got {}",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// Outcome of one drift assessment.
#[derive(Debug, Clone)]
pub struct DriftAssessment {
    /// Objective (6) of the (adapted) incumbent on the snapshot.
    pub incumbent_cost: f64,
    /// The fresh bound: best objective (6) among the probe layouts (never
    /// above `incumbent_cost`).
    pub bound: f64,
    /// `(incumbent_cost − bound) / bound`, clamped at 0.
    pub score: f64,
    /// `score > threshold`.
    pub triggered: bool,
    /// The incumbent mapped onto the snapshot (see [`adapt_incumbent`]) —
    /// the layout `incumbent_cost` was measured on, and the migration
    /// source when the re-solve triggers.
    pub adapted: Partitioning,
    /// The layout achieving `bound` (the adapted incumbent itself when
    /// nothing beat it) — a ready-made warm start for the re-solve.
    pub bound_partitioning: Partitioning,
}

/// Maps an incumbent onto a (possibly grown) snapshot: templates that
/// appeared after the incumbent was solved are placed on site 0 and the
/// single-sitedness closure is repaired. An incumbent whose transaction
/// count exceeds the snapshot's is rejected — tracker template indices
/// are append-only, so that means the snapshot is not from the same
/// tracker lineage.
pub fn adapt_incumbent(
    snapshot: &Instance,
    incumbent: &Partitioning,
) -> Result<Partitioning, OnlineError> {
    if incumbent.n_txns() > snapshot.n_txns() || incumbent.n_attrs() != snapshot.n_attrs() {
        return Err(OnlineError::IncumbentShape {
            txns: incumbent.n_txns(),
            snapshot_txns: snapshot.n_txns(),
            attrs: incumbent.n_attrs(),
            snapshot_attrs: snapshot.n_attrs(),
        });
    }
    let mut x = incumbent.x().to_vec();
    x.resize(snapshot.n_txns(), SiteId(0));
    let mut adapted = Partitioning::from_parts(incumbent.n_sites(), x, incumbent.y().clone())?;
    adapted.repair_single_sitedness(snapshot);
    adapted.validate(snapshot, false)?;
    Ok(adapted)
}

/// Deterministic fresh bound: alternating subproblem passes from the
/// incumbent's `x` and from `probes` seeded random assignments.
fn fresh_bound(
    snapshot: &Instance,
    coeffs: &CostCoefficients,
    incumbent: &Partitioning,
    cost: &CostConfig,
    probes: u64,
) -> (Partitioning, f64) {
    let n_sites = incumbent.n_sites();
    let score = |p: &Partitioning| vpart_core::fast_objective6(snapshot, coeffs, p, cost);

    let mut best = incumbent.clone();
    let mut best_cost = score(&best);
    let mut consider = |mut p: Partitioning| {
        for _ in 0..2 {
            p = optimal_x_for_y(snapshot, coeffs, &p, cost);
            p = optimal_y_for_x(snapshot, coeffs, p.x(), n_sites, cost);
        }
        let c = score(&p);
        if c < best_cost {
            best = p;
            best_cost = c;
        }
    };

    consider(optimal_y_for_x(
        snapshot,
        coeffs,
        incumbent.x(),
        n_sites,
        cost,
    ));
    for seed in 0..probes {
        let mut rng = StdRng::seed_from_u64(0xD41F7 ^ seed);
        let x: Vec<SiteId> = (0..snapshot.n_txns())
            .map(|_| SiteId::from_index(rng.gen_range(0..n_sites)))
            .collect();
        consider(optimal_y_for_x(snapshot, coeffs, &x, n_sites, cost));
    }
    (best, best_cost)
}

/// Re-scores `incumbent` against `snapshot` and decides whether the drift
/// warrants a re-solve. The incumbent is adapted first (see
/// [`adapt_incumbent`]); its cost comes from a full
/// [`IncrementalCost`] accumulator rebuild on the snapshot.
pub fn assess_drift(
    snapshot: &Instance,
    incumbent: &Partitioning,
    cost: &CostConfig,
    config: &DriftConfig,
) -> Result<DriftAssessment, OnlineError> {
    config.validate()?;
    let adapted = adapt_incumbent(snapshot, incumbent)?;
    let coeffs = CostCoefficients::compute(snapshot, cost);
    let incumbent_cost =
        IncrementalCost::new(snapshot, &coeffs, cost, adapted.clone()).objective6();
    let (bound_partitioning, raw_bound) =
        fresh_bound(snapshot, &coeffs, &adapted, cost, config.bound_probes);
    let bound = raw_bound.min(incumbent_cost);
    let score = ((incumbent_cost - bound) / bound.max(f64::MIN_POSITIVE)).max(0.0);
    Ok(DriftAssessment {
        incumbent_cost,
        bound,
        score,
        triggered: score > config.threshold,
        adapted,
        bound_partitioning,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, Workload};

    /// Pinned reader/writer pairs on R and S, two mobile readers of the
    /// shared hot attribute `h`, and a writer of `h` at `write_freq`:
    /// cheap to replicate `h` when writes are rare, worth centralizing
    /// its readers when writes dominate.
    fn instance(write_freq: f64) -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 50.0)]).unwrap();
        sb.table("S", &[("s1", 50.0)]).unwrap();
        sb.table("H", &[("h", 100.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let r_read = wb
            .add_query(
                QuerySpec::read("r_read")
                    .access(&[AttrId(0)])
                    .frequency(10.0),
            )
            .unwrap();
        let r_write = wb
            .add_query(
                QuerySpec::write("r_write")
                    .access(&[AttrId(0)])
                    .frequency(10.0),
            )
            .unwrap();
        let s_read = wb
            .add_query(
                QuerySpec::read("s_read")
                    .access(&[AttrId(1)])
                    .frequency(10.0),
            )
            .unwrap();
        let s_write = wb
            .add_query(
                QuerySpec::write("s_write")
                    .access(&[AttrId(1)])
                    .frequency(10.0),
            )
            .unwrap();
        let h_read_a = wb
            .add_query(
                QuerySpec::read("h_read_a")
                    .access(&[AttrId(2)])
                    .frequency(40.0),
            )
            .unwrap();
        let h_read_b = wb
            .add_query(
                QuerySpec::read("h_read_b")
                    .access(&[AttrId(2)])
                    .frequency(40.0),
            )
            .unwrap();
        let h_write = wb
            .add_query(
                QuerySpec::write("h_write")
                    .access(&[AttrId(2)])
                    .frequency(write_freq),
            )
            .unwrap();
        wb.transaction("T0", &[r_read, r_write]).unwrap();
        wb.transaction("T1", &[s_read, s_write]).unwrap();
        wb.transaction("T2", &[h_read_a]).unwrap();
        wb.transaction("T3", &[h_read_b]).unwrap();
        wb.transaction("TW", &[h_write]).unwrap();
        Instance::new("drift", schema, wb.build().unwrap()).unwrap()
    }

    fn solve(ins: &Instance, cost: &CostConfig) -> Partitioning {
        vpart_core::sa::SaSolver::new(vpart_core::sa::SaConfig::fast_deterministic(3))
            .solve(ins, 2, cost)
            .unwrap()
            .partitioning
    }

    #[test]
    fn stationary_snapshot_scores_zero() {
        let cost = CostConfig::default().with_lambda(0.5);
        let ins = instance(1.0);
        let incumbent = solve(&ins, &cost);
        let a = assess_drift(&ins, &incumbent, &cost, &DriftConfig::default()).unwrap();
        assert!(
            a.score <= 1e-9,
            "optimal incumbent has no drift: {}",
            a.score
        );
        assert!(!a.triggered);
        assert!(a.bound <= a.incumbent_cost);
    }

    #[test]
    fn write_flip_triggers_a_resolve() {
        // Phase 1: `h` writes are rare, so the incumbent replicates `h`
        // and spreads its readers for load balance. Phase 2: `h` writes
        // dominate, so every extra replica costs a full write stream —
        // centralizing the readers wins, the incumbent regresses, and the
        // drift detector must notice.
        let cost = CostConfig::default().with_lambda(0.5);
        let incumbent = solve(&instance(1.0), &cost);
        let after = instance(150.0);
        let a = assess_drift(&after, &incumbent, &cost, &DriftConfig::default()).unwrap();
        assert!(a.bound < a.incumbent_cost, "a re-fit must help");
        assert!(a.triggered, "score {} should exceed 5%", a.score);
        // The reported bound layout really achieves the bound.
        let coeffs = CostCoefficients::compute(&after, &cost);
        let c = vpart_core::fast_objective6(&after, &coeffs, &a.bound_partitioning, &cost);
        assert!((c - a.bound).abs() <= 1e-9 * (1.0 + a.bound));
    }

    /// The drift schema with only the first `txns` transaction templates.
    fn truncated(write_freq: f64, txns: usize) -> Instance {
        let full = instance(write_freq);
        let schema = full.schema().clone();
        let mut wb = Workload::builder(&schema);
        for t in 0..txns {
            let txn = full.workload().txn(vpart_model::TxnId::from_index(t));
            let mut qids = Vec::new();
            for &q in &txn.queries {
                let src = full.workload().query(q);
                let mut spec = if src.kind.is_write() {
                    QuerySpec::write(&src.name)
                } else {
                    QuerySpec::read(&src.name)
                };
                spec = spec.access(&src.attrs).frequency(src.frequency);
                qids.push(wb.add_query(spec).unwrap());
            }
            wb.transaction(&txn.name, &qids).unwrap();
        }
        Instance::new("truncated", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn incumbent_with_more_txns_than_snapshot_is_rejected() {
        let big = instance(1.0);
        let solved = solve(&big, &CostConfig::default());
        let small = truncated(1.0, 2);
        assert!(matches!(
            adapt_incumbent(&small, &solved),
            Err(OnlineError::IncumbentShape { .. })
        ));
    }

    #[test]
    fn grown_snapshot_extends_the_incumbent() {
        // Solve on the first three templates, then assess against the
        // full five-template snapshot: the two new transactions land on
        // site 0 with their read sets repaired.
        let cost = CostConfig::default().with_lambda(0.5);
        let small = truncated(1.0, 3);
        let solved = solve(&small, &cost);
        let grown = instance(1.0);
        let adapted = adapt_incumbent(&grown, &solved).unwrap();
        assert_eq!(adapted.n_txns(), 5);
        adapted.validate(&grown, false).unwrap();
        assert_eq!(adapted.site_of(vpart_model::TxnId(3)), SiteId(0));
        assert_eq!(adapted.site_of(vpart_model::TxnId(4)), SiteId(0));
        // Assessment runs end to end on the grown snapshot.
        assess_drift(&grown, &solved, &cost, &DriftConfig::default()).unwrap();
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let ins = instance(1.0);
        let p = Partitioning::single_site(&ins, 2).unwrap();
        let cfg = DriftConfig {
            threshold: f64::NAN,
            bound_probes: 1,
        };
        assert!(assess_drift(&ins, &p, &CostConfig::default(), &cfg).is_err());
    }
}
