//! The adaptive control loop: observe → detect → re-solve → migrate.
//!
//! [`Watcher`] glues the subsystem together, one epoch at a time:
//!
//! ```text
//!             feed observations (ingest chunks / traces / counts)
//!                                   │
//!  ┌────────────────────────────────▼─────────────────────────────────┐
//!  │ tracker: OnlineWorkload (decay / window)                         │
//!  └────────────────────────────────┬─────────────────────────────────┘
//!                           snapshot() Instance
//!                                   │
//!             drift::assess_drift(incumbent | snapshot)
//!                │ score ≤ threshold          │ score > threshold
//!                ▼                            ▼
//!           keep incumbent        warm re-solve (SA from incumbent)
//!                                             │
//!                          migrate::plan_migration(old → new)
//!                                             │
//!                          Deployment::apply_migration (bytes metered)
//! ```
//!
//! The first epoch with traffic bootstraps the incumbent with a cold
//! multi-start solve; every later epoch pays only the drift assessment
//! unless the score crosses the threshold. All steps are deterministic
//! for a fixed configuration and observation sequence.

use crate::drift::{assess_drift, DriftConfig};
use crate::migrate::plan_migration;
use crate::tracker::OnlineWorkload;
use crate::OnlineError;
use std::time::{Duration, Instant};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::CostConfig;
use vpart_engine::{Deployment, FaultInjector, MigrationJournal, FP_WATCH_RESOLVE};
use vpart_model::{MigrationPlan, Partitioning};
use vpart_obs::{HealthMonitor, Obs};

/// Watch-loop configuration.
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Number of sites to partition over.
    pub sites: usize,
    /// Cost model configuration.
    pub cost: CostConfig,
    /// Drift detector settings.
    pub drift: DriftConfig,
    /// Base RNG seed for the solves.
    pub seed: u64,
    /// Rows materialized per fragment when applying migrations (the
    /// `Deployment` parameter; plan estimates use the same value).
    pub rows_per_fragment: usize,
    /// Restarts of the cold bootstrap solve (epoch 0).
    pub cold_restarts: usize,
    /// OS threads for the bootstrap solve.
    pub threads: usize,
    /// Hysteresis band: the drift detector must trigger this many
    /// *consecutive* epochs before a re-solve runs (1 = react instantly).
    /// Damps oscillating workloads that hover around the threshold.
    pub hysteresis: usize,
    /// Drift-aware amortization gate: when positive, a triggered re-solve
    /// only migrates if the plan's byte cost is amortized by the
    /// objective-(6) savings within this many epochs
    /// (`plan bytes ≤ amortize_epochs × (incumbent − new cost)`).
    /// Zero disables the gate.
    pub amortize_epochs: usize,
    /// Consecutive failed migration attempts tolerated before the watcher
    /// enters degraded mode (serving the incumbent, no more attempts
    /// until drift recedes). Failed attempts back off exponentially
    /// (1, 2, 4, … epochs, capped at 16) before retrying.
    pub max_retries: usize,
    /// Byte budget per migration batch; migrations run through a
    /// journaled [`Deployment::migrate_batched`]. Non-finite (the
    /// default) ⇒ one batch.
    pub migration_batch_bytes: f64,
    /// Fault injection for the watch loop (the [`FP_WATCH_RESOLVE`]
    /// point, plus the engine's migration points). Moved into the
    /// watcher at construction so trigger state persists across epochs.
    pub faults: FaultInjector,
    /// Observability sink. Off by default ([`Obs::disabled`]); when
    /// enabled every epoch records a `watch_epoch` span (drift score,
    /// threshold margin, migration bytes, snapshot size), the nested
    /// solver and engine spans, the `watch_*` counter/gauge family and
    /// the `epoch_wall_seconds` / `warm_resolve_wall_seconds` histograms.
    pub obs: Obs,
}

impl Default for WatchConfig {
    fn default() -> Self {
        Self {
            sites: 2,
            cost: CostConfig::default(),
            drift: DriftConfig::default(),
            seed: 0xC0FFEE,
            rows_per_fragment: 64,
            cold_restarts: 4,
            threads: 4,
            hysteresis: 1,
            amortize_epochs: 0,
            max_retries: 3,
            migration_batch_bytes: f64::INFINITY,
            faults: FaultInjector::disabled(),
            obs: Obs::disabled(),
        }
    }
}

impl WatchConfig {
    /// The warm re-solve configuration: a single fast chain annealed from
    /// `incumbent`. Inherits this config's observability sink.
    pub fn warm_sa(&self, incumbent: Partitioning) -> SaConfig {
        let mut sa = SaConfig::fast_deterministic(self.seed).warm_started(incumbent);
        sa.obs = self.obs.clone();
        sa
    }

    /// The cold bootstrap configuration: classic multi-start. Inherits
    /// this config's observability sink.
    pub fn cold_sa(&self) -> SaConfig {
        let mut sa =
            SaConfig::fast_deterministic(self.seed).multi_start(self.cold_restarts, self.threads);
        sa.obs = self.obs.clone();
        sa
    }
}

/// The drift-aware amortization decision: a plan is vetoed when its byte
/// cost exceeds what `amortize_epochs` epochs of projected objective-(6)
/// savings would pay back. Zero epochs disables the gate; negative
/// savings pay for nothing, so any byte-moving plan is vetoed then.
fn amortization_vetoes(amortize_epochs: usize, plan_bytes: f64, savings_per_epoch: f64) -> bool {
    amortize_epochs > 0 && plan_bytes > amortize_epochs as f64 * savings_per_epoch.max(0.0)
}

/// Re-solve statistics of one epoch.
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Objective (6) of the new layout on the epoch snapshot.
    pub objective6: f64,
    /// Annealing chains run (1 for a warm re-solve).
    pub restarts: usize,
    /// True for the epoch-0 cold bootstrap, false for warm re-solves.
    pub cold: bool,
}

/// Migration statistics of one epoch.
#[derive(Debug, Clone)]
pub struct MigrationOutcome {
    /// The executed plan.
    pub plan: MigrationPlan,
    /// Plan-estimated bytes to ship.
    pub estimated_bytes: f64,
    /// Engine-metered bytes actually shipped by the batched migration.
    pub measured_bytes: f64,
    /// `measured_bytes == estimated_bytes`, exactly (the engine meter
    /// re-derives the same accounting; any difference is a bug).
    pub meter_matches: bool,
    /// Batches the journaled migration committed.
    pub batches: usize,
    /// Peak dual-resident bytes across batch boundaries.
    pub peak_transient_bytes: f64,
}

/// One epoch's full report.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch that was closed (tracker numbering).
    pub epoch: u64,
    /// Caller-supplied label (e.g. the phase file).
    pub label: String,
    /// Snapshot size: transaction templates tracked.
    pub templates: usize,
    /// Objective (6) of the incumbent on this epoch's snapshot.
    pub incumbent_cost: f64,
    /// The drift detector's fresh bound (= incumbent cost at bootstrap).
    pub bound: f64,
    /// Relative drift score.
    pub drift_score: f64,
    /// Whether the detector triggered a re-solve.
    pub triggered: bool,
    /// Solve statistics when one ran (bootstrap or warm).
    pub resolve: Option<ResolveOutcome>,
    /// Migration statistics when a plan was applied.
    pub migration: Option<MigrationOutcome>,
    /// Wall-clock time of the whole epoch (snapshot → drift → re-solve →
    /// migration).
    pub elapsed: Duration,
    /// Snapshot size: distinct attributes in the epoch's snapshot
    /// instance (with [`EpochOutcome::templates`], the tracker state
    /// size).
    pub snapshot_attrs: usize,
    /// Why a triggered epoch did *not* migrate (hysteresis, retry
    /// backoff, amortization gate, degraded mode, or a failed attempt).
    pub veto: Option<String>,
    /// Consecutive failed migration attempts so far.
    pub failures: usize,
    /// Epochs left in the retry backoff window (0 ⇒ not backing off).
    pub backoff_remaining: u64,
    /// True once the watcher gave up migrating (`failures >
    /// max_retries`) and is serving the incumbent until drift recedes.
    pub degraded: bool,
}

/// The adaptive repartitioning controller (see module docs).
#[derive(Debug, Clone)]
pub struct Watcher {
    tracker: OnlineWorkload,
    config: WatchConfig,
    incumbent: Option<Partitioning>,
    faults: FaultInjector,
    /// Consecutive triggered epochs (the hysteresis streak).
    streak: usize,
    /// Consecutive failed migration attempts.
    failures: usize,
    /// Epochs left before the next attempt is allowed.
    backoff: u64,
    degraded: bool,
    retries_total: u64,
    rollbacks_total: u64,
    /// Optional live health layer, ticked once per epoch.
    health: Option<HealthMonitor>,
}

impl Watcher {
    /// A watcher over `tracker` (which may already hold observations).
    pub fn new(tracker: OnlineWorkload, config: WatchConfig) -> Result<Self, OnlineError> {
        if config.sites == 0 {
            return Err(OnlineError::BadConfig("sites must be positive".into()));
        }
        if config.cold_restarts == 0 || config.threads == 0 {
            return Err(OnlineError::BadConfig(
                "cold_restarts and threads must be positive".into(),
            ));
        }
        if config.rows_per_fragment == 0 {
            return Err(OnlineError::BadConfig(
                "rows_per_fragment must be positive".into(),
            ));
        }
        if config.hysteresis == 0 {
            return Err(OnlineError::BadConfig("hysteresis must be positive".into()));
        }
        if config.migration_batch_bytes.is_nan() || config.migration_batch_bytes <= 0.0 {
            return Err(OnlineError::BadConfig(
                "migration_batch_bytes must be positive".into(),
            ));
        }
        config.drift.validate()?;
        let faults = config.faults.clone();
        Ok(Self {
            tracker,
            config,
            incumbent: None,
            faults,
            streak: 0,
            failures: 0,
            backoff: 0,
            degraded: false,
            retries_total: 0,
            rollbacks_total: 0,
            health: None,
        })
    }

    /// Attaches a live health monitor: each epoch, after the epoch's
    /// metrics land, the monitor samples the registry at the epoch index
    /// and evaluates its alert rules. Requires an enabled `config.obs`
    /// to have any effect.
    pub fn with_health(mut self, monitor: HealthMonitor) -> Self {
        self.health = Some(monitor);
        self
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// True while the watcher has given up migrating and serves the
    /// incumbent (exits when drift recedes below the threshold).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Failed migration attempts over the watcher's lifetime.
    pub fn retries_total(&self) -> u64 {
        self.retries_total
    }

    /// Rollbacks executed after failed attempts over the lifetime.
    pub fn rollbacks_total(&self) -> u64 {
        self.rollbacks_total
    }

    /// The workload tracker, for feeding observations.
    pub fn tracker_mut(&mut self) -> &mut OnlineWorkload {
        &mut self.tracker
    }

    /// The workload tracker.
    pub fn tracker(&self) -> &OnlineWorkload {
        &self.tracker
    }

    /// The current incumbent partitioning (none before the first epoch).
    pub fn incumbent(&self) -> Option<&Partitioning> {
        self.incumbent.as_ref()
    }

    /// Closes the open epoch: snapshots the tracked mix, assesses drift,
    /// re-solves and migrates when triggered, and advances the tracker.
    pub fn end_epoch(&mut self, label: &str) -> Result<EpochOutcome, OnlineError> {
        let epoch_start = Instant::now();
        let span = self.config.obs.span_begin(
            "watch_epoch",
            &[
                ("epoch", self.tracker.epoch().into()),
                ("label", label.into()),
            ],
        );
        // Nested solver / engine records parent under this epoch's span.
        let scoped = self.config.obs.under(&span);
        let snapshot = self.tracker.snapshot()?;
        let cfg = &self.config;

        let mut outcome = match &self.incumbent {
            None => {
                // Bootstrap: cold multi-start solve, no migration (there
                // is nothing deployed yet).
                let mut sa = cfg.cold_sa();
                sa.obs = scoped.clone();
                let report = SaSolver::new(sa)
                    .solve(&snapshot, cfg.sites, &cfg.cost)
                    .map_err(OnlineError::from)?;
                let cost6 = report.breakdown.objective6;
                self.incumbent = Some(report.partitioning.clone());
                EpochOutcome {
                    epoch: self.tracker.epoch(),
                    label: label.to_string(),
                    templates: self.tracker.n_templates(),
                    incumbent_cost: cost6,
                    bound: cost6,
                    drift_score: 0.0,
                    triggered: false,
                    resolve: Some(ResolveOutcome {
                        elapsed: report.elapsed,
                        objective6: cost6,
                        restarts: report.restarts.len(),
                        cold: true,
                    }),
                    migration: None,
                    elapsed: Duration::ZERO,
                    snapshot_attrs: snapshot.n_attrs(),
                    veto: None,
                    failures: 0,
                    backoff_remaining: 0,
                    degraded: false,
                }
            }
            Some(incumbent) => {
                // assess_drift adapts the incumbent onto the snapshot
                // itself; reuse its adapted form instead of re-adapting.
                let incumbent = incumbent.clone();
                let assessment = assess_drift(&snapshot, &incumbent, &cfg.cost, &cfg.drift)?;
                let adapted = assessment.adapted.clone();
                let mut resolve = None;
                let mut migration = None;
                let mut veto = None;
                let mut next_incumbent = adapted.clone();
                if !assessment.triggered {
                    // No drift: reset the hysteresis streak; if the
                    // watcher was degraded or backing off, the workload
                    // now fits the incumbent again — recover.
                    self.streak = 0;
                    self.backoff = 0;
                    if self.degraded || self.failures > 0 {
                        self.degraded = false;
                        self.failures = 0;
                    }
                } else {
                    self.streak += 1;
                    if self.degraded {
                        veto =
                            Some("degraded: serving the incumbent until drift recedes".to_string());
                    } else if self.backoff > 0 {
                        self.backoff -= 1;
                        veto = Some(format!(
                            "retry backoff: {} epoch(s) before the next attempt",
                            self.backoff
                        ));
                    } else if self.streak < cfg.hysteresis {
                        veto = Some(format!(
                            "hysteresis: {}/{} consecutive triggered epochs",
                            self.streak, cfg.hysteresis
                        ));
                    } else if let Err(e) = self.faults.fail(FP_WATCH_RESOLVE) {
                        // An injected re-solve crash: a retryable failure.
                        let _ = cfg.obs.dump_flight(FP_WATCH_RESOLVE);
                        self.retries_total += 1;
                        self.failures += 1;
                        cfg.obs.counter_inc("migration_retries_total");
                        if self.failures > cfg.max_retries {
                            self.degraded = true;
                            veto = Some(format!(
                                "migration failed ({e}); degraded after {} attempts",
                                self.failures
                            ));
                        } else {
                            self.backoff = (1u64 << (self.failures - 1)).min(16);
                            veto = Some(format!(
                                "migration failed ({e}); retrying in {} epoch(s)",
                                self.backoff
                            ));
                        }
                    } else {
                        // Warm re-solve from the better of incumbent / bound.
                        let warm_from = if assessment.bound < assessment.incumbent_cost {
                            assessment.bound_partitioning.clone()
                        } else {
                            adapted.clone()
                        };
                        let mut sa = cfg.warm_sa(warm_from);
                        sa.obs = scoped.clone();
                        let report = SaSolver::new(sa)
                            .solve(&snapshot, cfg.sites, &cfg.cost)
                            .map_err(OnlineError::from)?;
                        cfg.obs.observe_wall(
                            "warm_resolve_wall_seconds",
                            report.elapsed.as_secs_f64(),
                        );
                        resolve = Some(ResolveOutcome {
                            elapsed: report.elapsed,
                            objective6: report.breakdown.objective6,
                            restarts: report.restarts.len(),
                            cold: false,
                        });

                        let plan = plan_migration(
                            &snapshot,
                            &adapted,
                            &report.partitioning,
                            cfg.rows_per_fragment,
                        )?;
                        let savings = assessment.incumbent_cost - report.breakdown.objective6;
                        if amortization_vetoes(cfg.amortize_epochs, plan.estimated_bytes(), savings)
                        {
                            // Not worth moving yet: the drift hasn't grown
                            // enough for the plan to pay for itself.
                            veto = Some(format!(
                                "amortization: plan ships {:.0} B but {} epoch(s) save only {:.0} B-equivalents",
                                plan.estimated_bytes(),
                                cfg.amortize_epochs,
                                cfg.amortize_epochs as f64 * savings.max(0.0)
                            ));
                        } else {
                            let batched = plan
                                .batched(&snapshot, cfg.migration_batch_bytes)
                                .map_err(OnlineError::from)?;
                            let mut journal = MigrationJournal::new();
                            let mut deployment =
                                Deployment::new(&snapshot, &adapted, cfg.rows_per_fragment)?
                                    .with_obs(scoped.clone());
                            match deployment.migrate_batched(
                                &batched,
                                &mut journal,
                                &mut self.faults,
                            ) {
                                Ok(applied) => {
                                    let estimated = plan.estimated_bytes();
                                    next_incumbent = plan.to.clone();
                                    self.streak = 0;
                                    self.failures = 0;
                                    migration = Some(MigrationOutcome {
                                        estimated_bytes: estimated,
                                        measured_bytes: applied.bytes_moved,
                                        meter_matches: applied.bytes_moved == estimated,
                                        batches: applied.batches_applied,
                                        peak_transient_bytes: applied.peak_transient_bytes,
                                        plan,
                                    });
                                }
                                Err(e) => {
                                    // Crashed mid-migration. Recover a
                                    // clean deployment at the journal's
                                    // durable boundary and roll back to
                                    // the incumbent; the epoch keeps
                                    // serving the old layout.
                                    let mut recovered =
                                        Deployment::recover(&snapshot, &batched, &journal)?;
                                    recovered.rollback_migration(
                                        &batched,
                                        &mut journal,
                                        &mut FaultInjector::disabled(),
                                    )?;
                                    self.rollbacks_total += 1;
                                    cfg.obs.counter_inc("migration_rollbacks_total");
                                    self.retries_total += 1;
                                    self.failures += 1;
                                    cfg.obs.counter_inc("migration_retries_total");
                                    if self.failures > cfg.max_retries {
                                        self.degraded = true;
                                        veto = Some(format!(
                                            "migration failed ({e}); rolled back; degraded after {} attempts",
                                            self.failures
                                        ));
                                    } else {
                                        self.backoff = (1u64 << (self.failures - 1)).min(16);
                                        veto = Some(format!(
                                            "migration failed ({e}); rolled back; retrying in {} epoch(s)",
                                            self.backoff
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
                self.incumbent = Some(next_incumbent);
                EpochOutcome {
                    epoch: self.tracker.epoch(),
                    label: label.to_string(),
                    templates: self.tracker.n_templates(),
                    incumbent_cost: assessment.incumbent_cost,
                    bound: assessment.bound,
                    drift_score: assessment.score,
                    triggered: assessment.triggered,
                    resolve,
                    migration,
                    elapsed: Duration::ZERO,
                    snapshot_attrs: snapshot.n_attrs(),
                    veto,
                    failures: self.failures,
                    backoff_remaining: self.backoff,
                    degraded: self.degraded,
                }
            }
        };
        outcome.elapsed = epoch_start.elapsed();

        let obs = &self.config.obs;
        let migration_bytes = outcome.migration.as_ref().map_or(0.0, |m| m.measured_bytes);
        if obs.is_enabled() {
            obs.counter_inc("watch_epochs_total");
            if outcome.triggered {
                obs.counter_inc("watch_drift_triggers_total");
            }
            obs.gauge_set("watch_drift_score", outcome.drift_score);
            obs.gauge_set(
                "watch_drift_threshold_margin",
                outcome.drift_score - self.config.drift.threshold,
            );
            obs.gauge_set("watch_tracker_templates", outcome.templates as f64);
            obs.gauge_set("watch_degraded", f64::from(outcome.degraded));
            obs.observe_wall("epoch_wall_seconds", outcome.elapsed.as_secs_f64());
        }
        obs.span_end(
            span,
            &[
                ("epoch", outcome.epoch.into()),
                ("drift_score", outcome.drift_score.into()),
                (
                    "margin",
                    (outcome.drift_score - self.config.drift.threshold).into(),
                ),
                ("triggered", outcome.triggered.into()),
                ("migration_bytes", migration_bytes.into()),
                ("snapshot_attrs", outcome.snapshot_attrs.into()),
                ("templates", outcome.templates.into()),
                ("degraded", outcome.degraded.into()),
            ],
        );

        if let Some(health) = &mut self.health {
            if self.config.obs.is_enabled() {
                // Logical clock = epoch index; the tick both samples the
                // registry and runs the alert rules.
                health.tick(outcome.epoch, &self.config.obs);
            }
        }

        self.tracker.advance_epoch();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracker::{DecayMode, TrackerConfig};
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Instance, Schema, Workload};

    fn schema() -> Schema {
        let mut sb = Schema::builder();
        sb.table("R", &[("r1", 50.0)]).unwrap();
        sb.table("S", &[("s1", 50.0)]).unwrap();
        sb.table("H", &[("h", 100.0)]).unwrap();
        sb.build().unwrap()
    }

    /// Pinned R/S reader-writer pairs, two mobile readers of `h`, and an
    /// `h` writer at `write_freq` — the replication-vs-centralization
    /// flip of the drift tests.
    fn phase(write_freq: f64) -> Instance {
        let schema = schema();
        let mut wb = Workload::builder(&schema);
        let r_read = wb
            .add_query(
                QuerySpec::read("r_read")
                    .access(&[AttrId(0)])
                    .frequency(10.0),
            )
            .unwrap();
        let r_write = wb
            .add_query(
                QuerySpec::write("r_write")
                    .access(&[AttrId(0)])
                    .frequency(10.0),
            )
            .unwrap();
        let s_read = wb
            .add_query(
                QuerySpec::read("s_read")
                    .access(&[AttrId(1)])
                    .frequency(10.0),
            )
            .unwrap();
        let s_write = wb
            .add_query(
                QuerySpec::write("s_write")
                    .access(&[AttrId(1)])
                    .frequency(10.0),
            )
            .unwrap();
        let h_read_a = wb
            .add_query(
                QuerySpec::read("h_read_a")
                    .access(&[AttrId(2)])
                    .frequency(40.0),
            )
            .unwrap();
        // Structurally distinct from h_read_a (2-row reads), so the
        // tracker keeps the two mobile readers as separate templates.
        let h_read_b = wb
            .add_query(
                QuerySpec::read("h_read_b")
                    .access(&[AttrId(2)])
                    .frequency(20.0)
                    .rows(vpart_model::TableId(2), 2.0),
            )
            .unwrap();
        let h_write = wb
            .add_query(
                QuerySpec::write("h_write")
                    .access(&[AttrId(2)])
                    .frequency(write_freq),
            )
            .unwrap();
        wb.transaction("T0", &[r_read, r_write]).unwrap();
        wb.transaction("T1", &[s_read, s_write]).unwrap();
        wb.transaction("T2", &[h_read_a]).unwrap();
        wb.transaction("T3", &[h_read_b]).unwrap();
        wb.transaction("TW", &[h_write]).unwrap();
        Instance::new("phase", schema, wb.build().unwrap()).unwrap()
    }

    fn watcher(threshold: f64) -> Watcher {
        let tracker = OnlineWorkload::new(
            "watch",
            schema(),
            TrackerConfig {
                decay: DecayMode::Exponential { factor: 0.5 },
                ..TrackerConfig::default()
            },
        )
        .unwrap();
        Watcher::new(
            tracker,
            WatchConfig {
                cost: CostConfig::default().with_lambda(0.5),
                drift: DriftConfig {
                    threshold,
                    ..DriftConfig::default()
                },
                ..WatchConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn stationary_epochs_never_trigger() {
        let mut w = watcher(0.05);
        for i in 0..3 {
            w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
            let out = w.end_epoch(&format!("e{i}")).unwrap();
            if i == 0 {
                assert!(out.resolve.as_ref().unwrap().cold, "bootstrap");
            } else {
                assert!(!out.triggered, "epoch {i} drifted: {}", out.drift_score);
                assert!(out.migration.is_none());
            }
        }
    }

    #[test]
    fn drifted_epoch_triggers_and_migration_meter_matches() {
        let mut w = watcher(0.05);
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("replicate-h").unwrap();
        // The h-write stream explodes; decay keeps some history, the
        // flip still dominates.
        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let out = w.end_epoch("centralize-h").unwrap();
        assert!(
            out.triggered,
            "flip must trigger (score {})",
            out.drift_score
        );
        let resolve = out.resolve.expect("warm re-solve ran");
        assert!(!resolve.cold);
        assert!(
            resolve.objective6 <= out.incumbent_cost + 1e-9,
            "never regresses"
        );
        let mig = out.migration.expect("a migration was planned");
        assert!(mig.meter_matches, "engine meter == plan estimate");
        assert_eq!(mig.measured_bytes, mig.estimated_bytes);
        assert_eq!(w.incumbent().unwrap(), &mig.plan.to);
    }

    #[test]
    fn zero_threshold_with_stationary_mix_plans_zero_movement() {
        // threshold 0 re-solves every epoch; on a stationary mix the warm
        // re-solve lands on (a relabeling of) the incumbent and the
        // canonicalized plan moves nothing.
        let mut w = watcher(0.0);
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        let out = w.end_epoch("steady").unwrap();
        if let Some(mig) = out.migration {
            assert_eq!(
                mig.estimated_bytes, 0.0,
                "stationary re-solve must not move bytes"
            );
            assert!(mig.meter_matches);
        }
    }

    #[test]
    fn obs_records_epoch_spans_nested_solves_and_migration_meters() {
        let obs = Obs::enabled();
        let tracker = OnlineWorkload::new(
            "watch",
            schema(),
            TrackerConfig {
                decay: DecayMode::Exponential { factor: 0.5 },
                ..TrackerConfig::default()
            },
        )
        .unwrap();
        let mut w = Watcher::new(
            tracker,
            WatchConfig {
                cost: CostConfig::default().with_lambda(0.5),
                drift: DriftConfig {
                    threshold: 0.05,
                    ..DriftConfig::default()
                },
                obs: obs.clone(),
                ..WatchConfig::default()
            },
        )
        .unwrap();
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        let boot = w.end_epoch("boot").unwrap();
        assert!(boot.elapsed > Duration::ZERO);
        assert_eq!(boot.snapshot_attrs, 3);
        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let out = w.end_epoch("flip").unwrap();
        assert!(out.triggered);

        let text = obs.metrics_prometheus();
        assert!(text.contains("watch_epochs_total 2"));
        assert!(text.contains("watch_drift_triggers_total 1"));
        assert!(text.contains("engine_migration_bytes_total"));
        assert!(text.contains("epoch_wall_seconds_count 2"));
        assert!(text.contains("warm_resolve_wall_seconds_count 1"));

        // Solver and engine spans nest under their epoch's span.
        let lines: Vec<serde_json::Value> = obs
            .trace_json_lines()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let span_named = |name: &str| {
            lines
                .iter()
                .filter(|v| {
                    v.get("type").and_then(|t| t.as_str()) == Some("span")
                        && v.get("name").and_then(|n| n.as_str()) == Some(name)
                })
                .collect::<Vec<_>>()
        };
        let epochs = span_named("watch_epoch");
        assert_eq!(epochs.len(), 2);
        let epoch_ids: Vec<u64> = epochs
            .iter()
            .map(|e| e.get("id").and_then(|i| i.as_u64()).unwrap())
            .collect();
        for nested in ["sa_solve", "migrate_batched"] {
            for s in span_named(nested) {
                let parent = s.get("parent").and_then(|p| p.as_u64()).unwrap();
                assert!(epoch_ids.contains(&parent), "{nested} not nested");
            }
        }
        assert_eq!(span_named("migrate_batched").len(), 1);
    }

    #[test]
    fn config_validation() {
        let tracker = OnlineWorkload::new("v", schema(), TrackerConfig::default()).unwrap();
        assert!(Watcher::new(
            tracker.clone(),
            WatchConfig {
                sites: 0,
                ..WatchConfig::default()
            }
        )
        .is_err());
        assert!(Watcher::new(
            tracker.clone(),
            WatchConfig {
                cold_restarts: 0,
                ..WatchConfig::default()
            }
        )
        .is_err());
        assert!(Watcher::new(
            tracker.clone(),
            WatchConfig {
                hysteresis: 0,
                ..WatchConfig::default()
            }
        )
        .is_err());
        assert!(Watcher::new(
            tracker,
            WatchConfig {
                migration_batch_bytes: 0.0,
                ..WatchConfig::default()
            }
        )
        .is_err());
    }

    fn watcher_cfg(threshold: f64, tweak: impl FnOnce(&mut WatchConfig)) -> Watcher {
        let tracker = OnlineWorkload::new(
            "watch",
            schema(),
            TrackerConfig {
                decay: DecayMode::Exponential { factor: 0.5 },
                ..TrackerConfig::default()
            },
        )
        .unwrap();
        let mut cfg = WatchConfig {
            cost: CostConfig::default().with_lambda(0.5),
            drift: DriftConfig {
                threshold,
                ..DriftConfig::default()
            },
            ..WatchConfig::default()
        };
        tweak(&mut cfg);
        Watcher::new(tracker, cfg).unwrap()
    }

    #[test]
    fn hysteresis_defers_the_resolve_until_the_streak_holds() {
        let mut w = watcher_cfg(0.05, |c| c.hysteresis = 2);
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let first = w.end_epoch("flip-1").unwrap();
        assert!(first.triggered);
        assert!(first.resolve.is_none(), "hysteresis must defer the solve");
        assert!(first.veto.as_deref().unwrap().contains("hysteresis"));

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let second = w.end_epoch("flip-2").unwrap();
        assert!(second.triggered);
        assert!(second.resolve.is_some(), "streak of 2 unlocks the solve");
        assert!(second.veto.is_none());
        assert!(second.migration.is_some());
    }

    /// An injected crash mid-migration rolls back, backs off one epoch,
    /// then the retry completes — ending at the same layout a fault-free
    /// watcher reaches.
    #[test]
    fn injected_migration_crash_rolls_back_backs_off_and_retries() {
        let obs = Obs::enabled();
        let mut w = watcher_cfg(0.05, |c| {
            let mut f = FaultInjector::new(9);
            f.arm_spec("migration.batch:nth=1").unwrap();
            c.faults = f;
            c.migration_batch_bytes = 1000.0;
            c.obs = obs.clone();
        });
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();
        let incumbent_before = w.incumbent().unwrap().clone();

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let failed = w.end_epoch("crash").unwrap();
        assert!(failed.triggered && failed.migration.is_none());
        let veto = failed.veto.as_deref().unwrap();
        assert!(veto.contains("rolled back"), "veto: {veto}");
        assert_eq!(failed.failures, 1);
        assert_eq!(failed.backoff_remaining, 1);
        assert!(!failed.degraded);
        assert_eq!(w.retries_total(), 1);
        assert_eq!(w.rollbacks_total(), 1);
        assert_eq!(
            w.incumbent().unwrap(),
            &incumbent_before,
            "rollback keeps the incumbent deployed"
        );

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let waiting = w.end_epoch("backoff").unwrap();
        assert!(waiting.veto.as_deref().unwrap().contains("backoff"));

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let retried = w.end_epoch("retry").unwrap();
        assert!(
            retried.migration.is_some(),
            "retry succeeds: {:?}",
            retried.veto
        );
        assert_eq!(retried.failures, 0);
        let mig = retried.migration.unwrap();
        assert!(mig.meter_matches);
        assert!(mig.batches >= 1);

        let text = obs.metrics_prometheus();
        assert!(text.contains("migration_retries_total 1"));
        assert!(text.contains("migration_rollbacks_total 1"));
    }

    /// Exhausted retries degrade the watcher; it serves the incumbent
    /// until drift recedes, then recovers.
    #[test]
    fn exhausted_retries_degrade_until_drift_recedes() {
        let mut w = watcher_cfg(0.05, |c| {
            c.max_retries = 0;
            let mut f = FaultInjector::new(4);
            f.arm_spec("migration.batch:prob=1.0").unwrap();
            c.faults = f;
        });
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let failed = w.end_epoch("crash").unwrap();
        assert!(failed.degraded, "max_retries 0 degrades on first failure");
        assert!(w.is_degraded());

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let held = w.end_epoch("held").unwrap();
        assert!(held.degraded);
        assert!(held.veto.as_deref().unwrap().contains("degraded"));
        assert!(held.resolve.is_none(), "degraded mode never re-solves");

        // The write storm ends; decay drains it and drift recedes.
        let mut recovered = false;
        for i in 0..15 {
            w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
            let out = w.end_epoch(&format!("calm-{i}")).unwrap();
            if !out.triggered {
                assert!(!out.degraded, "receded drift must clear degradation");
                recovered = true;
                break;
            }
        }
        assert!(recovered, "drift never receded under decay");
        assert!(!w.is_degraded());
    }

    /// An injected re-solve crash counts as a retryable failure without
    /// a rollback (nothing was deployed yet).
    #[test]
    fn injected_resolve_crash_is_retryable() {
        let mut w = watcher_cfg(0.05, |c| {
            let mut f = FaultInjector::new(6);
            f.arm_spec("watch.resolve:nth=1").unwrap();
            c.faults = f;
        });
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();
        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let failed = w.end_epoch("crash").unwrap();
        assert!(failed.veto.as_deref().unwrap().contains("watch.resolve"));
        assert_eq!(w.retries_total(), 1);
        assert_eq!(w.rollbacks_total(), 0, "no deployment to roll back");
    }

    /// The live health layer rides the epoch clock: an injected
    /// migration crash flips the watcher into degraded mode and the
    /// built-in `watch-degraded` alert fires; once drift recedes and the
    /// watcher recovers, the alert resolves. Both edges also land in the
    /// trace as `alert` events.
    #[test]
    fn health_monitor_fires_and_resolves_degraded_alert() {
        let obs = Obs::enabled();
        let mut w = watcher_cfg(0.05, |c| {
            c.max_retries = 0;
            let mut f = FaultInjector::new(4);
            f.arm_spec("migration.batch:prob=1.0").unwrap();
            c.faults = f;
            c.obs = obs.clone();
        })
        .with_health(HealthMonitor::with_builtin_rules(32));
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();
        assert!(!w.health().unwrap().any_critical_firing());

        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let failed = w.end_epoch("crash").unwrap();
        assert!(failed.degraded);
        assert!(w.health().unwrap().any_critical_firing(), "alert must fire");

        for i in 0..15 {
            w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
            if !w.end_epoch(&format!("calm{i}")).unwrap().degraded {
                break;
            }
        }
        assert!(!w.is_degraded(), "drift must recede in the calm phase");
        let health = w.health().unwrap();
        assert!(!health.any_critical_firing(), "alert must resolve");
        let edges: Vec<&str> = health
            .alerts()
            .transitions()
            .iter()
            .filter(|t| t.rule == "watch-degraded")
            .map(|t| t.state)
            .collect();
        assert_eq!(edges, vec!["firing", "resolved"]);
        let trace = obs.trace_json_lines();
        assert!(
            trace
                .lines()
                .any(|l| l.contains("\"name\":\"alert\"") && l.contains("watch-degraded")),
            "alert transitions must be recorded as trace events"
        );
    }

    /// The amortization arithmetic: a plan is vetoed exactly when its
    /// byte cost exceeds the window's projected savings.
    #[test]
    fn amortization_gate_arithmetic() {
        // Disabled gate lets anything through.
        assert!(!amortization_vetoes(0, 1e12, 0.0));
        // Free plans always pass.
        assert!(!amortization_vetoes(1, 0.0, 0.0));
        assert!(!amortization_vetoes(1, -0.0, 123.0));
        // Paid back within the window ⇒ pass; beyond it ⇒ veto.
        assert!(!amortization_vetoes(4, 100.0, 25.0));
        assert!(amortization_vetoes(3, 100.0, 25.0));
        // Negative savings (the re-solve found nothing better) can never
        // pay for movement.
        assert!(amortization_vetoes(10, 1.0, -5.0));
        assert!(!amortization_vetoes(10, 0.0, -5.0));
    }

    /// Gate wiring: with the gate armed, the canonical flip's free
    /// (zero-byte) centralization plan still migrates — only plans that
    /// actually ship bytes can be vetoed.
    #[test]
    fn amortization_gate_passes_free_plans() {
        let mut w = watcher_cfg(0.05, |c| c.amortize_epochs = 1);
        w.tracker_mut().observe_instance(&phase(1.0)).unwrap();
        w.end_epoch("boot").unwrap();
        w.tracker_mut().observe_instance(&phase(300.0)).unwrap();
        let out = w.end_epoch("flip").unwrap();
        assert!(out.triggered);
        let mig = out.migration.expect("free plan passes the gate");
        assert_eq!(mig.estimated_bytes.abs(), 0.0);
        assert!(out.veto.is_none());
    }
}
