//! Minimum-movement migration planning.
//!
//! Solvers treat site labels as interchangeable — a re-solve can return
//! the incumbent's layout with sites renumbered, and a naive diff would
//! then "move" every byte in the cluster. [`canonicalize_against`]
//! removes that freedom: it relabels the new partitioning's sites by a
//! min-cost assignment (the Hungarian algorithm on fragment-byte overlap,
//! ties broken toward keeping labels), so a renumbered-but-identical
//! layout maps back onto itself and moves zero bytes. [`plan_migration`]
//! canonicalizes and then diffs with
//! [`MigrationPlan::between`](vpart_model::MigrationPlan::between).
//!
//! The relabeling is idempotent: canonicalizing an already-canonical
//! layout returns it unchanged (the identity assignment is optimal and
//! wins every tie).

use crate::OnlineError;
use vpart_model::{AttrId, Instance, MigrationPlan, Partitioning, SiteId};

/// Maximum-weight perfect assignment on a square matrix via the Hungarian
/// algorithm (potentials form, `O(n³)`): returns `assign` with
/// `assign[col] = row`.
fn max_assignment(weight: &[Vec<f64>]) -> Vec<usize> {
    let n = weight.len();
    if n == 0 {
        return Vec::new();
    }
    // Minimize cost = max_w − w. The classic potentials algorithm below
    // (e-maxx form, 1-indexed with a dummy 0 row/column) computes a
    // minimum-cost perfect matching.
    let max_w = weight
        .iter()
        .flatten()
        .fold(f64::NEG_INFINITY, |m, &w| m.max(w));
    let cost = |i: usize, j: usize| max_w - weight[i][j];

    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut way = vec![0usize; n + 1];
    // p[j] = the row matched to column j (0 = unmatched dummy).
    let mut p = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assign = vec![0usize; n];
    for j in 1..=n {
        assign[j - 1] = p[j] - 1;
    }
    assign
}

/// Relabels `new`'s sites to maximize fragment-byte overlap with `old`:
/// new site `j` takes the label of the old site it shares the most
/// attribute-fraction bytes with (exact min-cost assignment). Ties prefer
/// keeping a site's label, which makes the relabeling idempotent. The
/// returned partitioning is `new` with permuted site indices — identical
/// cost, identical structure.
pub fn canonicalize_against(
    instance: &Instance,
    old: &Partitioning,
    new: &Partitioning,
) -> Result<Partitioning, OnlineError> {
    if old.n_sites() != new.n_sites() {
        return Err(OnlineError::SiteCountMismatch {
            old: old.n_sites(),
            new: new.n_sites(),
        });
    }
    let n = old.n_sites();
    let schema = instance.schema();

    // overlap[i][j] = bytes per row shared when new site j is labeled i.
    let mut overlap = vec![vec![0.0f64; n]; n];
    for a in 0..instance.n_attrs() {
        let attr = AttrId::from_index(a);
        let w = schema.width(attr);
        for i in old.attr_sites(attr) {
            for j in new.attr_sites(attr) {
                overlap[i.index()][j.index()] += w;
            }
        }
    }
    // Tie-break bonus: prefer the identity mapping among equal-overlap
    // assignments. The bonus is orders of magnitude below any real width,
    // so it never overrides a genuine overlap difference.
    let scale = overlap
        .iter()
        .flatten()
        .fold(1.0f64, |m, &w| m.max(w.abs()));
    let eps = scale * 1e-9;
    for (i, row) in overlap.iter_mut().enumerate() {
        row[i] += eps;
    }

    // assign[j] = old label for new site j.
    let assign = max_assignment(&overlap);
    let x = new
        .x()
        .iter()
        .map(|s| SiteId::from_index(assign[s.index()]))
        .collect();
    let mut y = vpart_model::BitMatrix::new(new.n_attrs(), n);
    for a in 0..new.n_attrs() {
        for j in new.y().row_iter(a) {
            y.set(a, assign[j]);
        }
    }
    Ok(Partitioning::from_parts(n, x, y)?)
}

/// The full planner: relabels `new` against `old`
/// ([`canonicalize_against`]) and diffs the result into a
/// [`MigrationPlan`] whose byte estimates assume `rows_per_fragment` rows
/// per fragment (the `vpart_engine::Deployment` materialization
/// parameter — plans built with the deployment's row count are metered
/// exactly by `apply_migration`).
pub fn plan_migration(
    instance: &Instance,
    old: &Partitioning,
    new: &Partitioning,
    rows_per_fragment: usize,
) -> Result<MigrationPlan, OnlineError> {
    let canonical = canonicalize_against(instance, old, new)?;
    Ok(MigrationPlan::between(
        instance,
        old,
        &canonical,
        rows_per_fragment,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, TxnId, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        sb.table("S", &[("c", 2.0), ("d", 16.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2), AttrId(3)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("mig", schema, wb.build().unwrap()).unwrap()
    }

    /// Applies a site-label permutation to a partitioning.
    fn permuted(p: &Partitioning, perm: &[usize]) -> Partitioning {
        let x = p
            .x()
            .iter()
            .map(|s| SiteId::from_index(perm[s.index()]))
            .collect();
        let mut y = vpart_model::BitMatrix::new(p.n_attrs(), p.n_sites());
        for a in 0..p.n_attrs() {
            for s in p.y().row_iter(a) {
                y.set(a, perm[s]);
            }
        }
        Partitioning::from_parts(p.n_sites(), x, y).unwrap()
    }

    #[test]
    fn hungarian_picks_the_obvious_diagonal() {
        let w = vec![
            vec![10.0, 1.0, 0.0],
            vec![0.0, 9.0, 2.0],
            vec![1.0, 0.0, 8.0],
        ];
        assert_eq!(max_assignment(&w), vec![0, 1, 2]);
        // And the anti-diagonal when that is where the weight sits.
        let w = vec![vec![0.0, 10.0], vec![10.0, 0.0]];
        assert_eq!(max_assignment(&w), vec![1, 0]);
    }

    #[test]
    fn renumbered_identical_layout_moves_zero_bytes() {
        let ins = instance();
        let old = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 3).unwrap();
        // The same layout with sites rotated 0→2→1→0.
        let rotated = permuted(&old, &[2, 0, 1]);
        assert_ne!(old, rotated, "labels differ");
        let plan = plan_migration(&ins, &old, &rotated, 32).unwrap();
        assert!(plan.is_empty(), "canonicalization undoes the renumbering");
        assert_eq!(plan.to, old);
        assert_eq!(plan.estimated_bytes(), 0.0);
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let ins = instance();
        let old = Partitioning::minimal_for_x(&ins, vec![SiteId(1), SiteId(2)], 3).unwrap();
        let new = Partitioning::minimal_for_x(&ins, vec![SiteId(2), SiteId(0)], 3).unwrap();
        let once = canonicalize_against(&ins, &old, &new).unwrap();
        let twice = canonicalize_against(&ins, &old, &once).unwrap();
        assert_eq!(once, twice);
        once.validate(&ins, false).unwrap();
    }

    #[test]
    fn overlap_matching_moves_only_the_difference() {
        let ins = instance();
        // Old: R on site 0 (T0), S on site 1 (T1).
        let old = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        // New, with flipped labels AND d additionally replicated: after
        // relabeling, only the extra d replica moves.
        let mut new = Partitioning::minimal_for_x(&ins, vec![SiteId(1), SiteId(0)], 2).unwrap();
        new.add_replica(AttrId(3), SiteId(1));
        let plan = plan_migration(&ins, &old, &new, 10).unwrap();
        assert_eq!(plan.installs(), 1);
        assert_eq!(plan.drops(), 0);
        assert!(plan.txn_moves.is_empty(), "homes align after relabeling");
        // d is 16 bytes × 10 rows, landing on the site that lacked it.
        assert_eq!(plan.estimated_bytes(), 160.0);
    }

    #[test]
    fn random_relabelings_always_cancel() {
        // Deterministic pseudo-random sweep over layouts and
        // permutations: a relabeled copy of any layout must always plan
        // to zero movement.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let ins = instance();
        let mut rng = StdRng::seed_from_u64(0xCA11);
        for sites in [2usize, 3, 4] {
            for _ in 0..10 {
                let x: Vec<SiteId> = (0..ins.n_txns())
                    .map(|_| SiteId::from_index(rng.gen_range(0..sites)))
                    .collect();
                let mut p = Partitioning::minimal_for_x(&ins, x, sites).unwrap();
                // Sprinkle extra replicas.
                for a in 0..ins.n_attrs() {
                    if rng.gen::<f64>() < 0.3 {
                        p.add_replica(
                            AttrId::from_index(a),
                            SiteId::from_index(rng.gen_range(0..sites)),
                        );
                    }
                }
                // Random permutation via repeated swaps.
                let mut perm: Vec<usize> = (0..sites).collect();
                for i in (1..sites).rev() {
                    perm.swap(i, rng.gen_range(0..i + 1));
                }
                let relabeled = permuted(&p, &perm);
                let plan = plan_migration(&ins, &p, &relabeled, 8).unwrap();
                assert!(
                    plan.is_empty(),
                    "perm {perm:?} of a {sites}-site layout must cancel"
                );
            }
        }
    }

    #[test]
    fn site_count_mismatch_is_rejected() {
        let ins = instance();
        let a = Partitioning::single_site(&ins, 2).unwrap();
        let b = Partitioning::single_site(&ins, 3).unwrap();
        assert!(matches!(
            canonicalize_against(&ins, &a, &b),
            Err(OnlineError::SiteCountMismatch { .. })
        ));
    }

    #[test]
    fn canonicalization_minimizes_bytes_not_label_churn() {
        let ins = instance();
        // Old: everything on site 0. New: T0/{a,b} on one site, T1/{c,d}
        // on the other. Keeping {c,d} (18 bytes/row) in place beats
        // keeping {a,b} (12 bytes/row), so the matching relabels the new
        // layout to move only the R fraction — and T0 with it.
        let old = Partitioning::single_site(&ins, 2).unwrap();
        let new = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = plan_migration(&ins, &old, &new, 4).unwrap();
        assert_eq!(plan.txn_moves.len(), 1);
        assert_eq!(plan.txn_moves[0].txn, TxnId(0));
        assert_eq!(plan.txn_moves[0].to, SiteId(1));
        assert_eq!(plan.installs(), 2, "a and b install on site 1");
        assert_eq!(plan.drops(), 2, "a and b leave site 0");
        assert_eq!(plan.estimated_bytes(), (4.0 + 8.0) * 4.0);
    }
}
