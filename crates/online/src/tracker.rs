//! Streaming workload tracking: per-template observations under decay.
//!
//! The paper solves a one-shot problem from a frozen workload; a live
//! deployment sees a *stream* of transaction executions whose mix drifts.
//! [`OnlineWorkload`] accumulates that stream as per-template execution
//! counts under a configurable forgetting policy and materializes a fresh
//! [`Instance`] snapshot on demand, which any solver in `vpart_core`
//! accepts unchanged.
//!
//! # Templates
//!
//! A *template* is one transaction shape: its statements' read/write
//! attribute sets, per-table row counts and per-execution multiplicities —
//! everything about a [`vpart_model::Transaction`] except how often it
//! runs. Templates are registered from any [`Instance`] over the same
//! schema ([`OnlineWorkload::observe_instance`]), which is how the
//! `vpart_ingest` flattening pipeline feeds the tracker: ingest a log
//! chunk or a statistics dump with any frontend, then observe the result.
//! Matching is structural, so the same statements ingested from different
//! chunks (with different frequencies) land on the same template, and
//! genuinely new transaction shapes register as new templates. Template
//! indices are append-only and stable across snapshots, so a
//! [`Partitioning`](vpart_model::Partitioning) solved on one snapshot maps
//! onto the next by transaction id.
//!
//! Raw execution streams — e.g. `vpart_engine::Trace::executions` — feed
//! the tracker through [`OnlineWorkload::observe_executions`].
//!
//! # Forgetting
//!
//! [`DecayMode::Exponential`] keeps an exponentially-decayed running sum:
//! closing an epoch multiplies history by `factor` before the next epoch
//! accumulates. Cheap (O(templates) state), smooth, but old traffic never
//! fully disappears. [`DecayMode::Window`] keeps the last `epochs` closed
//! epochs verbatim: exact cut-off and bounded memory of the past, at
//! O(templates × epochs) state and a stepwise response. Use exponential
//! decay for steady drift-following, windows when stale traffic must stop
//! influencing the partitioner after a hard deadline.

use std::collections::{HashMap, VecDeque};
use vpart_model::workload::QuerySpec;
use vpart_model::{Instance, Query, Schema, TxnId, Workload};

use crate::OnlineError;

/// Forgetting policy for closed epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecayMode {
    /// Exponential decay: closing an epoch multiplies accumulated history
    /// by `factor ∈ [0, 1)` before adding the epoch's counts.
    Exponential {
        /// Per-epoch retention factor.
        factor: f64,
    },
    /// Sliding window: only the last `epochs` closed epochs (plus the open
    /// one) contribute.
    Window {
        /// Number of closed epochs kept.
        epochs: usize,
    },
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerConfig {
    /// Forgetting policy.
    pub decay: DecayMode,
    /// Frequency floor for templates whose effective weight decayed to
    /// (near) zero. Snapshots keep every registered template — indices
    /// must stay stable — so dead templates are pinned at this tiny
    /// weight instead of being dropped.
    pub min_weight: f64,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self {
            decay: DecayMode::Exponential { factor: 0.5 },
            min_weight: 1e-6,
        }
    }
}

impl TrackerConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), OnlineError> {
        match self.decay {
            DecayMode::Exponential { factor } => {
                if !(0.0..1.0).contains(&factor) {
                    return Err(OnlineError::BadConfig(format!(
                        "decay factor must be in [0,1), got {factor}"
                    )));
                }
            }
            DecayMode::Window { epochs } => {
                if epochs == 0 {
                    return Err(OnlineError::BadConfig(
                        "window must keep at least one epoch".into(),
                    ));
                }
            }
        }
        if !(self.min_weight > 0.0) || !self.min_weight.is_finite() {
            return Err(OnlineError::BadConfig(format!(
                "min_weight must be positive and finite, got {}",
                self.min_weight
            )));
        }
        Ok(())
    }
}

/// Structural identity of one query within a template: kind, attribute
/// set, per-table row counts, and per-execution multiplicity (frequency
/// relative to the template weight) — everything except absolute rate.
type QuerySig = (bool, Vec<u32>, Vec<(u32, u64)>, u64);

/// Structural identity of a whole template.
type TemplateSig = Vec<QuerySig>;

/// One registered transaction shape.
#[derive(Debug, Clone)]
struct Template {
    name: String,
    /// The template's queries with `frequency` = per-execution
    /// multiplicity (the source query's frequency divided by the template
    /// weight).
    queries: Vec<Query>,
}

/// The weight convention shared with `vpart_ingest`: a transaction
/// template's weight is its largest per-query frequency (ingestion builds
/// per-statement frequencies as `weight × multiplicity` with the dominant
/// statement at multiplicity 1).
fn template_weight(workload: &Workload, t: TxnId) -> f64 {
    workload
        .txn(t)
        .queries
        .iter()
        .map(|&q| workload.query(q).frequency)
        .fold(0.0f64, f64::max)
}

fn signature(workload: &Workload, t: TxnId, weight: f64) -> TemplateSig {
    workload
        .txn(t)
        .queries
        .iter()
        .map(|&qid| {
            let q = workload.query(qid);
            (
                q.kind.is_write(),
                q.attrs.iter().map(|a| a.0).collect(),
                q.table_rows
                    .iter()
                    .map(|&(tb, n)| (tb.0, n.to_bits()))
                    .collect(),
                (q.frequency / weight).to_bits(),
            )
        })
        .collect()
}

/// Streaming per-template workload accumulator (see module docs).
#[derive(Debug, Clone)]
pub struct OnlineWorkload {
    name: String,
    schema: Schema,
    config: TrackerConfig,
    templates: Vec<Template>,
    index: HashMap<TemplateSig, usize>,
    name_uses: HashMap<String, usize>,
    /// Counts observed in the open epoch.
    current: Vec<f64>,
    /// Exponentially decayed history ([`DecayMode::Exponential`]).
    decayed: Vec<f64>,
    /// Closed epochs, oldest first ([`DecayMode::Window`]).
    window: VecDeque<Vec<f64>>,
    epoch: u64,
}

impl OnlineWorkload {
    /// An empty tracker over `schema`. Templates register on first
    /// observation.
    pub fn new<S: Into<String>>(
        name: S,
        schema: Schema,
        config: TrackerConfig,
    ) -> Result<Self, OnlineError> {
        config.validate()?;
        Ok(Self {
            name: name.into(),
            schema,
            config,
            templates: Vec::new(),
            index: HashMap::new(),
            name_uses: HashMap::new(),
            current: Vec::new(),
            decayed: Vec::new(),
            window: VecDeque::new(),
            epoch: 0,
        })
    }

    /// A tracker pre-registered with `instance`'s templates (no weight is
    /// observed yet). Template index `i` corresponds to `TxnId(i)` of the
    /// instance, so an existing partitioning maps over directly.
    pub fn from_instance(instance: &Instance, config: TrackerConfig) -> Result<Self, OnlineError> {
        let mut tracker = Self::new(instance.name(), instance.schema().clone(), config)?;
        for t in 0..instance.n_txns() {
            tracker.register(instance.workload(), TxnId::from_index(t));
        }
        Ok(tracker)
    }

    /// Registers (or finds) the template for transaction `t` of
    /// `workload`; returns its index.
    fn register(&mut self, workload: &Workload, t: TxnId) -> usize {
        let weight = template_weight(workload, t).max(f64::MIN_POSITIVE);
        let sig = signature(workload, t, weight);
        if let Some(&i) = self.index.get(&sig) {
            return i;
        }
        let base = workload.txn(t).name.clone();
        let uses = self.name_uses.entry(base.clone()).or_insert(0);
        *uses += 1;
        let name = if *uses == 1 {
            base
        } else {
            format!("{base}~{uses}")
        };
        let queries = workload
            .txn(t)
            .queries
            .iter()
            .map(|&qid| {
                let mut q = workload.query(qid).clone();
                q.frequency /= weight;
                q
            })
            .collect();
        let i = self.templates.len();
        self.templates.push(Template { name, queries });
        self.index.insert(sig, i);
        self.current.push(0.0);
        self.decayed.push(0.0);
        for epoch in &mut self.window {
            epoch.push(0.0);
        }
        self.debug_check_index_stability();
        i
    }

    /// `debug-invariants` self-check: template indices are append-only
    /// and every parallel array tracks them. Violations here would
    /// silently remap transaction ids between snapshots, detaching a
    /// deployed partitioning from the workload it was solved for.
    /// Compiles to nothing without the feature.
    #[cfg(feature = "debug-invariants")]
    fn debug_check_index_stability(&self) {
        let n = self.templates.len();
        assert_eq!(
            self.current.len(),
            n,
            "current[] out of step with templates"
        );
        assert_eq!(
            self.decayed.len(),
            n,
            "decayed[] out of step with templates"
        );
        assert_eq!(
            self.index.len(),
            n,
            "signature index out of step with templates"
        );
        for epoch in &self.window {
            assert_eq!(epoch.len(), n, "window epoch out of step with templates");
        }
        let mut seen = vec![false; n];
        for &i in self.index.values() {
            assert!(i < n, "signature index points past the template table");
            assert!(!seen[i], "two signatures map to template {i}");
            seen[i] = true;
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn debug_check_index_stability(&self) {}

    /// Observes `count` executions of template `template` in the open
    /// epoch.
    pub fn observe(&mut self, template: usize, count: f64) -> Result<(), OnlineError> {
        if template >= self.templates.len() {
            return Err(OnlineError::UnknownTemplate { template });
        }
        if !(count >= 0.0) || !count.is_finite() {
            return Err(OnlineError::BadConfig(format!(
                "observation count must be finite and non-negative, got {count}"
            )));
        }
        self.current[template] += count;
        Ok(())
    }

    /// Observes a raw execution stream (e.g. `Trace::executions` from the
    /// engine): each entry is one execution of the template with that
    /// transaction id.
    pub fn observe_executions(&mut self, executions: &[TxnId]) -> Result<(), OnlineError> {
        for &t in executions {
            self.observe(t.index(), 1.0)?;
        }
        Ok(())
    }

    /// Observes every transaction template of `instance` at its workload
    /// weight. This is the `vpart_ingest` feeding path: ingest a log chunk
    /// or statistics dump (any frontend — the shared flattening pipeline
    /// produces the instance) and pass the result here. New transaction
    /// shapes register as new templates; known shapes accumulate. Returns
    /// the total weight observed.
    pub fn observe_instance(&mut self, instance: &Instance) -> Result<f64, OnlineError> {
        if *instance.schema() != self.schema {
            return Err(OnlineError::SchemaMismatch);
        }
        let mut total = 0.0;
        for t in 0..instance.n_txns() {
            let txn = TxnId::from_index(t);
            let weight = template_weight(instance.workload(), txn);
            let i = self.register(instance.workload(), txn);
            self.current[i] += weight;
            total += weight;
        }
        Ok(total)
    }

    /// Observes a replayed execution stream (`ReplayStream::executions` /
    /// `Trace::executions` from `vpart_engine`) whose transaction ids
    /// refer to `instance` — the watch loop's engine-speed feeding path.
    ///
    /// One engine execution of transaction `t` runs every query at its
    /// workload frequency, which is `weight_t` tracker units (one unit =
    /// one run of the dominant statement). Each entry therefore adds the
    /// template's weight, so a stream containing every transaction once
    /// accumulates exactly what [`observe_instance`] would — replay-fed
    /// and log-fed trackers agree. New shapes register as new templates.
    /// Returns the total weight observed.
    ///
    /// [`observe_instance`]: Self::observe_instance
    pub fn observe_replay(
        &mut self,
        instance: &Instance,
        executions: &[TxnId],
    ) -> Result<f64, OnlineError> {
        if *instance.schema() != self.schema {
            return Err(OnlineError::SchemaMismatch);
        }
        let mut total = 0.0;
        for &txn in executions {
            if txn.index() >= instance.n_txns() {
                return Err(OnlineError::UnknownTemplate {
                    template: txn.index(),
                });
            }
            let weight = template_weight(instance.workload(), txn);
            let i = self.register(instance.workload(), txn);
            self.current[i] += weight;
            total += weight;
        }
        Ok(total)
    }

    /// Closes the open epoch: commits its counts under the forgetting
    /// policy and starts a new one. Returns the new epoch number.
    pub fn advance_epoch(&mut self) -> u64 {
        match self.config.decay {
            DecayMode::Exponential { factor } => {
                for (d, c) in self.decayed.iter_mut().zip(&mut self.current) {
                    *d = *d * factor + *c;
                    *c = 0.0;
                }
            }
            DecayMode::Window { epochs } => {
                self.window.push_back(std::mem::replace(
                    &mut self.current,
                    vec![0.0; self.templates.len()],
                ));
                while self.window.len() > epochs {
                    self.window.pop_front();
                }
            }
        }
        self.epoch += 1;
        self.debug_check_index_stability();
        self.epoch
    }

    /// Effective per-template weights right now: committed history under
    /// the forgetting policy plus the open epoch.
    pub fn effective_weights(&self) -> Vec<f64> {
        let mut eff = match self.config.decay {
            DecayMode::Exponential { factor } => self
                .decayed
                .iter()
                .map(|&d| d * factor)
                .collect::<Vec<f64>>(),
            DecayMode::Window { .. } => {
                let mut sums = vec![0.0; self.templates.len()];
                for epoch in &self.window {
                    for (s, &w) in sums.iter_mut().zip(epoch) {
                        *s += w;
                    }
                }
                sums
            }
        };
        for (e, &c) in eff.iter_mut().zip(&self.current) {
            *e += c;
        }
        eff
    }

    /// Materializes the current mix as a fresh [`Instance`]. Every
    /// registered template appears (index `i` = `TxnId(i)`), with query
    /// frequencies `effective_weight × per-execution multiplicity`;
    /// templates whose weight decayed below
    /// [`TrackerConfig::min_weight`] are pinned at that floor.
    pub fn snapshot(&self) -> Result<Instance, OnlineError> {
        if self.templates.is_empty() {
            return Err(OnlineError::NoTraffic);
        }
        let weights = self.effective_weights();
        let mut wb = Workload::builder(&self.schema);
        for (i, tpl) in self.templates.iter().enumerate() {
            let weight = weights[i].max(self.config.min_weight);
            let mut qids = Vec::with_capacity(tpl.queries.len());
            for (j, q) in tpl.queries.iter().enumerate() {
                let mut spec = if q.kind.is_write() {
                    QuerySpec::write(format!("{}.q{j}", tpl.name))
                } else {
                    QuerySpec::read(format!("{}.q{j}", tpl.name))
                };
                spec = spec.access(&q.attrs).frequency(weight * q.frequency);
                for &(tb, n) in &q.table_rows {
                    spec = spec.rows(tb, n);
                }
                qids.push(wb.add_query(spec)?);
            }
            wb.transaction(&tpl.name, &qids)?;
        }
        let name = format!("{}@e{}", self.name, self.epoch);
        Ok(Instance::new(name, self.schema.clone(), wb.build()?)?)
    }

    /// Number of registered templates.
    pub fn n_templates(&self) -> usize {
        self.templates.len()
    }

    /// Name of template `i`.
    pub fn template_name(&self, i: usize) -> &str {
        &self.templates[i].name
    }

    /// The open epoch's number (starts at 0).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The schema observations must match.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::{AttrId, TableId};

    fn schema() -> Schema {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        sb.build().unwrap()
    }

    fn instance(read_freq: f64, write_freq: f64) -> Instance {
        let schema = schema();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(
                QuerySpec::read("r")
                    .access(&[AttrId(0)])
                    .frequency(read_freq),
            )
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("w")
                    .access(&[AttrId(1)])
                    .frequency(write_freq)
                    .rows(TableId(0), 3.0),
            )
            .unwrap();
        wb.transaction("reader", &[q0]).unwrap();
        wb.transaction("writer", &[q1]).unwrap();
        Instance::new("t", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn snapshot_reproduces_an_observed_instance() {
        let ins = instance(10.0, 4.0);
        let mut tr = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).unwrap();
        tr.observe_instance(&ins).unwrap();
        let snap = tr.snapshot().unwrap();
        assert_eq!(snap.n_txns(), 2);
        assert_eq!(
            snap.workload().query(vpart_model::QueryId(0)).frequency,
            10.0
        );
        assert_eq!(
            snap.workload().query(vpart_model::QueryId(1)).frequency,
            4.0
        );
        // Row counts and access sets survive the round trip.
        assert_eq!(
            snap.workload()
                .query(vpart_model::QueryId(1))
                .rows_for_table(TableId(0)),
            3.0
        );
    }

    #[test]
    fn structural_matching_merges_chunks_with_different_rates() {
        let mut tr = OnlineWorkload::new("s", schema(), TrackerConfig::default()).unwrap();
        tr.observe_instance(&instance(10.0, 4.0)).unwrap();
        tr.observe_instance(&instance(2.0, 40.0)).unwrap();
        assert_eq!(tr.n_templates(), 2, "same shapes, different rates");
        let w = tr.effective_weights();
        assert_eq!(w, vec![12.0, 44.0]);
    }

    #[test]
    fn exponential_decay_follows_the_drift() {
        let cfg = TrackerConfig {
            decay: DecayMode::Exponential { factor: 0.5 },
            ..TrackerConfig::default()
        };
        let mut tr = OnlineWorkload::new("d", schema(), cfg).unwrap();
        tr.observe_instance(&instance(100.0, 1.0)).unwrap();
        tr.advance_epoch();
        tr.observe_instance(&instance(1.0, 100.0)).unwrap();
        let w = tr.effective_weights();
        // Reader: 100×0.5 + 1 = 51; writer: 1×0.5 + 100 = 100.5.
        assert_eq!(w, vec![51.0, 100.5]);
        tr.advance_epoch();
        let w = tr.effective_weights();
        assert_eq!(w, vec![25.5, 50.25], "history keeps decaying");
    }

    #[test]
    fn window_decay_forgets_exactly() {
        let cfg = TrackerConfig {
            decay: DecayMode::Window { epochs: 2 },
            ..TrackerConfig::default()
        };
        let mut tr = OnlineWorkload::new("w", schema(), cfg).unwrap();
        for (r, w) in [(10.0f64, 0.0f64), (20.0, 1.0), (30.0, 2.0)] {
            tr.observe_instance(&instance(r.max(1e-9), w.max(1e-9)))
                .unwrap();
            tr.advance_epoch();
        }
        let w = tr.effective_weights();
        // Only the last two epochs remain: 20+30 and 1+2.
        assert!((w[0] - 50.0).abs() < 1e-6);
        assert!((w[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn dead_templates_are_floored_not_dropped() {
        let cfg = TrackerConfig {
            decay: DecayMode::Window { epochs: 1 },
            min_weight: 1e-3,
        };
        let mut tr = OnlineWorkload::new("f", schema(), cfg).unwrap();
        tr.observe_instance(&instance(5.0, 5.0)).unwrap();
        tr.advance_epoch();
        tr.advance_epoch(); // the only observed epoch falls out
        let snap = tr.snapshot().unwrap();
        assert_eq!(snap.n_txns(), 2, "indices stay stable");
        assert_eq!(
            snap.workload().query(vpart_model::QueryId(0)).frequency,
            1e-3
        );
    }

    #[test]
    fn execution_streams_feed_by_transaction_id() {
        let ins = instance(1.0, 1.0);
        let mut tr = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).unwrap();
        tr.observe_executions(&[TxnId(0), TxnId(0), TxnId(1)])
            .unwrap();
        assert_eq!(tr.effective_weights(), vec![2.0, 1.0]);
        assert!(matches!(
            tr.observe(99, 1.0),
            Err(OnlineError::UnknownTemplate { template: 99 })
        ));
    }

    #[test]
    fn replay_streams_feed_at_template_weight() {
        let ins = instance(10.0, 4.0);
        let mut tr = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).unwrap();
        // Two executions of the reader (weight 10), one of the writer (4).
        let total = tr
            .observe_replay(&ins, &[TxnId(0), TxnId(1), TxnId(0)])
            .unwrap();
        assert_eq!(total, 24.0);
        assert_eq!(tr.effective_weights(), vec![20.0, 4.0]);
        // A stream with every transaction exactly once matches
        // observe_instance — replay-fed and log-fed trackers agree.
        let mut by_stream = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).unwrap();
        by_stream
            .observe_replay(&ins, &[TxnId(0), TxnId(1)])
            .unwrap();
        let mut by_log = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).unwrap();
        by_log.observe_instance(&ins).unwrap();
        assert_eq!(by_stream.effective_weights(), by_log.effective_weights());
        // Out-of-range ids and foreign schemas are rejected.
        assert!(matches!(
            tr.observe_replay(&ins, &[TxnId(7)]),
            Err(OnlineError::UnknownTemplate { template: 7 })
        ));
    }

    /// With `debug-invariants` on, heavy registration/epoch churn under
    /// both decay modes keeps passing the index-stability self-check
    /// (which runs on every registration and epoch close).
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn index_stability_self_check_survives_churn() {
        for decay in [
            DecayMode::Exponential { factor: 0.7 },
            DecayMode::Window { epochs: 3 },
        ] {
            let cfg = TrackerConfig {
                decay,
                ..TrackerConfig::default()
            };
            let mut tr = OnlineWorkload::new("churn", schema(), cfg).unwrap();
            for round in 0..50usize {
                tr.observe_instance(&instance(1.0 + round as f64, 2.0))
                    .unwrap();
                if round % 4 == 0 {
                    tr.advance_epoch();
                }
            }
            assert_eq!(tr.n_templates(), 2, "structural merge stays stable");
            tr.snapshot().unwrap();
        }
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let mut other = Schema::builder();
        other.table("X", &[("x", 1.0)]).unwrap();
        let other = other.build().unwrap();
        let mut tr = OnlineWorkload::new("m", other, TrackerConfig::default()).unwrap();
        assert!(matches!(
            tr.observe_instance(&instance(1.0, 1.0)),
            Err(OnlineError::SchemaMismatch)
        ));
    }

    #[test]
    fn empty_tracker_has_no_snapshot() {
        let tr = OnlineWorkload::new("e", schema(), TrackerConfig::default()).unwrap();
        assert!(matches!(tr.snapshot(), Err(OnlineError::NoTraffic)));
    }

    #[test]
    fn bad_configs_are_rejected() {
        for cfg in [
            TrackerConfig {
                decay: DecayMode::Exponential { factor: 1.0 },
                ..TrackerConfig::default()
            },
            TrackerConfig {
                decay: DecayMode::Window { epochs: 0 },
                ..TrackerConfig::default()
            },
            TrackerConfig {
                min_weight: 0.0,
                ..TrackerConfig::default()
            },
        ] {
            assert!(OnlineWorkload::new("x", schema(), cfg).is_err());
        }
    }
}
