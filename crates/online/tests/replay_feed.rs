//! Replayed traces feed the online tracker at engine speed: a tracker fed
//! the engine's replayed execution stream must accumulate exactly what a
//! log-fed tracker accumulates on the web-shop workload, and its snapshot
//! must reproduce the same instance.

use vpart_engine::{ReplayConfig, ReplayDeployment, ReplayStream};
use vpart_model::{Instance, Partitioning, TxnId};
use vpart_online::{OnlineWorkload, TrackerConfig};

fn web_shop() -> Instance {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let schema = std::fs::read_to_string(format!("{dir}/schema.sql"))
        .expect("examples/data/schema.sql is checked in");
    let log = std::fs::read_to_string(format!("{dir}/queries.log"))
        .expect("examples/data/queries.log is checked in");
    vpart_ingest::ingest(
        &schema,
        &log,
        &vpart_ingest::IngestOptions::default().with_name("web-shop"),
    )
    .expect("the checked-in workload ingests cleanly")
    .instance
}

#[test]
fn replay_fed_tracker_matches_log_fed_tracker_on_web_shop() {
    let ins = web_shop();

    // Log-fed: the ingest pipeline's instance observed directly.
    let mut by_log = OnlineWorkload::from_instance(&ins, TrackerConfig::default())
        .expect("tracker builds from the ingested instance");
    by_log.observe_instance(&ins).expect("log feeds");

    // Replay-fed: actually run the stream through the replay engine, then
    // feed the stream the engine executed. One engine execution of a
    // transaction is one template-weight's worth of traffic.
    let part = Partitioning::single_site(&ins, 1).expect("single site");
    let mut dep = ReplayDeployment::new(&ins, &part, 64, 8).expect("deploys");
    let stream = ReplayStream::uniform(&ins, 1, 5);
    let report = dep
        .replay(&stream, &ReplayConfig::deterministic(2), None)
        .expect("replays");
    assert_eq!(report.txns_replayed, ins.n_txns());

    let mut by_replay = OnlineWorkload::from_instance(&ins, TrackerConfig::default())
        .expect("tracker builds from the ingested instance");
    by_replay
        .observe_replay(&ins, &stream.executions)
        .expect("replayed stream feeds");

    assert_eq!(
        by_replay.effective_weights(),
        by_log.effective_weights(),
        "replay-fed and log-fed trackers must accumulate identically"
    );

    // And their snapshots materialize the same workload.
    let a = by_replay.snapshot().expect("snapshot");
    let b = by_log.snapshot().expect("snapshot");
    assert_eq!(a.n_txns(), b.n_txns());
    for q in 0..a.workload().queries().len() {
        let qa = &a.workload().queries()[q];
        let qb = &b.workload().queries()[q];
        assert_eq!(qa.frequency, qb.frequency, "query {q} frequency differs");
        assert_eq!(qa.attrs, qb.attrs);
        assert_eq!(qa.table_rows, qb.table_rows);
    }
}

#[test]
fn weighted_replay_streams_accumulate_proportionally() {
    let ins = web_shop();
    let mut tr =
        OnlineWorkload::from_instance(&ins, TrackerConfig::default()).expect("tracker builds");
    // Three rounds of every transaction = 3× the one-round weights.
    let mut one = OnlineWorkload::from_instance(&ins, TrackerConfig::default()).expect("tracker");
    let single: Vec<TxnId> = (0..ins.n_txns()).map(TxnId::from_index).collect();
    one.observe_replay(&ins, &single).expect("feeds");
    let stream = ReplayStream::uniform(&ins, 3, 0);
    tr.observe_replay(&ins, &stream.executions).expect("feeds");
    let w1 = one.effective_weights();
    let w3 = tr.effective_weights();
    for (a, b) in w1.iter().zip(&w3) {
        assert!((b - 3.0 * a).abs() < 1e-9, "3 rounds = 3× weight");
    }
}
