//! Migration correctness across the stack: canonicalization is idempotent
//! on real solver outputs, zero-drift snapshots plan zero movement, and
//! the engine's migration byte meter equals the plan estimate exactly on
//! TPC-C and the web-shop workload.

use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::CostConfig;
use vpart_engine::Deployment;
use vpart_model::{Instance, Partitioning, SiteId};
use vpart_online::{canonicalize_against, plan_migration};

fn web_shop() -> Instance {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let schema = std::fs::read_to_string(format!("{dir}/schema.sql"))
        .expect("examples/data/schema.sql is checked in");
    let log = std::fs::read_to_string(format!("{dir}/queries.log"))
        .expect("examples/data/queries.log is checked in");
    vpart_ingest::ingest(
        &schema,
        &log,
        &vpart_ingest::IngestOptions::default().with_name("web-shop"),
    )
    .expect("the checked-in workload ingests cleanly")
    .instance
}

fn solved(instance: &Instance, sites: usize, seed: u64) -> Partitioning {
    SaSolver::new(SaConfig::fast_deterministic(seed))
        .solve(instance, sites, &CostConfig::default())
        .expect("SA solves")
        .partitioning
}

/// Applies a site-label permutation.
fn permuted(p: &Partitioning, perm: &[usize]) -> Partitioning {
    let x = p
        .x()
        .iter()
        .map(|s| SiteId::from_index(perm[s.index()]))
        .collect();
    let mut y = vpart_model::BitMatrix::new(p.n_attrs(), p.n_sites());
    for a in 0..p.n_attrs() {
        for s in p.y().row_iter(a) {
            y.set(a, perm[s]);
        }
    }
    Partitioning::from_parts(p.n_sites(), x, y).unwrap()
}

#[test]
fn meter_equals_estimate_on_tpcc() {
    let ins = vpart_instances::tpcc();
    let old = solved(&ins, 3, 1);
    let new = solved(&ins, 3, 99);
    let plan = plan_migration(&ins, &old, &new, 64).unwrap();
    let mut dep = Deployment::new(&ins, &old, 64).unwrap();
    let report = dep.apply_migration(&plan).unwrap();
    assert_eq!(
        report.bytes_moved,
        plan.estimated_bytes(),
        "TPC-C migration meter must equal the plan estimate exactly"
    );
    for (measured, change) in report.per_change_bytes.iter().zip(&plan.changes) {
        assert_eq!(*measured, change.bytes);
    }
    assert_eq!(dep.partitioning(), &plan.to);
    // The migrated deployment executes the workload it was re-fit for.
    dep.execute(&vpart_engine::Trace::uniform(&ins, 1)).unwrap();
}

#[test]
fn meter_equals_estimate_on_web_shop() {
    let ins = web_shop();
    let old = solved(&ins, 2, 7);
    let new = solved(&ins, 2, 31);
    let plan = plan_migration(&ins, &old, &new, 32).unwrap();
    let mut dep = Deployment::new(&ins, &old, 32).unwrap();
    let report = dep.apply_migration(&plan).unwrap();
    assert_eq!(
        report.bytes_moved,
        plan.estimated_bytes(),
        "web-shop migration meter must equal the plan estimate exactly"
    );
    assert_eq!(report.installs, plan.installs());
    assert_eq!(report.drops, plan.drops());
    assert_eq!(report.txns_rerouted, plan.txn_moves.len());
}

#[test]
fn canonicalization_is_idempotent_on_solver_outputs() {
    for (ins, sites) in [(vpart_instances::tpcc(), 3), (web_shop(), 2)] {
        let old = solved(&ins, sites, 5);
        let new = solved(&ins, sites, 17);
        let once = canonicalize_against(&ins, &old, &new).unwrap();
        let twice = canonicalize_against(&ins, &old, &once).unwrap();
        assert_eq!(once, twice, "{}: relabeling must be stable", ins.name());
        once.validate(&ins, false).unwrap();
    }
}

#[test]
fn zero_drift_produces_an_empty_plan() {
    // A re-solve that lands on a site-renumbered copy of the incumbent
    // must migrate nothing, on both workloads.
    for (ins, sites, perm) in [
        (vpart_instances::tpcc(), 3usize, vec![2usize, 0, 1]),
        (web_shop(), 2, vec![1, 0]),
    ] {
        let old = solved(&ins, sites, 11);
        let relabeled = permuted(&old, &perm);
        let plan = plan_migration(&ins, &old, &relabeled, 16).unwrap();
        assert!(
            plan.is_empty(),
            "{}: renumbered-identical layout must plan zero movement",
            ins.name()
        );
        assert_eq!(plan.to, old);
        // And the empty plan applies as a no-op.
        let mut dep = Deployment::new(&ins, &old, 16).unwrap();
        let report = dep.apply_migration(&plan).unwrap();
        assert_eq!(report.bytes_moved, 0.0);
        assert_eq!(dep.partitioning(), &old);
    }
}

#[test]
fn warm_resolve_is_never_worse_than_the_incumbent_cost() {
    // The warm-start guarantee end to end on the web-shop instance: the
    // warm re-solve's objective (6) never exceeds the incumbent's.
    let ins = web_shop();
    let cost = CostConfig::default();
    let incumbent = solved(&ins, 2, 7);
    let incumbent_cost = vpart_core::evaluate(&ins, &incumbent, &cost).objective6;
    let warm = SaSolver::new(SaConfig::fast_deterministic(123).warm_started(incumbent))
        .solve(&ins, 2, &cost)
        .unwrap();
    assert!(warm.breakdown.objective6 <= incumbent_cost + 1e-9 * (1.0 + incumbent_cost));
}
