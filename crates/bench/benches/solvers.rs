//! Criterion micro-benchmarks of the core pipeline stages:
//! coefficient computation, cost evaluation, reasonable-cuts reduction,
//! incremental vs full annealing-move evaluation, the two solvers on
//! TPC-C, the raw LP substrate, and engine execution.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{evaluate, fast_objective6, CostCoefficients, CostConfig, IncrementalCost};
use vpart_engine::{Deployment, Trace};
use vpart_ilp::{Cmp, Model, SolveParams};
use vpart_model::{Partitioning, SiteId, TxnId};

fn bench_cost_model(c: &mut Criterion) {
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    c.bench_function("coefficients/tpcc", |b| {
        b.iter(|| black_box(CostCoefficients::compute(&ins, &cfg)))
    });
    let part = Partitioning::single_site(&ins, 1).unwrap();
    c.bench_function("evaluate/tpcc-single-site", |b| {
        b.iter(|| black_box(evaluate(&ins, &part, &cfg)))
    });
    c.bench_function("reduce/tpcc", |b| {
        b.iter(|| black_box(vpart_core::reduce::Reduction::compute(&ins)))
    });
}

/// One annealing move evaluated incrementally vs by full re-evaluation —
/// the speedup that makes the SA inner loop cheap (see
/// `bench_smoke`'s `annealing_throughput` for the aggregate number).
fn bench_incremental(c: &mut Criterion) {
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    let coeffs = CostCoefficients::compute(&ins, &cfg);
    let n_sites = 3usize;
    let part = Partitioning::single_site(&ins, n_sites).unwrap();
    let mut g = c.benchmark_group("anneal");
    let mut inc = IncrementalCost::new(&ins, &coeffs, &cfg, part.clone());
    let mut i = 0usize;
    g.bench_function("incremental-move/tpcc-3-sites", |b| {
        b.iter(|| {
            let mark = inc.mark();
            let t = i % ins.n_txns();
            inc.apply_txn_move(TxnId::from_index(t), SiteId::from_index(i % n_sites));
            let cost = black_box(inc.objective6());
            inc.revert(mark);
            i += 1;
            cost
        })
    });
    let mut j = 0usize;
    g.bench_function("full-eval-move/tpcc-3-sites", |b| {
        b.iter(|| {
            let mut cand = part.clone();
            cand.move_txn(
                TxnId::from_index(j % ins.n_txns()),
                SiteId::from_index(j % n_sites),
            );
            cand.repair_single_sitedness(&ins);
            j += 1;
            black_box(fast_objective6(&ins, &coeffs, &cand, &cfg))
        })
    });
    g.finish();
}

fn bench_solvers(c: &mut Criterion) {
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    let mut g = c.benchmark_group("solvers");
    g.sample_size(10);
    g.bench_function("qp/tpcc-2-sites", |b| {
        b.iter(|| {
            let r = QpSolver::new(QpConfig::with_time_limit(120.0))
                .solve(&ins, 2, &cfg)
                .unwrap();
            black_box(r.breakdown.objective4)
        })
    });
    g.bench_function("sa/tpcc-2-sites", |b| {
        b.iter(|| {
            let r = SaSolver::new(SaConfig::fast_deterministic(1))
                .solve(&ins, 2, &cfg)
                .unwrap();
            black_box(r.breakdown.objective4)
        })
    });
    let rnd = vpart_instances::by_name("rndAt16x15").unwrap();
    g.bench_function("sa/rndAt16x15-4-sites", |b| {
        b.iter(|| {
            let r = SaSolver::new(SaConfig::fast_deterministic(1))
                .solve(&rnd, 4, &cfg)
                .unwrap();
            black_box(r.breakdown.objective4)
        })
    });
    g.finish();
}

// Row/column constraints index `vars[i][j]` and `vars[j][i]` symmetrically.
#[allow(clippy::needless_range_loop)]
fn bench_ilp_substrate(c: &mut Criterion) {
    // A 12×12 assignment problem: pure LP + branch & bound exercise.
    let n = 12usize;
    let build = || {
        let mut m = Model::minimize();
        let mut vars = vec![vec![]; n];
        for (i, row) in vars.iter_mut().enumerate() {
            for j in 0..n {
                let cost = ((i * 7 + j * 13) % 17) as f64 + 1.0;
                row.push(m.binary(format!("x{i}_{j}"), cost));
            }
        }
        for i in 0..n {
            let r: Vec<_> = (0..n).map(|j| (vars[i][j], 1.0)).collect();
            m.add_constraint(format!("r{i}"), r, Cmp::Eq, 1.0);
            let col: Vec<_> = (0..n).map(|j| (vars[j][i], 1.0)).collect();
            m.add_constraint(format!("c{i}"), col, Cmp::Eq, 1.0);
        }
        m
    };
    let mut g = c.benchmark_group("ilp");
    g.sample_size(10);
    g.bench_function("assignment-12x12", |b| {
        b.iter_batched(
            build,
            |m| black_box(m.solve(&SolveParams::default()).unwrap().objective),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    let r = SaSolver::new(SaConfig::fast_deterministic(2))
        .solve(&ins, 3, &cfg)
        .unwrap();
    let trace = Trace::uniform(&ins, 20);
    c.bench_function("engine/tpcc-3-sites-100-executions", |b| {
        b.iter_batched(
            || Deployment::new(&ins, &r.partitioning, 64).unwrap(),
            |mut dep| black_box(dep.execute(&trace).unwrap().checksum),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cost_model,
    bench_incremental,
    bench_solvers,
    bench_ilp_substrate,
    bench_engine
);
criterion_main!(benches);
