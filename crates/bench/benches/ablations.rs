//! Criterion ablations: how much each QP model refinement buys on TPC-C.
//!
//! Compares solve time with/without the reasonable-cuts reduction,
//! linearization pruning and symmetry breaking (all solve to the same
//! optimum — the correctness of that equivalence is asserted in tests;
//! here we measure effort).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::CostConfig;

fn qp_variants(c: &mut Criterion) {
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    let mut g = c.benchmark_group("qp-ablation/tpcc-2-sites");
    g.sample_size(10);
    type Tweak = fn(&mut QpConfig);
    let variants: [(&str, Tweak); 4] = [
        ("baseline", |_| {}),
        ("no-cuts", |c| c.reasonable_cuts = false),
        ("no-prune", |c| c.options.prune_linearization = false),
        ("no-symmetry", |c| c.options.symmetry_breaking = false),
    ];
    for (name, tweak) in variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut qc = QpConfig::with_time_limit(300.0);
                tweak(&mut qc);
                let r = QpSolver::new(qc).solve(&ins, 2, &cfg).unwrap();
                black_box(r.breakdown.objective4)
            })
        });
    }
    g.finish();
}

fn model_build_only(c: &mut Criterion) {
    use vpart_core::qp::builder::{build_qp_model, QpOptions};
    use vpart_core::CostCoefficients;
    let ins = vpart_instances::tpcc();
    let cfg = CostConfig::default();
    let coeffs = CostCoefficients::compute(&ins, &cfg);
    c.bench_function("qp-build/tpcc-3-sites-unreduced", |b| {
        b.iter(|| {
            let art = build_qp_model(&ins, &coeffs, 3, &cfg, &QpOptions::default());
            black_box(art.model.n_cons())
        })
    });
}

criterion_group!(benches, qp_variants, model_build_only);
criterion_main!(benches);
