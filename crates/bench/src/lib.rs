//! Shared harness for the paper-table reproduction binaries.
//!
//! Each binary regenerates one table of the paper's §5 evaluation:
//!
//! | binary   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table 1 — parameter influence on SA cost |
//! | `table2` | Table 2 — random instance class definitions |
//! | `table3` | Table 3 — QP vs SA cost/time comparison |
//! | `table4` | Table 4 — actual TPC-C partitioning for 3 sites |
//! | `table5` | Table 5 — replication vs disjoint partitioning |
//! | `table6` | Table 6 — local vs remote partition placement |
//! | `ablations` | design-choice ablations (reduction, pruning, …) |
//!
//! All binaries accept `--full` for paper-scale time limits (30 min QP
//! budget) and default to a *quick* mode that finishes in minutes while
//! preserving every qualitative relationship. Costs print in the paper's
//! units (`×10⁵`/`×10⁶` as per table).

use std::time::Duration;
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::report::Termination;
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{evaluate, CostConfig};
use vpart_model::{Instance, Partitioning};

/// Quick-vs-full switch parsed from argv.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Minutes-scale run (default).
    Quick,
    /// Paper-scale limits (`--full`).
    Full,
}

impl Mode {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// QP wall-clock budget per solve.
    pub fn qp_time_limit(self) -> Duration {
        match self {
            Mode::Quick => Duration::from_secs(60),
            Mode::Full => Duration::from_secs(30 * 60), // paper: 30 minutes
        }
    }

    /// SA wall-clock budget per solve.
    pub fn sa_time_limit(self) -> Duration {
        match self {
            Mode::Quick => Duration::from_secs(20),
            Mode::Full => Duration::from_secs(300),
        }
    }

    /// SA configuration used throughout the tables (fixed seed: the
    /// paper's heuristic numbers are also single runs).
    pub fn sa_config(self) -> SaConfig {
        let mut cfg = match self {
            Mode::Quick => SaConfig {
                inner_loops: 40,
                freeze_levels: 6,
                ..SaConfig::default()
            },
            Mode::Full => SaConfig::default(),
        };
        cfg.seed = 0x5EED;
        cfg.time_limit = self.sa_time_limit();
        cfg
    }

    /// QP configuration used throughout the tables.
    pub fn qp_config(self) -> QpConfig {
        QpConfig {
            time_limit: self.qp_time_limit(),
            ..QpConfig::default()
        }
    }
}

/// Result cell for cost/time tables, following the paper's conventions:
/// plain cost when solved, `(cost)` when a limit stopped the proof, `t/o`
/// when no solution was found.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Objective (4) of the returned partitioning, if any.
    pub cost: Option<f64>,
    /// Whether optimality was proven.
    pub optimal: bool,
    /// Solve wall time in seconds.
    pub secs: f64,
}

impl Cell {
    /// Formats the cost in units of `10^exp` per the paper's tables.
    pub fn fmt_cost(&self, exp: i32) -> String {
        match self.cost {
            None => "t/o".to_owned(),
            Some(c) => {
                let v = c / 10f64.powi(exp);
                if self.optimal {
                    format!("{v:.3}")
                } else {
                    format!("({v:.3})")
                }
            }
        }
    }

    /// Formats the solve time in whole seconds.
    pub fn fmt_time(&self) -> String {
        format!("{:.0}", self.secs.max(0.0))
    }
}

/// Runs the QP solver, mapping errors to the paper's `t/o` convention.
pub fn run_qp(instance: &Instance, sites: usize, cost: &CostConfig, config: QpConfig) -> Cell {
    let start = std::time::Instant::now();
    match QpSolver::new(config).solve(instance, sites, cost) {
        Ok(r) => Cell {
            cost: Some(r.breakdown.objective4),
            optimal: r.termination == Termination::Optimal,
            secs: r.elapsed.as_secs_f64(),
        },
        Err(_) => Cell {
            cost: None,
            optimal: false,
            secs: start.elapsed().as_secs_f64(),
        },
    }
}

/// Runs the SA solver. Heuristic costs print unparenthesized (the paper
/// reserves parentheses for exact solves stopped by a limit), so the cell
/// is marked `optimal` for formatting despite carrying no proof.
pub fn run_sa(instance: &Instance, sites: usize, cost: &CostConfig, config: SaConfig) -> Cell {
    let start = std::time::Instant::now();
    match SaSolver::new(config).solve(instance, sites, cost) {
        Ok(r) => Cell {
            cost: Some(r.breakdown.objective4),
            optimal: true,
            secs: r.elapsed.as_secs_f64(),
        },
        Err(_) => Cell {
            cost: None,
            optimal: false,
            secs: start.elapsed().as_secs_f64(),
        },
    }
}

/// Single-site baseline cost (the `|S| = 1` column).
pub fn single_site_cost(instance: &Instance, cost: &CostConfig) -> f64 {
    let p = Partitioning::single_site(instance, 1).expect("one site is valid");
    evaluate(instance, &p, cost).objective4
}

/// Renders one aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_formatting_follows_paper_conventions() {
        let solved = Cell {
            cost: Some(133_000.0),
            optimal: true,
            secs: 1.2,
        };
        assert_eq!(solved.fmt_cost(6), "0.133");
        let limited = Cell {
            cost: Some(332_000.0),
            optimal: false,
            secs: 1800.0,
        };
        assert_eq!(limited.fmt_cost(6), "(0.332)");
        let timeout = Cell {
            cost: None,
            optimal: false,
            secs: 1800.0,
        };
        assert_eq!(timeout.fmt_cost(6), "t/o");
        assert_eq!(limited.fmt_time(), "1800");
    }

    #[test]
    fn mode_budgets() {
        assert_eq!(Mode::Quick.qp_time_limit(), Duration::from_secs(60));
        assert_eq!(Mode::Full.qp_time_limit(), Duration::from_secs(1800));
        assert!(Mode::Quick.sa_config().inner_loops <= SaConfig::default().inner_loops);
    }

    #[test]
    fn row_alignment() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn harness_runs_tiny_solves() {
        let ins = vpart_instances::by_name("rndBt4x15").unwrap();
        let cost = CostConfig::default();
        let sa = run_sa(&ins, 2, &cost, SaConfig::fast_deterministic(1));
        assert!(sa.cost.is_some());
        assert!(single_site_cost(&ins, &cost) > 0.0);
    }
}
