//! Table 4 — the actual TPC-C partitioning produced by the QP solver for
//! three sites, in the paper's per-site listing format (transactions, then
//! qualified attribute names).
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table4 [-- --full]
//! ```

use vpart_bench::Mode;
use vpart_core::qp::QpSolver;
use vpart_core::CostConfig;
use vpart_model::report::render_partitioning;

fn main() {
    let mode = Mode::from_args();
    let instance = vpart_instances::tpcc();
    let cost = CostConfig::default();
    let report = QpSolver::new(mode.qp_config())
        .solve(&instance, 3, &cost)
        .expect("TPC-C/3 sites solves within any reasonable budget");
    println!(
        "Table 4 — TPC-C partitioning, QP solver, 3 sites (cost {:.0}, optimal: {})\n",
        report.cost(),
        report.is_optimal()
    );
    println!("{}", render_partitioning(&instance, &report.partitioning));
    println!(
        "{} attribute placements, {} replicated attributes",
        report.partitioning.total_placements(),
        (0..instance.n_attrs())
            .filter(|&a| report
                .partitioning
                .replication(vpart_model::AttrId::from_index(a))
                > 1)
            .count()
    );
}
