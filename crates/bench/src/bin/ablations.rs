//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. reasonable-cuts reduction on/off (QP model size & time),
//! 2. linearization-constraint pruning on/off,
//! 3. site-symmetry breaking on/off,
//! 4. write-accounting strategy (evaluation of one fixed layout),
//! 5. SA subproblem mode: greedy closed form vs ILP-backed.
//!
//! All variants must agree on the optimal cost where they prove
//! optimality — the ablation varies *effort*, not *answers*.
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin ablations [-- --full]
//! ```

use std::time::Duration;
use vpart_bench::{row, run_qp, Mode};
use vpart_core::qp::QpConfig;
use vpart_core::sa::{SaConfig, SaSolver, SubproblemMode};
use vpart_core::{evaluate, CostConfig, WriteAccounting};

fn main() {
    let mode = Mode::from_args();
    let instance = vpart_instances::tpcc();
    let cost = CostConfig::default();

    println!("Ablation 1-3 — QP structural options on TPC-C, |S| = 3\n");
    let widths = [34usize, 12, 9, 9];
    println!(
        "{}",
        row(
            &[
                "variant".into(),
                "cost".into(),
                "time s".into(),
                "optimal".into()
            ],
            &widths
        )
    );
    type Tweak = Box<dyn Fn(&mut QpConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("baseline (cuts+prune+symmetry)", Box::new(|_| {})),
        (
            "no reasonable-cuts reduction",
            Box::new(|c| c.reasonable_cuts = false),
        ),
        (
            "no linearization pruning",
            Box::new(|c| c.options.prune_linearization = false),
        ),
        (
            "no symmetry breaking",
            Box::new(|c| c.options.symmetry_breaking = false),
        ),
        (
            "nothing (raw model (7))",
            Box::new(|c| {
                c.reasonable_cuts = false;
                c.options.prune_linearization = false;
                c.options.symmetry_breaking = false;
            }),
        ),
    ];
    for (label, tweak) in variants {
        let mut cfg = mode.qp_config();
        tweak(&mut cfg);
        let cell = run_qp(&instance, 3, &cost, cfg);
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    cell.fmt_cost(0),
                    format!("{:.2}", cell.secs),
                    if cell.optimal {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ],
                &widths
            )
        );
    }

    println!("\nAblation 4 — write-accounting strategies (fixed 2-site SA layout)\n");
    let layout = SaSolver::new(SaConfig::fast_deterministic(3))
        .solve(&instance, 2, &cost)
        .expect("sa solves tpcc")
        .partitioning;
    println!(
        "{}",
        row(
            &["strategy".into(), "A_W".into(), "obj (4)".into()],
            &[22, 12, 12]
        )
    );
    for wa in [
        WriteAccounting::AllAttributes,
        WriteAccounting::RelevantAttributes,
        WriteAccounting::NoAttributes,
    ] {
        let b = evaluate(&instance, &layout, &cost.clone().with_write_accounting(wa));
        println!(
            "{}",
            row(
                &[
                    format!("{wa:?}"),
                    format!("{:.0}", b.write),
                    format!("{:.0}", b.objective4)
                ],
                &[22, 12, 12]
            )
        );
    }
    println!("(AllAttributes ≥ RelevantAttributes ≥ NoAttributes, §2.1)");

    println!("\nAblation 5 — SA subproblem solver on rndAt8x15, |S| = 2\n");
    let rnd = vpart_instances::by_name("rndAt8x15").unwrap();
    println!(
        "{}",
        row(
            &["mode".into(), "cost".into(), "time s".into()],
            &[22, 12, 9]
        )
    );
    for (label, sub) in [
        ("greedy closed form", SubproblemMode::Greedy),
        (
            "ILP-backed (30s cap)",
            SubproblemMode::IlpBacked {
                time_limit: Duration::from_secs(30),
            },
        ),
    ] {
        let mut sa_cfg = mode.sa_config();
        sa_cfg.subproblem = sub;
        if matches!(sub, SubproblemMode::IlpBacked { .. }) {
            // The exact subproblem is ~100× slower per iteration; shrink the
            // schedule so the ablation finishes (paper used 30 s/iteration).
            sa_cfg.inner_loops = sa_cfg.inner_loops.min(10);
            sa_cfg.freeze_levels = 3;
        }
        let start = std::time::Instant::now();
        let r = SaSolver::new(sa_cfg)
            .solve(&rnd, 2, &cost)
            .expect("sa solves");
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    format!("{:.0}", r.cost()),
                    format!("{:.2}", start.elapsed().as_secs_f64()),
                ],
                &[22, 12, 9]
            )
        );
    }
}
