//! Table 6 — local (`p = 0`) vs remote (`p > 0`) partition placement,
//! with attribute replication allowed, QP and SA side by side.
//!
//! Costs in 10⁵. Only updates cause inter-site transfer, so the update-
//! heavy `…u50` instances benefit most from local placement.
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table6 [-- --full]
//! ```

use vpart_bench::{row, run_qp, run_sa, Mode};
use vpart_core::CostConfig;
use vpart_instances::by_name;

fn main() {
    let mode = Mode::from_args();
    let rows: Vec<(&str, usize)> = vec![
        ("tpcc", 1),
        ("tpcc", 2),
        ("tpcc", 3),
        ("rndAt4x15", 2),
        ("rndAt8x15", 2),
        ("rndAt8x15u50", 2),
        ("rndBt8x15", 2),
        ("rndBt16x15", 2),
        ("rndBt16x15u50", 2),
    ];

    let widths = [14usize, 6, 5, 4, 11, 11, 11, 11];
    println!("Table 6 — local (p=0) vs remote (p=8) placement, replication allowed");
    println!("costs ×10^5, λ = 0.9 (see DESIGN.md)\n");
    println!(
        "{}",
        row(
            &[
                "instance".into(),
                "|A|".into(),
                "|T|".into(),
                "|S|".into(),
                "loc QP".into(),
                "loc SA".into(),
                "rem QP".into(),
                "rem SA".into(),
            ],
            &widths
        )
    );

    for (name, sites) in rows {
        let instance = by_name(name).expect("catalog instance");
        let mut cells = vec![
            name.to_string(),
            instance.n_attrs().to_string(),
            instance.n_txns().to_string(),
            sites.to_string(),
        ];
        for p in [0.0, 8.0] {
            let cost = CostConfig::default().with_p(p);
            let qp = run_qp(&instance, sites, &cost, mode.qp_config());
            let sa = run_sa(&instance, sites, &cost, mode.sa_config());
            cells.push(qp.fmt_cost(5));
            cells.push(sa.fmt_cost(5));
        }
        println!("{}", row(&cells, &widths));
    }
    println!("\nreading: write-rarely instances barely notice remote placement;");
    println!("the 50%-update variants pay visibly more remotely — only updates");
    println!("cause inter-site transfer (the paper's Table 6 conclusion).");
}
