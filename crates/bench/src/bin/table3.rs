//! Table 3 — QP vs SA with replication and remote placement.
//!
//! TPC-C at `|S| ∈ {2,3,4}` and the random classes at `|S| = 4`. Costs in
//! 10⁶; `(cost)` = best found at the limit, `t/o` = no solution in time.
//! The `|S|=1` column is the single-site baseline.
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table3 [-- --full] [-- --large]
//! ```
//!
//! The 100-transaction instances take minutes each even in quick mode;
//! they are included only with `--large` (or `--full`).

use vpart_bench::{row, run_qp, run_sa, single_site_cost, Mode};
use vpart_core::CostConfig;
use vpart_instances::by_name;

fn main() {
    let mode = Mode::from_args();
    let large = mode == Mode::Full || std::env::args().any(|a| a == "--large");
    let cost = CostConfig::default();

    let mut rows: Vec<(&str, usize)> = vec![("tpcc", 2), ("tpcc", 3), ("tpcc", 4)];
    let small = [
        "rndAt4x15",
        "rndAt8x15",
        "rndAt16x15",
        "rndAt32x15",
        "rndAt64x15",
        "rndBt4x15",
        "rndBt8x15",
        "rndBt16x15",
        "rndBt32x15",
        "rndBt64x15",
    ];
    for name in small {
        rows.push((name, 4));
    }
    if large {
        for name in [
            "rndAt4x100",
            "rndAt8x100",
            "rndAt16x100",
            "rndBt4x100",
            "rndBt8x100",
            "rndBt16x100",
        ] {
            rows.push((name, 4));
        }
    }

    let widths = [14usize, 6, 5, 4, 10, 8, 10, 8, 8];
    println!("Table 3 — QP vs SA (replication allowed, remote placement, p=8, λ=0.9)");
    println!("costs ×10^6; (cost) = limit reached; t/o = no integer solution\n");
    println!(
        "{}",
        row(
            &[
                "instance".into(),
                "|A|".into(),
                "|T|".into(),
                "|S|".into(),
                "QP cost".into(),
                "QP s".into(),
                "SA cost".into(),
                "SA s".into(),
                "|S|=1".into(),
            ],
            &widths
        )
    );

    for (name, sites) in rows {
        let instance = by_name(name).expect("catalog instance");
        let qp = run_qp(&instance, sites, &cost, mode.qp_config());
        let sa = run_sa(&instance, sites, &cost, mode.sa_config());
        let base = single_site_cost(&instance, &cost);
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    instance.n_attrs().to_string(),
                    instance.n_txns().to_string(),
                    sites.to_string(),
                    qp.fmt_cost(6),
                    qp.fmt_time(),
                    sa.fmt_cost(6),
                    sa.fmt_time(),
                    format!("{:.3}", base / 1e6),
                ],
                &widths
            )
        );
    }
    println!("\nreading: QP matches or beats SA where it finishes; SA stays close");
    println!("and scales to the instances where the QP hits its limit — the");
    println!("paper's qualitative result. TPC-C reduction vs |S|=1 ≈ 28–29%");
    println!("(paper: 37% with its unpublished statistics).");
}
