//! Table 2 — the random instance classes used by Tables 3, 5 and 6.
//!
//! Prints each class's A–F parameters plus the dimensions of the concrete
//! seeded instance this reproduction generates (the paper's own draws are
//! unpublished, so |A| differs slightly from its listing).
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table2
//! ```

use vpart_bench::row;
use vpart_instances::by_name;

fn main() {
    println!("Table 2 — random instance classes (A=max queries/txn, B=%updates,");
    println!("C=max attrs/table, D=max table refs/query, E=max attr refs/query)\n");
    let widths = [14usize, 3, 3, 3, 3, 3, 12, 5, 7, 5];
    println!(
        "{}",
        row(
            &[
                "name".into(),
                "A".into(),
                "B".into(),
                "C".into(),
                "D".into(),
                "E".into(),
                "F".into(),
                "|T|".into(),
                "tables".into(),
                "|A|".into(),
            ],
            &widths
        )
    );
    for name in vpart_instances::names() {
        if name == "tpcc" {
            continue;
        }
        let instance = by_name(name).expect("catalog name");
        let class_a = name.starts_with("rndA");
        let update_pct = if name.ends_with("u50") { 50 } else { 10 };
        let (c, d, e) = if class_a { (30, 3, 8) } else { (5, 6, 28) };
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    "3".into(),
                    update_pct.to_string(),
                    c.to_string(),
                    d.to_string(),
                    e.to_string(),
                    "{2,4,8,16}".into(),
                    instance.n_txns().to_string(),
                    instance.n_tables().to_string(),
                    instance.n_attrs().to_string(),
                ],
                &widths
            )
        );
    }
    println!("\nrndA…: many attributes per table, few references per query");
    println!("        → large expected cost reduction.");
    println!("rndB…: narrow tables, many references per query");
    println!("        → small expected cost reduction.");
}
