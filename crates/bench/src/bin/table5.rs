//! Table 5 — replicated vs disjoint partitioning (QP solver).
//!
//! TPC-C at `|S| = 1..4` plus small random instances at 2 sites. Costs in
//! 10⁵; the `ratio` column is replicated/disjoint (< 100% = replication
//! pays, the paper's headline for this table being TPC-C's 64%).
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table5 [-- --full]
//! ```

use vpart_bench::{row, run_qp, Mode};
use vpart_core::CostConfig;
use vpart_instances::by_name;

fn main() {
    let mode = Mode::from_args();
    let cost = CostConfig::default();
    let rows: Vec<(&str, usize)> = vec![
        ("tpcc", 1),
        ("tpcc", 2),
        ("tpcc", 3),
        ("tpcc", 4),
        ("rndAt4x15", 2),
        ("rndAt8x15", 2),
        ("rndBt8x15", 2),
        ("rndBt16x15", 2),
    ];

    let widths = [12usize, 6, 5, 4, 12, 7, 12, 7, 7];
    println!("Table 5 — replicated vs disjoint partitioning (QP, p=8, λ=0.9)");
    println!("costs ×10^5\n");
    println!(
        "{}",
        row(
            &[
                "instance".into(),
                "|A|".into(),
                "|T|".into(),
                "|S|".into(),
                "w/ repl".into(),
                "s".into(),
                "w/o repl".into(),
                "s".into(),
                "ratio".into(),
            ],
            &widths
        )
    );

    for (name, sites) in rows {
        let instance = by_name(name).expect("catalog instance");
        let replicated = run_qp(&instance, sites, &cost, mode.qp_config());
        let mut disjoint_cfg = mode.qp_config();
        disjoint_cfg.options.allow_replication = false;
        let disjoint = run_qp(&instance, sites, &cost, disjoint_cfg);
        let ratio = match (replicated.cost, disjoint.cost) {
            (Some(r), Some(d)) if d > 0.0 => format!("{:.0}%", 100.0 * r / d),
            _ => "-".into(),
        };
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    instance.n_attrs().to_string(),
                    instance.n_txns().to_string(),
                    sites.to_string(),
                    replicated.fmt_cost(5),
                    replicated.fmt_time(),
                    disjoint.fmt_cost(5),
                    disjoint.fmt_time(),
                    ratio,
                ],
                &widths
            )
        );
    }
    println!("\nreading: replication never hurts and often helps; TPC-C gains");
    println!("little beyond two sites — both as in the paper's Table 5.");
}
