//! CI benchmark smoke run: solves the TPC-C and web-shop instances,
//! records wall time + objective, and writes a `BENCH_<sha>.json`
//! artifact so the performance trajectory is tracked on every push.
//!
//! ```text
//! cargo run --release -p vpart_bench --bin bench_smoke -- \
//!     [--out <dir>] [--criterion <results.jsonl>]
//! ```
//!
//! The sha comes from `GITHUB_SHA` (trimmed to 12 hex digits), falling
//! back to `local`. `--criterion` folds a `CRITERION_JSON` line file
//! (see `vendor/criterion`) from a preceding `cargo bench` run into the
//! artifact, so micro- and macro-benchmarks land in one place.

use std::time::Instant;
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::CostConfig;
use vpart_model::Instance;

/// One solver measurement for the artifact.
fn measure(
    name: &str,
    instance: &Instance,
    sites: usize,
    solve: impl FnOnce(&Instance, usize) -> vpart_core::SolveReport,
) -> serde_json::Value {
    let start = Instant::now();
    let report = solve(instance, sites);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{name:<28} objective4 {:>14.1}   wall {wall:>8.3}s",
        report.breakdown.objective4
    );
    serde_json::json!({
        "name": name,
        "instance": instance.name(),
        "sites": sites,
        "objective4": report.breakdown.objective4,
        "max_site_work": report.breakdown.max_work,
        "optimal": report.is_optimal(),
        "wall_secs": wall,
    })
}

/// The web-shop instance, ingested from the checked-in example workload.
fn web_shop() -> Instance {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let schema = std::fs::read_to_string(format!("{dir}/schema.sql"))
        .expect("examples/data/schema.sql is checked in");
    let log = std::fs::read_to_string(format!("{dir}/queries.log"))
        .expect("examples/data/queries.log is checked in");
    vpart_ingest::ingest(
        &schema,
        &log,
        &vpart_ingest::IngestOptions::default().with_name("web-shop"),
    )
    .expect("the checked-in workload ingests cleanly")
    .instance
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = flag("--out").unwrap_or_else(|| ".".to_string());
    let sha = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .map(|s| s.chars().take(12).collect::<String>())
        .unwrap_or_else(|| "local".to_string());

    let cost = CostConfig::default();
    let cost = &cost;
    let tpcc = vpart_instances::tpcc();
    let shop = web_shop();

    let sa = |seed: u64| {
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(seed))
                .solve(ins, sites, cost)
                .expect("SA solves")
        }
    };
    let qp = |limit: f64| {
        move |ins: &Instance, sites: usize| {
            QpSolver::new(QpConfig::with_time_limit(limit))
                .solve(ins, sites, cost)
                .expect("QP solves")
        }
    };

    let benches = vec![
        measure("sa/tpcc-2-sites", &tpcc, 2, sa(1)),
        measure("sa/tpcc-3-sites", &tpcc, 3, sa(1)),
        measure("qp/tpcc-2-sites", &tpcc, 2, qp(60.0)),
        measure("sa/web-shop-2-sites", &shop, 2, sa(7)),
        measure("qp/web-shop-2-sites", &shop, 2, qp(60.0)),
    ];

    let criterion: Vec<serde_json::Value> = flag("--criterion")
        .and_then(|path| std::fs::read_to_string(path).ok())
        .map(|text| {
            text.lines()
                .filter_map(|l| serde_json::from_str(l.trim()).ok())
                .collect()
        })
        .unwrap_or_default();

    let artifact = serde_json::json!({
        "sha": sha,
        "benches": benches,
        "criterion": criterion,
    });
    let path = format!("{out_dir}/BENCH_{sha}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}
