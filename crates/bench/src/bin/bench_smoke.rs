//! CI benchmark smoke run: solves the TPC-C and web-shop instances,
//! measures annealing-move throughput (incremental vs full
//! re-evaluation), records wall time + objective, and writes a
//! `BENCH_<sha>.json` artifact so the performance trajectory is tracked
//! on every push.
//!
//! ```text
//! cargo run --release -p vpart_bench --bin bench_smoke -- \
//!     [--out <dir>] [--criterion <results.jsonl>] [--check <baseline.json>]
//! ```
//!
//! The sha comes from `GITHUB_SHA` (trimmed to 12 hex digits), falling
//! back to `local`. `--criterion` folds a `CRITERION_JSON` line file
//! (see `vendor/criterion`) from a preceding `cargo bench` run into the
//! artifact, so micro- and macro-benchmarks land in one place.
//!
//! `--check <baseline.json>` compares the fresh run against a previous
//! artifact (matched by bench name) and exits non-zero when any solve
//! wall time regresses by more than 25% or any objective worsens — the
//! CI regression gate.

use std::process::ExitCode;
use std::time::Instant;
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{fast_objective6, CostCoefficients, CostConfig, IncrementalCost};
use vpart_model::{Instance, Partitioning, SiteId, TxnId};
use vpart_obs::Obs;

/// Wall-time regression tolerance for `--check` (fraction of baseline).
const WALL_TOLERANCE: f64 = 0.25;
/// `--check` ceiling on the annealing slowdown an enabled observability
/// handle may cost over the disabled default (fraction of disabled wall).
const OBS_OVERHEAD_TOLERANCE: f64 = 0.05;
/// Absolute slack for the obs-overhead gate. Interleaved min-of-6 walls
/// still swing several percent between invocations on a contended
/// runner, so the gate is a tripwire for instrumentation mistakes (a
/// per-move obs call costs integer factors, not percent), while the
/// artifact trail tracks the single-digit drift.
const OBS_OVERHEAD_SLACK_SECS: f64 = 0.025;
/// `--check` floor on the SA acceptance ratio relative to the baseline
/// artifact's: solves are seeded, so a drop beyond this is a real change
/// in move-acceptance behaviour (a collapsing chain), not noise.
const ACCEPTANCE_COLLAPSE_DROP: f64 = 0.10;
/// Absolute wall-time slack: a regression must also exceed this many
/// seconds over the baseline. Sub-millisecond SA rows jitter far beyond
/// 25%, and even the ~0.2–0.7 s QP rows can swing that much between two
/// runs on a noisy shared runner; the gate targets regressions of real
/// solve workloads (seconds and up), so half a second of absolute slack
/// trades a little sensitivity on tiny rows for a flake-free main branch.
const WALL_SLACK_SECS: f64 = 0.5;
/// Relative objective tolerance for `--check` (rounding noise only —
/// solves are seeded, so objectives are reproducible).
const OBJECTIVE_TOLERANCE: f64 = 1e-9;

/// One solver measurement for the artifact.
fn measure(
    name: &str,
    instance: &Instance,
    sites: usize,
    solve: impl FnOnce(&Instance, usize) -> vpart_core::SolveReport,
) -> serde_json::Value {
    let start = Instant::now();
    let report = solve(instance, sites);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{name:<28} objective4 {:>14.1}   wall {wall:>8.3}s",
        report.breakdown.objective4
    );
    serde_json::json!({
        "name": name,
        "instance": instance.name(),
        "sites": sites,
        "objective4": report.breakdown.objective4,
        "objective6": report.breakdown.objective6,
        "max_site_work": report.breakdown.max_work,
        "optimal": report.is_optimal(),
        "wall_secs": wall,
        // SA chains stopped by their wall-clock limit (0 for exact
        // solvers); the multi-start dominance assertion below only holds
        // when every chain froze naturally.
        "timed_out_chains": report.restarts.iter().filter(|s| s.timed_out).count(),
    })
}

/// A checked-in example workload, ingested by log file name.
fn example_workload(log_file: &str, name: &str) -> Instance {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let schema = std::fs::read_to_string(format!("{dir}/schema.sql"))
        .expect("examples/data/schema.sql is checked in");
    let log =
        std::fs::read_to_string(format!("{dir}/{log_file}")).expect("example log is checked in");
    vpart_ingest::ingest(
        &schema,
        &log,
        &vpart_ingest::IngestOptions::default().with_name(name),
    )
    .expect("the checked-in workload ingests cleanly")
    .instance
}

/// The web-shop instance, ingested from the checked-in example workload.
fn web_shop() -> Instance {
    example_workload("queries.log", "web-shop")
}

/// A deterministic annealing-style move sequence: transaction moves and
/// replica extensions in a fixed pseudo-random pattern (no RNG, so both
/// throughput paths replay the exact same moves).
fn move_sequence(instance: &Instance, n_sites: usize, n_moves: usize) -> Vec<(usize, usize)> {
    let n_txns = instance.n_txns();
    (0..n_moves)
        .map(|i| {
            let t = (i.wrapping_mul(2654435761)) % n_txns;
            let s = (i.wrapping_mul(40503) >> 4) % n_sites;
            (t, s)
        })
        .collect()
}

/// Annealing-move throughput: the same accept-half/reject-half move
/// stream evaluated (a) through [`IncrementalCost`] deltas and (b) by
/// mutating a scratch [`Partitioning`] and re-running the full
/// coefficient walk [`fast_objective6`] — the paper port's previous inner
/// loop. Reports moves/sec for both and their ratio.
fn annealing_throughput(instance: &Instance, n_sites: usize) -> serde_json::Value {
    let cost = CostConfig::default();
    let coeffs = CostCoefficients::compute(instance, &cost);
    let start_part = Partitioning::single_site(instance, n_sites).expect("sites >= 1");

    // Incremental path: apply → evaluate → commit/revert alternately.
    let inc_moves = 200_000usize;
    let seq = move_sequence(instance, n_sites, inc_moves);
    let mut inc = IncrementalCost::new(instance, &coeffs, &cost, start_part.clone());
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for (i, &(t, s)) in seq.iter().enumerate() {
        let mark = inc.mark();
        inc.apply_txn_move(TxnId::from_index(t), SiteId::from_index(s));
        acc += inc.objective6();
        if i % 2 == 0 {
            inc.commit();
        } else {
            inc.revert(mark);
        }
    }
    let inc_secs = t0.elapsed().as_secs_f64();
    let inc_rate = inc_moves as f64 / inc_secs;

    // Full path: same move stream, objective recomputed from scratch
    // per move (sized down — it is the slow path being demonstrated).
    let full_moves = (inc_moves / 50).max(1);
    let seq = move_sequence(instance, n_sites, full_moves);
    let mut part = start_part;
    let t1 = Instant::now();
    for (i, &(t, s)) in seq.iter().enumerate() {
        let mut cand = part.clone();
        cand.move_txn(TxnId::from_index(t), SiteId::from_index(s));
        cand.repair_single_sitedness(instance);
        acc += fast_objective6(instance, &coeffs, &cand, &cost);
        if i % 2 == 0 {
            part = cand;
        }
    }
    let full_secs = t1.elapsed().as_secs_f64();
    let full_rate = full_moves as f64 / full_secs;
    let speedup = inc_rate / full_rate;
    // Keep the accumulator observable so the loops cannot be elided.
    assert!(acc.is_finite());

    println!(
        "anneal-throughput/{:<11} incremental {:>12.0} moves/s   full {:>10.0} moves/s   {speedup:>6.1}x",
        instance.name(),
        inc_rate,
        full_rate,
    );
    serde_json::json!({
        "name": format!("anneal-throughput/{}", instance.name()),
        "instance": instance.name(),
        "sites": n_sites,
        "incremental_moves": inc_moves,
        "incremental_moves_per_sec": inc_rate,
        "full_moves": full_moves,
        "full_moves_per_sec": full_rate,
        "speedup": speedup,
    })
}

/// Observability overhead: the same deterministic multi-chain SA solve
/// run with the inert [`Obs::disabled()`] handle (the default in every
/// solver config) and with a live registry + trace, interleaved best-of-3
/// each so runner drift hits both variants alike. Returns the artifact
/// entry and the final enabled run's metrics snapshot (folded into the
/// artifact so `--check` can compare acceptance ratios across pushes).
fn obs_overhead(instance: &Instance, sites: usize) -> (serde_json::Value, serde_json::Value) {
    let cost = CostConfig::default();
    let run = |obs: Obs| {
        // 128 single-threaded chains: enough wall time (~100ms) that the
        // min-of-3 below measures instrumentation, not scheduler jitter.
        let cfg = SaConfig {
            obs,
            ..SaConfig::fast_deterministic(1).multi_start(128, 1)
        };
        let t = Instant::now();
        let report = SaSolver::new(cfg)
            .solve(instance, sites, &cost)
            .expect("SA solves");
        let moves: usize = report.restarts.iter().map(|s| s.iterations).sum();
        (t.elapsed().as_secs_f64(), moves)
    };
    let _ = run(Obs::disabled()); // warm caches off the clock
    let mut disabled_wall = f64::INFINITY;
    let mut enabled_wall = f64::INFINITY;
    let mut moves = 0usize;
    let mut snapshot = serde_json::Value::Null;
    for _ in 0..6 {
        let (wall, m) = run(Obs::disabled());
        disabled_wall = disabled_wall.min(wall);
        moves = m;
        let obs = Obs::enabled();
        let (wall, _) = run(obs.clone());
        enabled_wall = enabled_wall.min(wall);
        snapshot = obs.metrics_json();
    }
    let overhead = enabled_wall / disabled_wall - 1.0;
    println!(
        "obs-overhead/{:<14} disabled {:>12.0} moves/s   enabled {:>10.0} moves/s   {:>+6.1}%",
        instance.name(),
        moves as f64 / disabled_wall,
        moves as f64 / enabled_wall,
        overhead * 100.0,
    );
    (
        serde_json::json!({
            "name": format!("obs-overhead/{}", instance.name()),
            "instance": instance.name(),
            "sites": sites,
            "moves": moves,
            "disabled_wall_secs": disabled_wall,
            "enabled_wall_secs": enabled_wall,
            "disabled_moves_per_sec": moves as f64 / disabled_wall,
            "enabled_moves_per_sec": moves as f64 / enabled_wall,
            "overhead_frac": overhead,
        }),
        snapshot,
    )
}

/// `--check` comparison of this run against a previous artifact. Returns
/// human-readable regression descriptions (empty = gate passes).
fn check_against_baseline(
    baseline: &serde_json::Value,
    artifact: &serde_json::Value,
) -> Vec<String> {
    let current = artifact
        .get("benches")
        .and_then(|b| b.as_array())
        .unwrap_or(&[]);
    let field_str = |v: &serde_json::Value, key: &str| -> Option<String> {
        v.get(key).and_then(|f| f.as_str()).map(str::to_owned)
    };
    let field_f64 =
        |v: &serde_json::Value, key: &str| -> Option<f64> { v.get(key).and_then(|f| f.as_f64()) };
    let mut failures = Vec::new();
    // A baseline without a benches array is an unusable file (truncated
    // download, wrong artifact) — certifying "no regressions" against it
    // would be vacuous, so it fails the gate instead.
    let Some(base_benches) = baseline.get("benches").and_then(|b| b.as_array()) else {
        return vec!["baseline has no \"benches\" array — not a BENCH_<sha>.json artifact".into()];
    };
    if base_benches.is_empty() {
        return vec!["baseline \"benches\" array is empty — nothing to compare against".into()];
    }
    for base in base_benches {
        let Some(name) = field_str(base, "name") else {
            continue;
        };
        let Some(now) = current
            .iter()
            .find(|b| field_str(b, "name").as_deref() == Some(&name))
        else {
            failures.push(format!("{name}: present in baseline but not in this run"));
            continue;
        };
        let (Some(base_wall), Some(now_wall)) =
            (field_f64(base, "wall_secs"), field_f64(now, "wall_secs"))
        else {
            continue;
        };
        if now_wall > base_wall * (1.0 + WALL_TOLERANCE) && now_wall > base_wall + WALL_SLACK_SECS {
            failures.push(format!(
                "{name}: wall time regressed {:.3}s -> {:.3}s (> {:.0}% over baseline)",
                base_wall,
                now_wall,
                WALL_TOLERANCE * 100.0
            ));
        }
        // Gate on objective (6) — what the solvers actually minimize —
        // when both artifacts carry it; objective (4) otherwise (older
        // baselines predate the field).
        let key =
            if field_f64(base, "objective6").is_some() && field_f64(now, "objective6").is_some() {
                "objective6"
            } else {
                "objective4"
            };
        if let (Some(base_obj), Some(now_obj)) = (field_f64(base, key), field_f64(now, key)) {
            if now_obj > base_obj + OBJECTIVE_TOLERANCE * (1.0 + base_obj.abs()) {
                failures.push(format!("{name}: {key} worsened {base_obj} -> {now_obj}"));
            }
        }
    }
    // Acceptance-rate collapse: both artifacts fold in the instrumented
    // run's metrics snapshot; the seeded SA acceptance ratio is
    // reproducible, so a sizeable drop means the chains stopped accepting
    // moves (a broken temperature schedule or delta evaluation), which
    // wall time and final objective alone can mask.
    let ratio = |v: &serde_json::Value| {
        v.get("metrics")
            .and_then(|m| m.get("gauges"))
            .and_then(|g| g.get("sa_acceptance_ratio"))
            .and_then(|r| r.as_f64())
    };
    if let (Some(base), Some(now)) = (ratio(baseline), ratio(artifact)) {
        if now < base - ACCEPTANCE_COLLAPSE_DROP {
            failures.push(format!(
                "sa_acceptance_ratio collapsed {base:.3} -> {now:.3} (> {ACCEPTANCE_COLLAPSE_DROP} drop)"
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = flag("--out").unwrap_or_else(|| ".".to_string());
    let sha = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .map(|s| s.chars().take(12).collect::<String>())
        .unwrap_or_else(|| "local".to_string());

    let cost = CostConfig::default();
    let cost = &cost;
    let tpcc = vpart_instances::tpcc();
    let shop = web_shop();

    let sa = |seed: u64| {
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(seed))
                .solve(ins, sites, cost)
                .expect("SA solves")
        }
    };
    // Multi-start at equal per-chain budget: chain 0 is exactly the
    // single-start run, so best-of-n can only match or beat it.
    let sa_multi = |seed: u64, restarts: usize, threads: usize| {
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(seed).multi_start(restarts, threads))
                .solve(ins, sites, cost)
                .expect("SA solves")
        }
    };
    let qp = |limit: f64| {
        move |ins: &Instance, sites: usize| {
            QpSolver::new(QpConfig::with_time_limit(limit))
                .solve(ins, sites, cost)
                .expect("QP solves")
        }
    };

    // Online repartitioning scenario: the web-shop incumbent (solved on
    // the steady phase) is repaired on the drifted phase by a warm
    // re-solve, measured against a cold multi-start of the same snapshot
    // (both single-threaded, so wall time reflects total solve work).
    let drift_cost = CostConfig::default().with_lambda(0.5);
    let drifted = example_workload("queries_drifted.log", "web-shop-drifted");
    let incumbent = SaSolver::new(SaConfig::fast_deterministic(7))
        .solve(&shop, 3, &drift_cost)
        .expect("SA solves the steady phase")
        .partitioning;
    let warm_resolve = {
        let drift_cost = &drift_cost;
        let incumbent = incumbent.clone();
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(7).warm_started(incumbent.clone()))
                .solve(ins, sites, drift_cost)
                .expect("warm re-solve succeeds")
        }
    };
    let cold_resolve = {
        let drift_cost = &drift_cost;
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(7).multi_start(4, 1))
                .solve(ins, sites, drift_cost)
                .expect("cold multi-start succeeds")
        }
    };

    let benches = vec![
        measure("sa/tpcc-2-sites", &tpcc, 2, sa(1)),
        measure("sa/tpcc-3-sites", &tpcc, 3, sa(1)),
        measure("sa-multistart4/tpcc-3-sites", &tpcc, 3, sa_multi(1, 4, 4)),
        measure("qp/tpcc-2-sites", &tpcc, 2, qp(60.0)),
        measure("sa/web-shop-2-sites", &shop, 2, sa(7)),
        measure(
            "sa-multistart4/web-shop-2-sites",
            &shop,
            2,
            sa_multi(7, 4, 4),
        ),
        measure("qp/web-shop-2-sites", &shop, 2, qp(60.0)),
        measure("drift-resolve/warm", &drifted, 3, warm_resolve),
        measure("drift-resolve/cold-multistart4", &drifted, 3, cold_resolve),
    ];

    // Multi-start must not lose to single-start at equal per-chain budget
    // (restart 0 reruns the single-start chain). The bench job gates the
    // guarantee — except when a chain was cut off by its wall clock
    // (pathologically loaded runner), where the exact-replay premise does
    // not hold. Violations are collected, not panicked on, so the
    // artifact documenting the failure is still written below.
    let mut dominance_failures: Vec<String> = Vec::new();
    for (single, multi) in [
        ("sa/tpcc-3-sites", "sa-multistart4/tpcc-3-sites"),
        ("sa/web-shop-2-sites", "sa-multistart4/web-shop-2-sites"),
    ] {
        let entry = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
                .expect("bench entry exists")
        };
        // Compare on objective (6) — the metric the multi-start merge
        // minimizes. Objective (4) can legitimately rise when a winning
        // chain trades it for lower max load.
        let obj = |e: &serde_json::Value| {
            e.get("objective6")
                .and_then(|v| v.as_f64())
                .expect("objective recorded")
        };
        let timed_out = |e: &serde_json::Value| {
            e.get("timed_out_chains")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                > 0
        };
        let (se, me) = (entry(single), entry(multi));
        let (s, m) = (obj(se), obj(me));
        if timed_out(se) || timed_out(me) {
            eprintln!(
                "warning: skipping {multi} vs {single} dominance check — a chain hit its \
                 wall-clock limit"
            );
        } else if m > s + 1e-9 * (1.0 + s.abs()) {
            dominance_failures.push(format!(
                "{multi} (objective6 {m}) must not be worse than {single} ({s})"
            ));
        }
    }

    // The online repartitioning claim: repairing drift from the incumbent
    // must cost measurably less wall time than a cold multi-start of the
    // same snapshot (a warm chain is strictly less work than 4 cold
    // chains run sequentially). Skipped if a chain was cut off by its
    // wall clock — a pathologically loaded runner breaks the premise.
    {
        let entry = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
                .expect("bench entry exists")
        };
        let (warm, cold) = (
            entry("drift-resolve/warm"),
            entry("drift-resolve/cold-multistart4"),
        );
        let wall = |e: &serde_json::Value| {
            e.get("wall_secs")
                .and_then(|v| v.as_f64())
                .expect("wall recorded")
        };
        let timed_out = |e: &serde_json::Value| {
            e.get("timed_out_chains")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                > 0
        };
        if timed_out(warm) || timed_out(cold) {
            eprintln!(
                "warning: skipping warm-vs-cold drift-resolve check — a chain hit its \
                 wall-clock limit"
            );
        } else if wall(warm) >= wall(cold) {
            dominance_failures.push(format!(
                "drift-resolve/warm ({:.4}s) must be faster than cold-multistart4 ({:.4}s)",
                wall(warm),
                wall(cold)
            ));
        } else {
            println!(
                "drift-resolve: warm {:.4}s vs cold multi-start {:.4}s ({:.1}x faster)",
                wall(warm),
                wall(cold),
                wall(cold) / wall(warm).max(1e-12)
            );
        }
    }

    let throughput = vec![
        annealing_throughput(&tpcc, 3),
        annealing_throughput(&shop, 2),
    ];
    let (obs_bench, metrics_snapshot) = obs_overhead(&tpcc, 3);

    let criterion: Vec<serde_json::Value> = flag("--criterion")
        .and_then(|path| std::fs::read_to_string(path).ok())
        .map(|text| {
            text.lines()
                .filter_map(|l| serde_json::from_str(l.trim()).ok())
                .collect()
        })
        .unwrap_or_default();

    let artifact = serde_json::json!({
        "sha": sha,
        "benches": benches,
        "annealing_throughput": throughput,
        "obs_overhead": obs_bench,
        "metrics": metrics_snapshot,
        "criterion": criterion,
    });
    let path = format!("{out_dir}/BENCH_{sha}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");

    // Fail only after the artifact is on disk — a maintainer debugging a
    // tripped gate needs those numbers.
    if !dominance_failures.is_empty() {
        eprintln!(
            "error: multi-start dominance violated ({}):",
            dominance_failures.len()
        );
        for f in &dominance_failures {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = flag("--check") {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: baseline {baseline_path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut failures = check_against_baseline(&baseline, &artifact);
        // The "<5% overhead" claim for observability: an enabled handle
        // (live registry + trace) must stay within tolerance of the
        // disabled default on the same seeded solve. Self-contained — no
        // baseline fields needed — but gated here so local artifact-only
        // runs never flake on runner noise.
        {
            let f = |key: &str| obs_bench.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let (off, on) = (f("disabled_wall_secs"), f("enabled_wall_secs"));
            if on > off * (1.0 + OBS_OVERHEAD_TOLERANCE) && on > off + OBS_OVERHEAD_SLACK_SECS {
                failures.push(format!(
                    "obs overhead: enabled {on:.4}s vs disabled {off:.4}s (> {:.0}% over)",
                    OBS_OVERHEAD_TOLERANCE * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "check: no regressions vs {baseline_path} (wall +{:.0}% tolerance)",
                WALL_TOLERANCE * 100.0
            );
        } else {
            eprintln!(
                "check: {} regression(s) vs {baseline_path}:",
                failures.len()
            );
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
