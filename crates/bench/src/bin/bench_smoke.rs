//! CI benchmark smoke run: solves the TPC-C and web-shop instances,
//! measures annealing-move throughput (incremental vs full
//! re-evaluation), replays both workloads through the columnar engine at
//! production rate (txns/sec and true-byte model error), records wall
//! time and objective, and writes a `BENCH_<sha>.json` artifact so the
//! performance trajectory is tracked on every push.
//!
//! ```text
//! cargo run --release -p vpart_bench --bin bench_smoke -- \
//!     [--out <dir>] [--criterion <results.jsonl>] [--check <baseline.json>]
//! ```
//!
//! The sha comes from `GITHUB_SHA` (trimmed to 12 hex digits), falling
//! back to `local`. `--criterion` folds a `CRITERION_JSON` line file
//! (see `vendor/criterion`) from a preceding `cargo bench` run into the
//! artifact, so micro- and macro-benchmarks land in one place.
//!
//! `--check <baseline.json>` compares the fresh run against a previous
//! artifact (matched by bench name) and exits non-zero when any solve
//! wall time regresses by more than 25%, any objective worsens, any
//! replay row's throughput drops by more than 25%, any replay row's
//! |model error| exceeds the pinned bound, any batched migration ships
//! slower than the pinned fraction of the baseline rate, or any
//! migration meter drifts from its plan estimate — the CI regression
//! gate.
//! Every failure line names the tripped row and metric with baseline vs
//! current values.

use std::process::ExitCode;
use std::time::{Duration, Instant};
use vpart_core::qp::{QpConfig, QpSolver};
use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{
    fast_objective6, predicted_txn_bytes, CostCoefficients, CostConfig, IncrementalCost,
};
use vpart_engine::{
    Deployment, FaultInjector, MigrationJournal, PredictedBytes, ReplayConfig, ReplayDeployment,
    ReplayStream,
};
use vpart_model::{Instance, MigrationPlan, Partitioning, SiteId, TxnId};
use vpart_obs::Obs;

/// Wall-time regression tolerance for `--check` (fraction of baseline).
const WALL_TOLERANCE: f64 = 0.25;
/// `--check` ceiling on the annealing slowdown an enabled observability
/// handle may cost over the disabled default (fraction of disabled wall).
const OBS_OVERHEAD_TOLERANCE: f64 = 0.05;
/// Absolute slack for the obs-overhead gate. Interleaved min-of-6 walls
/// still swing several percent between invocations on a contended
/// runner, so the gate is a tripwire for instrumentation mistakes (a
/// per-move obs call costs integer factors, not percent), while the
/// artifact trail tracks the single-digit drift.
const OBS_OVERHEAD_SLACK_SECS: f64 = 0.025;
/// `--check` floor on the SA acceptance ratio relative to the baseline
/// artifact's: solves are seeded, so a drop beyond this is a real change
/// in move-acceptance behaviour (a collapsing chain), not noise.
const ACCEPTANCE_COLLAPSE_DROP: f64 = 0.10;
/// Absolute wall-time slack: a regression must also exceed this many
/// seconds over the baseline. Sub-millisecond SA rows jitter far beyond
/// 25%, and even the ~0.2–0.7 s QP rows can swing that much between two
/// runs on a noisy shared runner; the gate targets regressions of real
/// solve workloads (seconds and up), so half a second of absolute slack
/// trades a little sensitivity on tiny rows for a flake-free main branch.
const WALL_SLACK_SECS: f64 = 0.5;
/// Relative objective tolerance for `--check` (rounding noise only —
/// solves are seeded, so objectives are reproducible).
const OBJECTIVE_TOLERANCE: f64 = 1e-9;
/// `--check` floor on replay throughput relative to the baseline
/// artifact's: a drop beyond this fraction fails the gate. Replay rows
/// run for [`REPLAY_MIN_DURATION`] so the rate is averaged over many
/// passes, which keeps this bound meaningful on a shared runner.
const THROUGHPUT_TOLERANCE: f64 = 0.25;
/// `--check` ceiling on the replay harness's |model error|. Both CI
/// workloads have integer attribute widths, row counts and frequencies,
/// so the true-byte meters agree with the fractional cost model exactly
/// (measured ratio 0.0); the bound leaves headroom only for future
/// fractional-width workloads, where quantization opens a real gap.
const MODEL_ERROR_BOUND: f64 = 0.15;
/// Replay benchmark rows keep re-running their pass until this much wall
/// time has elapsed, so the reported txns/sec averages over enough passes
/// to survive scheduler jitter.
const REPLAY_MIN_DURATION: Duration = Duration::from_millis(200);
/// `--check` floor on batched-migration shipping rate relative to the
/// baseline's. Migration walls are short (milliseconds), so this is a
/// deliberately loose tripwire for integer-factor regressions (an
/// accidental O(n²) rebuild per batch), not for percent-level drift —
/// current must stay above a quarter of the baseline rate.
const MIGRATION_RATE_TOLERANCE: f64 = 0.75;
/// Rows per fragment for the migration benchmark's deployments.
const MIGRATION_ROWS: usize = 64;

/// One solver measurement for the artifact.
fn measure(
    name: &str,
    instance: &Instance,
    sites: usize,
    solve: impl FnOnce(&Instance, usize) -> vpart_core::SolveReport,
) -> serde_json::Value {
    let start = Instant::now();
    let report = solve(instance, sites);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{name:<28} objective4 {:>14.1}   wall {wall:>8.3}s",
        report.breakdown.objective4
    );
    serde_json::json!({
        "name": name,
        "instance": instance.name(),
        "sites": sites,
        "objective4": report.breakdown.objective4,
        "objective6": report.breakdown.objective6,
        "max_site_work": report.breakdown.max_work,
        "optimal": report.is_optimal(),
        "wall_secs": wall,
        // SA chains stopped by their wall-clock limit (0 for exact
        // solvers); the multi-start dominance assertion below only holds
        // when every chain froze naturally.
        "timed_out_chains": report.restarts.iter().filter(|s| s.timed_out).count(),
    })
}

/// A checked-in example workload, ingested by log file name.
fn example_workload(log_file: &str, name: &str) -> Instance {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data");
    let schema = std::fs::read_to_string(format!("{dir}/schema.sql"))
        .expect("examples/data/schema.sql is checked in");
    let log =
        std::fs::read_to_string(format!("{dir}/{log_file}")).expect("example log is checked in");
    vpart_ingest::ingest(
        &schema,
        &log,
        &vpart_ingest::IngestOptions::default().with_name(name),
    )
    .expect("the checked-in workload ingests cleanly")
    .instance
}

/// The web-shop instance, ingested from the checked-in example workload.
fn web_shop() -> Instance {
    example_workload("queries.log", "web-shop")
}

/// A deterministic annealing-style move sequence: transaction moves and
/// replica extensions in a fixed pseudo-random pattern (no RNG, so both
/// throughput paths replay the exact same moves).
fn move_sequence(instance: &Instance, n_sites: usize, n_moves: usize) -> Vec<(usize, usize)> {
    let n_txns = instance.n_txns();
    (0..n_moves)
        .map(|i| {
            let t = (i.wrapping_mul(2654435761)) % n_txns;
            let s = (i.wrapping_mul(40503) >> 4) % n_sites;
            (t, s)
        })
        .collect()
}

/// Annealing-move throughput: the same accept-half/reject-half move
/// stream evaluated (a) through [`IncrementalCost`] deltas and (b) by
/// mutating a scratch [`Partitioning`] and re-running the full
/// coefficient walk [`fast_objective6`] — the paper port's previous inner
/// loop. Reports moves/sec for both and their ratio.
fn annealing_throughput(instance: &Instance, n_sites: usize) -> serde_json::Value {
    let cost = CostConfig::default();
    let coeffs = CostCoefficients::compute(instance, &cost);
    let start_part = Partitioning::single_site(instance, n_sites).expect("sites >= 1");

    // Incremental path: apply → evaluate → commit/revert alternately.
    let inc_moves = 200_000usize;
    let seq = move_sequence(instance, n_sites, inc_moves);
    let mut inc = IncrementalCost::new(instance, &coeffs, &cost, start_part.clone());
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for (i, &(t, s)) in seq.iter().enumerate() {
        let mark = inc.mark();
        inc.apply_txn_move(TxnId::from_index(t), SiteId::from_index(s));
        acc += inc.objective6();
        if i % 2 == 0 {
            inc.commit();
        } else {
            inc.revert(mark);
        }
    }
    let inc_secs = t0.elapsed().as_secs_f64();
    let inc_rate = inc_moves as f64 / inc_secs;

    // Full path: same move stream, objective recomputed from scratch
    // per move (sized down — it is the slow path being demonstrated).
    let full_moves = (inc_moves / 50).max(1);
    let seq = move_sequence(instance, n_sites, full_moves);
    let mut part = start_part;
    let t1 = Instant::now();
    for (i, &(t, s)) in seq.iter().enumerate() {
        let mut cand = part.clone();
        cand.move_txn(TxnId::from_index(t), SiteId::from_index(s));
        cand.repair_single_sitedness(instance);
        acc += fast_objective6(instance, &coeffs, &cand, &cost);
        if i % 2 == 0 {
            part = cand;
        }
    }
    let full_secs = t1.elapsed().as_secs_f64();
    let full_rate = full_moves as f64 / full_secs;
    let speedup = inc_rate / full_rate;
    // Keep the accumulator observable so the loops cannot be elided.
    assert!(acc.is_finite());

    println!(
        "anneal-throughput/{:<11} incremental {:>12.0} moves/s   full {:>10.0} moves/s   {speedup:>6.1}x",
        instance.name(),
        inc_rate,
        full_rate,
    );
    serde_json::json!({
        "name": format!("anneal-throughput/{}", instance.name()),
        "instance": instance.name(),
        "sites": n_sites,
        "incremental_moves": inc_moves,
        "incremental_moves_per_sec": inc_rate,
        "full_moves": full_moves,
        "full_moves_per_sec": full_rate,
        "speedup": speedup,
    })
}

/// Observability overhead: the same deterministic multi-chain SA solve
/// run with the inert [`Obs::disabled()`] handle (the default in every
/// solver config) and with a live registry + trace, interleaved best-of-3
/// each so runner drift hits both variants alike. Returns the artifact
/// entry and the final enabled run's metrics snapshot (folded into the
/// artifact so `--check` can compare acceptance ratios across pushes).
fn obs_overhead(instance: &Instance, sites: usize) -> (serde_json::Value, serde_json::Value) {
    let cost = CostConfig::default();
    let run = |obs: Obs| {
        // 128 single-threaded chains: enough wall time (~100ms) that the
        // min-of-3 below measures instrumentation, not scheduler jitter.
        let cfg = SaConfig {
            obs,
            ..SaConfig::fast_deterministic(1).multi_start(128, 1)
        };
        let t = Instant::now();
        let report = SaSolver::new(cfg)
            .solve(instance, sites, &cost)
            .expect("SA solves");
        let moves: usize = report.restarts.iter().map(|s| s.iterations).sum();
        (t.elapsed().as_secs_f64(), moves)
    };
    let _ = run(Obs::disabled()); // warm caches off the clock
    let mut disabled_wall = f64::INFINITY;
    let mut enabled_wall = f64::INFINITY;
    let mut moves = 0usize;
    let mut snapshot = serde_json::Value::Null;
    for _ in 0..6 {
        let (wall, m) = run(Obs::disabled());
        disabled_wall = disabled_wall.min(wall);
        moves = m;
        let obs = Obs::enabled();
        let (wall, _) = run(obs.clone());
        enabled_wall = enabled_wall.min(wall);
        snapshot = obs.metrics_json();
    }
    let overhead = enabled_wall / disabled_wall - 1.0;
    println!(
        "obs-overhead/{:<14} disabled {:>12.0} moves/s   enabled {:>10.0} moves/s   {:>+6.1}%",
        instance.name(),
        moves as f64 / disabled_wall,
        moves as f64 / enabled_wall,
        overhead * 100.0,
    );
    (
        serde_json::json!({
            "name": format!("obs-overhead/{}", instance.name()),
            "instance": instance.name(),
            "sites": sites,
            "moves": moves,
            "disabled_wall_secs": disabled_wall,
            "enabled_wall_secs": enabled_wall,
            "disabled_moves_per_sec": moves as f64 / disabled_wall,
            "enabled_moves_per_sec": moves as f64 / enabled_wall,
            "overhead_frac": overhead,
        }),
        snapshot,
    )
}

/// Health-sampler overhead: the same deterministic watch-epoch loop run
/// with observability enabled, with vs without a
/// [`HealthMonitor`](vpart_obs::HealthMonitor)
/// attached (registry sampling + rule evaluation each epoch),
/// interleaved min-of-6 so runner drift hits both variants alike. The
/// epoch-0 cold solve runs off the clock in both variants; the timed
/// epochs are the steady-state re-score path the sampler piggybacks on.
/// Gated under `--check` by the same tolerance as the obs-overhead row
/// (self-contained — no baseline fields needed).
fn sampler_overhead(instance: &Instance, sites: usize) -> serde_json::Value {
    use vpart_obs::HealthMonitor;
    use vpart_online::{OnlineWorkload, TrackerConfig, WatchConfig, Watcher};

    const EPOCHS: usize = 24;
    let run = |with_monitor: bool| {
        let tracker = OnlineWorkload::from_instance(instance, TrackerConfig::default())
            .expect("tracker builds");
        let mut watcher = Watcher::new(
            tracker,
            WatchConfig {
                sites,
                obs: Obs::enabled(),
                ..WatchConfig::default()
            },
        )
        .expect("watcher builds");
        if with_monitor {
            watcher = watcher.with_health(HealthMonitor::with_builtin_rules(64));
        }
        // Epoch 0 bootstraps the incumbent (a cold solve) — identical
        // work in both variants, excluded from the clock.
        watcher
            .tracker_mut()
            .observe_instance(instance)
            .expect("tracker observes");
        watcher.end_epoch("bench-boot").expect("boot epoch ends");
        let t = Instant::now();
        for _ in 0..EPOCHS {
            watcher
                .tracker_mut()
                .observe_instance(instance)
                .expect("tracker observes");
            watcher.end_epoch("bench").expect("epoch ends");
        }
        t.elapsed().as_secs_f64()
    };
    let _ = run(false); // warm caches off the clock
    let mut plain_wall = f64::INFINITY;
    let mut sampled_wall = f64::INFINITY;
    for _ in 0..6 {
        plain_wall = plain_wall.min(run(false));
        sampled_wall = sampled_wall.min(run(true));
    }
    let overhead = sampled_wall / plain_wall - 1.0;
    println!(
        "obs-sampler-overhead/{:<7} plain {:>10.0} epochs/s   sampled {:>10.0} epochs/s   {:>+6.1}%",
        instance.name(),
        EPOCHS as f64 / plain_wall,
        EPOCHS as f64 / sampled_wall,
        overhead * 100.0,
    );
    serde_json::json!({
        "name": format!("obs-sampler-overhead/{}", instance.name()),
        "instance": instance.name(),
        "sites": sites,
        "epochs": EPOCHS,
        "plain_wall_secs": plain_wall,
        "sampled_wall_secs": sampled_wall,
        "plain_epochs_per_sec": EPOCHS as f64 / plain_wall,
        "sampled_epochs_per_sec": EPOCHS as f64 / sampled_wall,
        "overhead_frac": overhead,
    })
}

/// Trace-replay benchmark: solves the instance, expands the workload
/// into a seeded execution stream, replays it through the columnar
/// engine at production rate and reports txns/sec plus the true-byte
/// model error against [`predicted_txn_bytes`]. Both numbers land in the
/// artifact; `--check` gates a >[`THROUGHPUT_TOLERANCE`] throughput drop
/// against the baseline and a |model error| above [`MODEL_ERROR_BOUND`]
/// (the latter self-contained — no baseline fields needed).
fn replay_benchmark(name: &str, instance: &Instance, sites: usize, seed: u64) -> serde_json::Value {
    let cost = CostConfig::default();
    let part = SaSolver::new(SaConfig::fast_deterministic(seed))
        .solve(instance, sites, &cost)
        .expect("SA solves the replay target")
        .partitioning;
    let stream = ReplayStream::weighted(instance, 500, seed);
    let per = predicted_txn_bytes(instance, &part, &cost);
    let counts = stream.counts(instance.n_txns());
    let mut predicted = PredictedBytes::default();
    for (t, &c) in counts.iter().enumerate() {
        predicted.read += c as f64 * per[t].read;
        predicted.written += c as f64 * per[t].written;
        predicted.transferred += c as f64 * per[t].transferred;
    }
    let mut dep = ReplayDeployment::new(instance, &part, 256, 32).expect("replay target deploys");
    let report = dep
        .replay(
            &stream,
            &ReplayConfig::timed(4, REPLAY_MIN_DURATION),
            Some(&predicted),
        )
        .expect("replay stream is non-empty and in range");
    let me = report
        .model_error
        .expect("a prediction was supplied, so the error is computed");
    let totals = report.totals();
    let tput = report.throughput_txns_per_sec();
    println!(
        "{name:<28} {tput:>10.0} txns/sec   model error {:>+8.4}   ({} passes)",
        me.overall_ratio, report.passes
    );
    serde_json::json!({
        "name": name,
        "instance": instance.name(),
        "sites": sites,
        "stream_len": report.stream_len,
        "passes": report.passes,
        "txns_replayed": report.txns_replayed,
        "elapsed_secs": report.elapsed.as_secs_f64(),
        "txns_per_sec": tput,
        "bytes_read": totals.bytes_read,
        "bytes_written": totals.bytes_written,
        "bytes_transferred": report.transfer_bytes,
        "model_error_ratio": me.overall_ratio,
        "model_error_read": me.read_ratio,
        "model_error_write": me.write_ratio,
        "model_error_transfer": me.transfer_ratio,
    })
}

/// Replay-driven migration benchmark: centralizes the instance, then
/// migrates to a fresh SA solution through the crash-safe batched path —
/// one `migrate_batches(.., 1)` step per boundary, exactly the
/// rate-limited deployment mode — and meters the shipping rate. The same
/// seeded replay stream is run at production rate on the source and
/// target partitionings, so the row records what the migration buys
/// (throughput after vs before) next to what it costs (bytes, batches,
/// peak transient dual-resident width, wall time). `--check` gates the
/// engine meter against the plan estimate exactly (self-contained) and
/// the shipping rate against the baseline ([`MIGRATION_RATE_TOLERANCE`]).
fn migration_benchmark(
    name: &str,
    instance: &Instance,
    sites: usize,
    seed: u64,
) -> serde_json::Value {
    let cost = CostConfig::default();
    let from = Partitioning::single_site(instance, sites).expect("single-site source");
    let to = SaSolver::new(SaConfig::fast_deterministic(seed))
        .solve(instance, sites, &cost)
        .expect("SA solves the migration target")
        .partitioning;
    let plan = MigrationPlan::between(instance, &from, &to, MIGRATION_ROWS).expect("plan builds");
    let batched = plan
        .batched(instance, plan.estimated_bytes() / 6.0)
        .expect("plan batches");

    // Production-rate replay on both endpoints of the migration.
    let throughput = |part: &Partitioning| {
        let mut dep =
            ReplayDeployment::new(instance, part, 256, 32).expect("replay endpoint deploys");
        dep.replay(
            &ReplayStream::weighted(instance, 500, seed),
            &ReplayConfig::timed(4, REPLAY_MIN_DURATION),
            None,
        )
        .expect("endpoint replays")
        .throughput_txns_per_sec()
    };
    let tput_before = throughput(&from);

    // Best-of-3 timed migrations, stepped one batch per call through the
    // write-ahead journal (each run on a fresh deployment + journal).
    let mut wall = f64::INFINITY;
    let mut bytes_moved = 0.0;
    let mut steps = 0usize;
    for _ in 0..3 {
        let mut dep =
            Deployment::new(instance, &from, MIGRATION_ROWS).expect("migration source deploys");
        let mut journal = MigrationJournal::new();
        let t = Instant::now();
        let mut n = 0usize;
        loop {
            let report = dep
                .migrate_batches(&batched, &mut journal, &mut FaultInjector::disabled(), 1)
                .expect("batch applies");
            n += 1;
            if report.completed {
                bytes_moved = report.bytes_moved;
                break;
            }
        }
        wall = wall.min(t.elapsed().as_secs_f64());
        steps = n;
    }
    let rate = bytes_moved / wall.max(1e-12);
    let tput_after = throughput(&to);
    let change = tput_after / tput_before.max(1e-12) - 1.0;
    println!(
        "{name:<28} {bytes_moved:>10.0} B in {steps} batches   {rate:>12.0} B/s   replay {change:>+6.1}%",
    );
    serde_json::json!({
        "name": name,
        "instance": instance.name(),
        "sites": sites,
        "estimated_bytes": plan.estimated_bytes(),
        "bytes_moved": bytes_moved,
        "meters_exact": bytes_moved == plan.estimated_bytes(),
        "batches": batched.n_batches(),
        "peak_transient_bytes": batched.peak_transient_bytes,
        "wall_secs": wall,
        "bytes_per_sec": rate,
        "replay_txns_per_sec_before": tput_before,
        "replay_txns_per_sec_after": tput_after,
        "replay_throughput_change_frac": change,
    })
}

/// `--check` comparison of this run against a previous artifact. Returns
/// human-readable regression descriptions (empty = gate passes). Every
/// line names the tripped row and metric and shows baseline vs current,
/// so a red CI run is actionable without re-running anything.
fn check_against_baseline(
    baseline: &serde_json::Value,
    artifact: &serde_json::Value,
) -> Vec<String> {
    let current = artifact
        .get("benches")
        .and_then(|b| b.as_array())
        .unwrap_or(&[]);
    let field_str = |v: &serde_json::Value, key: &str| -> Option<String> {
        v.get(key).and_then(|f| f.as_str()).map(str::to_owned)
    };
    let field_f64 =
        |v: &serde_json::Value, key: &str| -> Option<f64> { v.get(key).and_then(|f| f.as_f64()) };
    let mut failures = Vec::new();
    // A baseline without a benches array is an unusable file (truncated
    // download, wrong artifact) — certifying "no regressions" against it
    // would be vacuous, so it fails the gate instead.
    let Some(base_benches) = baseline.get("benches").and_then(|b| b.as_array()) else {
        return vec!["baseline has no \"benches\" array — not a BENCH_<sha>.json artifact".into()];
    };
    if base_benches.is_empty() {
        return vec!["baseline \"benches\" array is empty — nothing to compare against".into()];
    }
    for base in base_benches {
        let Some(name) = field_str(base, "name") else {
            continue;
        };
        let Some(now) = current
            .iter()
            .find(|b| field_str(b, "name").as_deref() == Some(&name))
        else {
            failures.push(format!("{name}: present in baseline but not in this run"));
            continue;
        };
        let (Some(base_wall), Some(now_wall)) =
            (field_f64(base, "wall_secs"), field_f64(now, "wall_secs"))
        else {
            continue;
        };
        if now_wall > base_wall * (1.0 + WALL_TOLERANCE) && now_wall > base_wall + WALL_SLACK_SECS {
            failures.push(format!(
                "{name}: wall_secs baseline {:.3} -> current {:.3} (regressed > {:.0}% and > {}s slack)",
                base_wall,
                now_wall,
                WALL_TOLERANCE * 100.0,
                WALL_SLACK_SECS
            ));
        }
        // Gate on objective (6) — what the solvers actually minimize —
        // when both artifacts carry it; objective (4) otherwise (older
        // baselines predate the field).
        let key =
            if field_f64(base, "objective6").is_some() && field_f64(now, "objective6").is_some() {
                "objective6"
            } else {
                "objective4"
            };
        if let (Some(base_obj), Some(now_obj)) = (field_f64(base, key), field_f64(now, key)) {
            if now_obj > base_obj + OBJECTIVE_TOLERANCE * (1.0 + base_obj.abs()) {
                failures.push(format!(
                    "{name}: {key} baseline {base_obj} -> current {now_obj} (seeded solves must not worsen)"
                ));
            }
        }
    }
    // Acceptance-rate collapse: both artifacts fold in the instrumented
    // run's metrics snapshot; the seeded SA acceptance ratio is
    // reproducible, so a sizeable drop means the chains stopped accepting
    // moves (a broken temperature schedule or delta evaluation), which
    // wall time and final objective alone can mask.
    let ratio = |v: &serde_json::Value| {
        v.get("metrics")
            .and_then(|m| m.get("gauges"))
            .and_then(|g| g.get("sa_acceptance_ratio"))
            .and_then(|r| r.as_f64())
    };
    if let (Some(base), Some(now)) = (ratio(baseline), ratio(artifact)) {
        if now < base - ACCEPTANCE_COLLAPSE_DROP {
            failures.push(format!(
                "metrics: sa_acceptance_ratio baseline {base:.3} -> current {now:.3} \
                 (collapsed > {ACCEPTANCE_COLLAPSE_DROP} drop)"
            ));
        }
    }
    // Replay throughput: matched by row name across the artifacts'
    // "replay" arrays. The rows average over REPLAY_MIN_DURATION of
    // passes, so a drop past the tolerance is a real engine regression,
    // not a scheduler hiccup.
    fn replay_rows(v: &serde_json::Value) -> &[serde_json::Value] {
        v.get("replay").and_then(|r| r.as_array()).unwrap_or(&[])
    }
    let now_replay = replay_rows(artifact);
    for base in replay_rows(baseline) {
        let Some(name) = field_str(base, "name") else {
            continue;
        };
        let Some(now) = now_replay
            .iter()
            .find(|b| field_str(b, "name").as_deref() == Some(&name))
        else {
            failures.push(format!(
                "{name}: replay row present in baseline but not in this run"
            ));
            continue;
        };
        if let (Some(base_t), Some(now_t)) = (
            field_f64(base, "txns_per_sec"),
            field_f64(now, "txns_per_sec"),
        ) {
            if now_t < base_t * (1.0 - THROUGHPUT_TOLERANCE) {
                failures.push(format!(
                    "{name}: txns_per_sec baseline {base_t:.0} -> current {now_t:.0} \
                     (regressed > {:.0}%)",
                    THROUGHPUT_TOLERANCE * 100.0
                ));
            }
        }
    }
    // Model error: self-contained — the true-byte meters must stay within
    // the pinned bound of the cost model's prediction regardless of what
    // the baseline recorded.
    for row in now_replay {
        let name = field_str(row, "name").unwrap_or_else(|| "replay".into());
        match field_f64(row, "model_error_ratio") {
            Some(e) if e.is_finite() && e.abs() <= MODEL_ERROR_BOUND => {}
            Some(e) => failures.push(format!(
                "{name}: model_error_ratio current {e:+.4} (|error| bound {MODEL_ERROR_BOUND})"
            )),
            None => failures.push(format!("{name}: replay row carries no model_error_ratio")),
        }
    }
    // Batched migrations: the shipping rate is gated against the baseline
    // and the engine meter against the plan estimate (self-contained —
    // `meters_exact` is computed by the run itself, so a drifting meter
    // fails even on the very first artifact after a change).
    fn migration_rows(v: &serde_json::Value) -> &[serde_json::Value] {
        v.get("migration").and_then(|r| r.as_array()).unwrap_or(&[])
    }
    let now_migration = migration_rows(artifact);
    for base in migration_rows(baseline) {
        let Some(name) = field_str(base, "name") else {
            continue;
        };
        let Some(now) = now_migration
            .iter()
            .find(|b| field_str(b, "name").as_deref() == Some(&name))
        else {
            failures.push(format!(
                "{name}: migration row present in baseline but not in this run"
            ));
            continue;
        };
        if let (Some(base_r), Some(now_r)) = (
            field_f64(base, "bytes_per_sec"),
            field_f64(now, "bytes_per_sec"),
        ) {
            if now_r < base_r * (1.0 - MIGRATION_RATE_TOLERANCE) {
                failures.push(format!(
                    "{name}: bytes_per_sec baseline {base_r:.0} -> current {now_r:.0} \
                     (regressed > {:.0}%)",
                    MIGRATION_RATE_TOLERANCE * 100.0
                ));
            }
        }
    }
    for row in now_migration {
        let name = field_str(row, "name").unwrap_or_else(|| "migration".into());
        if row.get("meters_exact").and_then(|v| v.as_bool()) != Some(true) {
            failures.push(format!(
                "{name}: engine byte meter != plan estimate (meters_exact is not true)"
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_dir = flag("--out").unwrap_or_else(|| ".".to_string());
    let sha = std::env::var("GITHUB_SHA")
        .ok()
        .filter(|s| !s.is_empty())
        .map(|s| s.chars().take(12).collect::<String>())
        .unwrap_or_else(|| "local".to_string());

    let cost = CostConfig::default();
    let cost = &cost;
    let tpcc = vpart_instances::tpcc();
    let shop = web_shop();

    let sa = |seed: u64| {
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(seed))
                .solve(ins, sites, cost)
                .expect("SA solves")
        }
    };
    // Multi-start at equal per-chain budget: chain 0 is exactly the
    // single-start run, so best-of-n can only match or beat it.
    let sa_multi = |seed: u64, restarts: usize, threads: usize| {
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(seed).multi_start(restarts, threads))
                .solve(ins, sites, cost)
                .expect("SA solves")
        }
    };
    let qp = |limit: f64| {
        move |ins: &Instance, sites: usize| {
            QpSolver::new(QpConfig::with_time_limit(limit))
                .solve(ins, sites, cost)
                .expect("QP solves")
        }
    };

    // Online repartitioning scenario: the web-shop incumbent (solved on
    // the steady phase) is repaired on the drifted phase by a warm
    // re-solve, measured against a cold multi-start of the same snapshot
    // (both single-threaded, so wall time reflects total solve work).
    let drift_cost = CostConfig::default().with_lambda(0.5);
    let drifted = example_workload("queries_drifted.log", "web-shop-drifted");
    let incumbent = SaSolver::new(SaConfig::fast_deterministic(7))
        .solve(&shop, 3, &drift_cost)
        .expect("SA solves the steady phase")
        .partitioning;
    let warm_resolve = {
        let drift_cost = &drift_cost;
        let incumbent = incumbent.clone();
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(7).warm_started(incumbent.clone()))
                .solve(ins, sites, drift_cost)
                .expect("warm re-solve succeeds")
        }
    };
    let cold_resolve = {
        let drift_cost = &drift_cost;
        move |ins: &Instance, sites: usize| {
            SaSolver::new(SaConfig::fast_deterministic(7).multi_start(4, 1))
                .solve(ins, sites, drift_cost)
                .expect("cold multi-start succeeds")
        }
    };

    let benches = vec![
        measure("sa/tpcc-2-sites", &tpcc, 2, sa(1)),
        measure("sa/tpcc-3-sites", &tpcc, 3, sa(1)),
        measure("sa-multistart4/tpcc-3-sites", &tpcc, 3, sa_multi(1, 4, 4)),
        measure("qp/tpcc-2-sites", &tpcc, 2, qp(60.0)),
        measure("sa/web-shop-2-sites", &shop, 2, sa(7)),
        measure(
            "sa-multistart4/web-shop-2-sites",
            &shop,
            2,
            sa_multi(7, 4, 4),
        ),
        measure("qp/web-shop-2-sites", &shop, 2, qp(60.0)),
        measure("drift-resolve/warm", &drifted, 3, warm_resolve),
        measure("drift-resolve/cold-multistart4", &drifted, 3, cold_resolve),
    ];

    // Multi-start must not lose to single-start at equal per-chain budget
    // (restart 0 reruns the single-start chain). The bench job gates the
    // guarantee — except when a chain was cut off by its wall clock
    // (pathologically loaded runner), where the exact-replay premise does
    // not hold. Violations are collected, not panicked on, so the
    // artifact documenting the failure is still written below.
    let mut dominance_failures: Vec<String> = Vec::new();
    for (single, multi) in [
        ("sa/tpcc-3-sites", "sa-multistart4/tpcc-3-sites"),
        ("sa/web-shop-2-sites", "sa-multistart4/web-shop-2-sites"),
    ] {
        let entry = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
                .expect("bench entry exists")
        };
        // Compare on objective (6) — the metric the multi-start merge
        // minimizes. Objective (4) can legitimately rise when a winning
        // chain trades it for lower max load.
        let obj = |e: &serde_json::Value| {
            e.get("objective6")
                .and_then(|v| v.as_f64())
                .expect("objective recorded")
        };
        let timed_out = |e: &serde_json::Value| {
            e.get("timed_out_chains")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                > 0
        };
        let (se, me) = (entry(single), entry(multi));
        let (s, m) = (obj(se), obj(me));
        if timed_out(se) || timed_out(me) {
            eprintln!(
                "warning: skipping {multi} vs {single} dominance check — a chain hit its \
                 wall-clock limit"
            );
        } else if m > s + 1e-9 * (1.0 + s.abs()) {
            dominance_failures.push(format!(
                "{multi} (objective6 {m}) must not be worse than {single} ({s})"
            ));
        }
    }

    // The online repartitioning claim: repairing drift from the incumbent
    // must cost measurably less wall time than a cold multi-start of the
    // same snapshot (a warm chain is strictly less work than 4 cold
    // chains run sequentially). Skipped if a chain was cut off by its
    // wall clock — a pathologically loaded runner breaks the premise.
    {
        let entry = |name: &str| {
            benches
                .iter()
                .find(|b| b.get("name").and_then(|v| v.as_str()) == Some(name))
                .expect("bench entry exists")
        };
        let (warm, cold) = (
            entry("drift-resolve/warm"),
            entry("drift-resolve/cold-multistart4"),
        );
        let wall = |e: &serde_json::Value| {
            e.get("wall_secs")
                .and_then(|v| v.as_f64())
                .expect("wall recorded")
        };
        let timed_out = |e: &serde_json::Value| {
            e.get("timed_out_chains")
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
                > 0
        };
        if timed_out(warm) || timed_out(cold) {
            eprintln!(
                "warning: skipping warm-vs-cold drift-resolve check — a chain hit its \
                 wall-clock limit"
            );
        } else if wall(warm) >= wall(cold) {
            dominance_failures.push(format!(
                "drift-resolve/warm ({:.4}s) must be faster than cold-multistart4 ({:.4}s)",
                wall(warm),
                wall(cold)
            ));
        } else {
            println!(
                "drift-resolve: warm {:.4}s vs cold multi-start {:.4}s ({:.1}x faster)",
                wall(warm),
                wall(cold),
                wall(cold) / wall(warm).max(1e-12)
            );
        }
    }

    let throughput = vec![
        annealing_throughput(&tpcc, 3),
        annealing_throughput(&shop, 2),
    ];
    let replay = vec![
        replay_benchmark("replay/tpcc-3-sites", &tpcc, 3, 1),
        replay_benchmark("replay/web-shop-2-sites", &shop, 2, 7),
    ];
    let migration = vec![
        migration_benchmark("migration/tpcc-3-sites", &tpcc, 3, 1),
        migration_benchmark("migration/web-shop-2-sites", &shop, 2, 7),
    ];
    let (obs_bench, metrics_snapshot) = obs_overhead(&tpcc, 3);
    let sampler_bench = sampler_overhead(&shop, 2);

    let criterion: Vec<serde_json::Value> = flag("--criterion")
        .and_then(|path| std::fs::read_to_string(path).ok())
        .map(|text| {
            text.lines()
                .filter_map(|l| serde_json::from_str(l.trim()).ok())
                .collect()
        })
        .unwrap_or_default();

    let artifact = serde_json::json!({
        "sha": sha,
        "benches": benches,
        "annealing_throughput": throughput,
        "replay": replay,
        "migration": migration,
        "obs_overhead": obs_bench,
        "obs_sampler_overhead": sampler_bench,
        "metrics": metrics_snapshot,
        "criterion": criterion,
    });
    let path = format!("{out_dir}/BENCH_{sha}.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&artifact).expect("artifact serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");

    // Fail only after the artifact is on disk — a maintainer debugging a
    // tripped gate needs those numbers.
    if !dominance_failures.is_empty() {
        eprintln!(
            "error: multi-start dominance violated ({}):",
            dominance_failures.len()
        );
        for f in &dominance_failures {
            eprintln!("  {f}");
        }
        return ExitCode::FAILURE;
    }

    if let Some(baseline_path) = flag("--check") {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: baseline {baseline_path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut failures = check_against_baseline(&baseline, &artifact);
        // The "<5% overhead" claim for observability: an enabled handle
        // (live registry + trace) must stay within tolerance of the
        // disabled default on the same seeded solve. Self-contained — no
        // baseline fields needed — but gated here so local artifact-only
        // runs never flake on runner noise.
        {
            let f = |key: &str| obs_bench.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let (off, on) = (f("disabled_wall_secs"), f("enabled_wall_secs"));
            if on > off * (1.0 + OBS_OVERHEAD_TOLERANCE) && on > off + OBS_OVERHEAD_SLACK_SECS {
                failures.push(format!(
                    "obs overhead: enabled {on:.4}s vs disabled {off:.4}s (> {:.0}% over)",
                    OBS_OVERHEAD_TOLERANCE * 100.0
                ));
            }
        }
        // The health sampler (per-epoch registry sample + rule sweep)
        // rides the same budget: attaching a monitor must stay within
        // tolerance of the plain obs-enabled watch loop. Self-contained
        // like the obs-overhead gate.
        {
            let f = |key: &str| {
                sampler_bench
                    .get(key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            };
            let (off, on) = (f("plain_wall_secs"), f("sampled_wall_secs"));
            if on > off * (1.0 + OBS_OVERHEAD_TOLERANCE) && on > off + OBS_OVERHEAD_SLACK_SECS {
                failures.push(format!(
                    "obs sampler overhead: sampled {on:.4}s vs plain {off:.4}s (> {:.0}% over)",
                    OBS_OVERHEAD_TOLERANCE * 100.0
                ));
            }
        }
        if failures.is_empty() {
            println!(
                "check: no regressions vs {baseline_path} (wall +{:.0}% tolerance)",
                WALL_TOLERANCE * 100.0
            );
        } else {
            eprintln!(
                "check: {} regression(s) vs {baseline_path}:",
                failures.len()
            );
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
