//! Table 1 — effect of the six instance parameters (A–F) on the SA cost.
//!
//! Varies one parameter at a time around the defaults
//! `A=3 B=10 C=15 D=5 E=15 F={4,8}`, for two class sizes
//! (`#tables = |T| = 20` and `100`) and `|S| ∈ {1,2,3}`. Costs in 10⁶.
//!
//! ```sh
//! cargo run --release -p vpart-bench --bin table1 [-- --full]
//! ```

use vpart_bench::{row, run_sa, single_site_cost, Mode};
use vpart_core::CostConfig;
use vpart_instances::RandomParams;

type ParamTweak = Box<dyn Fn(&mut RandomParams)>;

struct Variation {
    label: &'static str,
    name: &'static str,
    values: Vec<(String, ParamTweak)>,
    default_idx: usize,
}

fn variations() -> Vec<Variation> {
    vec![
        Variation {
            label: "A",
            name: "Max queries per transaction",
            values: [1usize, 3, 5]
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut RandomParams)> =
                        Box::new(move |p: &mut RandomParams| p.max_queries_per_txn = v);
                    (v.to_string(), f)
                })
                .collect(),
            default_idx: 1,
        },
        Variation {
            label: "B",
            name: "Percent update queries",
            values: [0u32, 10, 30]
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut RandomParams)> =
                        Box::new(move |p: &mut RandomParams| p.update_pct = v);
                    (v.to_string(), f)
                })
                .collect(),
            default_idx: 1,
        },
        Variation {
            label: "C",
            name: "Max attributes per table",
            values: [5usize, 15, 35]
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut RandomParams)> =
                        Box::new(move |p: &mut RandomParams| p.max_attrs_per_table = v);
                    (v.to_string(), f)
                })
                .collect(),
            default_idx: 1,
        },
        Variation {
            label: "D",
            name: "Max table references per query",
            values: [2usize, 5, 10]
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut RandomParams)> =
                        Box::new(move |p: &mut RandomParams| p.max_table_refs = v);
                    (v.to_string(), f)
                })
                .collect(),
            default_idx: 1,
        },
        Variation {
            label: "E",
            name: "Max attribute references per query",
            values: [5usize, 15, 25]
                .iter()
                .map(|&v| {
                    let f: Box<dyn Fn(&mut RandomParams)> =
                        Box::new(move |p: &mut RandomParams| p.max_attr_refs = v);
                    (v.to_string(), f)
                })
                .collect(),
            default_idx: 1,
        },
        Variation {
            label: "F",
            name: "Allowed attribute widths",
            values: vec![
                (
                    "{2,4,8}".to_owned(),
                    Box::new(|p: &mut RandomParams| p.widths = vec![2.0, 4.0, 8.0])
                        as Box<dyn Fn(&mut RandomParams)>,
                ),
                (
                    "{4,8}".to_owned(),
                    Box::new(|p: &mut RandomParams| p.widths = vec![4.0, 8.0]),
                ),
                (
                    "{4,8,16}".to_owned(),
                    Box::new(|p: &mut RandomParams| p.widths = vec![4.0, 8.0, 16.0]),
                ),
            ],
            default_idx: 1,
        },
    ]
}

fn main() {
    let mode = Mode::from_args();
    let cost = CostConfig::default();
    let widths = [1usize, 28, 8, 8, 8, 8, 8, 8];

    println!(
        "Table 1 — parameter influence on SA cost (units of 10^6, p = 8, λ = 0.9 (see DESIGN.md))"
    );
    println!("defaults marked with *; columns per class: |S| = 1, 2, 3\n");
    println!(
        "{}",
        row(
            &[
                "".into(),
                "parameter / value".into(),
                "20:S1".into(),
                "20:S2".into(),
                "20:S3".into(),
                "100:S1".into(),
                "100:S2".into(),
                "100:S3".into(),
            ],
            &widths
        )
    );

    for variation in variations() {
        for (vi, (value_label, apply)) in variation.values.iter().enumerate() {
            let marker = if vi == variation.default_idx {
                "*"
            } else {
                " "
            };
            let mut cells: Vec<String> = vec![
                variation.label.into(),
                format!("{} = {}{marker}", variation.name, value_label),
            ];
            for n in [20usize, 100] {
                let mut params = RandomParams::table1_default(n);
                apply(&mut params);
                params.name = format!("t1-{}-{}-{}", variation.label, value_label, n);
                // One instance per row (seed from the row), shared by the
                // three site counts — as in the paper.
                let seed = 0x7AB1E1u64
                    ^ (n as u64) << 32
                    ^ (variation.label.as_bytes()[0] as u64) << 16
                    ^ vi as u64;
                let instance = params.generate(seed);
                for sites in [1usize, 2, 3] {
                    let c = if sites == 1 {
                        single_site_cost(&instance, &cost)
                    } else {
                        run_sa(&instance, sites, &cost, mode.sa_config())
                            .cost
                            .expect("sa always returns a layout")
                    };
                    cells.push(format!("{:.3}", c / 1e6));
                }
            }
            println!("{}", row(&cells, &widths));
        }
        println!();
    }
    println!("reading: costs fall with more sites; the drop is largest for few");
    println!("queries/txn (A=1), few updates (B=0), wide tables (C=35) and");
    println!("moderate attribute references — matching the paper's Table 1.");
}
