//! Write-ahead migration journal.
//!
//! A batched migration is crash-safe because every state transition is
//! journaled *before* it takes effect and committed *after*: `BatchBegin`
//! is appended before a batch's ops touch storage, `BatchCommit` (carrying
//! the batch's metered bytes) only once the batch fully applied. A crash
//! therefore leaves the journal in one of two shapes — last record is a
//! commit (the deployment is exactly at that batch boundary) or a begin
//! (the batch may be half-applied, but the *logical* boundary is still the
//! last commit, and recovery rebuilds fragments deterministically from
//! it). The byte meter is derived from commit records alone, so replaying
//! a batch after a crash never double-counts.
//!
//! Rollbacks journal symmetrically (`RollbackBegin`, `UndoBegin`/
//! `UndoCommit` per batch in reverse order, `RolledBack`), so a crash
//! mid-rollback resumes the rollback rather than restarting it.
//!
//! The serialized form is JSONL: one `{"crc": <fnv64>, "rec": {...}}`
//! object per line, where `crc` is an FNV-1a checksum of the record's
//! compact JSON encoding. [`MigrationJournal::from_jsonl`] detects
//! truncation, bit-rot and editing (checksum mismatch, malformed JSON,
//! impossible record sequences) and reports them as
//! [`EngineError::CorruptJournal`]. The `Start` record pins the
//! [`BatchedMigrationPlan::fingerprint`] so recovery refuses to replay a
//! journal against a different plan.
//!
//! [`BatchedMigrationPlan::fingerprint`]: vpart_model::BatchedMigrationPlan::fingerprint

use crate::executor::EngineError;
use serde::{Deserialize, Serialize, Value};

/// One journal record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalRecord {
    /// Migration opened: pins the plan fingerprint, batch count and row
    /// count. Always the first record.
    Start {
        /// `BatchedMigrationPlan::fingerprint()` of the plan being run.
        fingerprint: u64,
        /// Total number of batches in the plan.
        batches: usize,
        /// The deployment's rows-per-fragment the byte meter assumes.
        rows_per_fragment: usize,
    },
    /// Batch `batch` is about to be applied (write-ahead).
    BatchBegin {
        /// Zero-based batch index.
        batch: usize,
    },
    /// Batch `batch` fully applied; `bytes` is its metered install bytes.
    BatchCommit {
        /// Zero-based batch index.
        batch: usize,
        /// Engine-metered bytes shipped by this batch.
        bytes: f64,
    },
    /// All batches committed; the migration reached `plan.to`.
    Complete {
        /// Total metered bytes, `Σ` of all commit records.
        bytes_moved: f64,
    },
    /// A rollback to `plan.from` was requested.
    RollbackBegin,
    /// Undo of committed batch `batch` is about to be applied.
    UndoBegin {
        /// Zero-based batch index being undone.
        batch: usize,
    },
    /// Undo of batch `batch` fully applied; `bytes` is the re-install
    /// bytes the undo shipped (resurrecting dropped replicas).
    UndoCommit {
        /// Zero-based batch index undone.
        batch: usize,
        /// Engine-metered bytes shipped by the undo.
        bytes: f64,
    },
    /// Rollback finished; the deployment is back at `plan.from`.
    RolledBack,
}

impl Serialize for JournalRecord {
    fn to_value(&self) -> Value {
        let fields = match *self {
            Self::Start {
                fingerprint,
                batches,
                rows_per_fragment,
            } => vec![
                ("t".to_string(), "start".to_value()),
                ("fingerprint".to_string(), fingerprint.to_value()),
                ("batches".to_string(), batches.to_value()),
                (
                    "rows_per_fragment".to_string(),
                    rows_per_fragment.to_value(),
                ),
            ],
            Self::BatchBegin { batch } => vec![
                ("t".to_string(), "batch_begin".to_value()),
                ("batch".to_string(), batch.to_value()),
            ],
            Self::BatchCommit { batch, bytes } => vec![
                ("t".to_string(), "batch_commit".to_value()),
                ("batch".to_string(), batch.to_value()),
                ("bytes".to_string(), bytes.to_value()),
            ],
            Self::Complete { bytes_moved } => vec![
                ("t".to_string(), "complete".to_value()),
                ("bytes_moved".to_string(), bytes_moved.to_value()),
            ],
            Self::RollbackBegin => vec![("t".to_string(), "rollback_begin".to_value())],
            Self::UndoBegin { batch } => vec![
                ("t".to_string(), "undo_begin".to_value()),
                ("batch".to_string(), batch.to_value()),
            ],
            Self::UndoCommit { batch, bytes } => vec![
                ("t".to_string(), "undo_commit".to_value()),
                ("batch".to_string(), batch.to_value()),
                ("bytes".to_string(), bytes.to_value()),
            ],
            Self::RolledBack => vec![("t".to_string(), "rolled_back".to_value())],
        };
        Value::Object(fields)
    }
}

impl Deserialize for JournalRecord {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let tag = v.expect_field("t")?.expect_str()?;
        let batch = |v: &Value| usize::from_value(v.expect_field("batch")?);
        let bytes = |v: &Value| f64::from_value(v.expect_field("bytes")?);
        match tag {
            "start" => Ok(Self::Start {
                fingerprint: u64::from_value(v.expect_field("fingerprint")?)?,
                batches: usize::from_value(v.expect_field("batches")?)?,
                rows_per_fragment: usize::from_value(v.expect_field("rows_per_fragment")?)?,
            }),
            "batch_begin" => Ok(Self::BatchBegin { batch: batch(v)? }),
            "batch_commit" => Ok(Self::BatchCommit {
                batch: batch(v)?,
                bytes: bytes(v)?,
            }),
            "complete" => Ok(Self::Complete {
                bytes_moved: f64::from_value(v.expect_field("bytes_moved")?)?,
            }),
            "rollback_begin" => Ok(Self::RollbackBegin),
            "undo_begin" => Ok(Self::UndoBegin { batch: batch(v)? }),
            "undo_commit" => Ok(Self::UndoCommit {
                batch: batch(v)?,
                bytes: bytes(v)?,
            }),
            "rolled_back" => Ok(Self::RolledBack),
            other => Err(serde::Error::custom(format!(
                "unknown journal record tag {other:?}"
            ))),
        }
    }
}

/// The durable state a journal implies, derived by replaying its records.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JournalState {
    /// Batches with a commit record (forward progress).
    pub committed: usize,
    /// Committed batches whose undo has committed (rollback progress).
    pub undone: usize,
    /// A `RollbackBegin` was journaled and `RolledBack` was not.
    pub rolling_back: bool,
    /// The migration completed forward (`Complete` present).
    pub complete: bool,
    /// The migration fully rolled back (`RolledBack` present).
    pub rolled_back: bool,
    /// `Σ` bytes over `BatchCommit` records (the durable forward meter).
    pub bytes_committed: f64,
    /// `Σ` bytes over `UndoCommit` records (the durable rollback meter).
    pub bytes_undone: f64,
}

impl JournalState {
    /// The batch boundary the deployment logically sits at: committed
    /// batches minus committed undos. Recovery rebuilds fragments for
    /// exactly this boundary.
    pub fn boundary(&self) -> usize {
        self.committed - self.undone
    }

    /// True once a terminal record was journaled; nothing may follow.
    pub fn terminal(&self) -> bool {
        self.complete || self.rolled_back
    }
}

/// An append-only migration journal (in memory, serializable to JSONL).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MigrationJournal {
    records: Vec<JournalRecord>,
}

impl MigrationJournal {
    /// An empty journal (a migration not yet started).
    pub fn new() -> Self {
        Self::default()
    }

    /// The records, in append order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record, enforcing the legal sequence (`Start` first and
    /// only first, contiguous batch/undo indices, nothing after a
    /// terminal record). The executor only appends legal sequences;
    /// violations indicate caller bugs and surface as
    /// [`EngineError::CorruptJournal`] rather than panics.
    pub fn append(&mut self, rec: JournalRecord) -> Result<(), EngineError> {
        self.check_next(rec)?;
        self.records.push(rec);
        Ok(())
    }

    /// The derived durable state.
    pub fn state(&self) -> JournalState {
        let mut st = JournalState::default();
        for rec in &self.records {
            match *rec {
                JournalRecord::Start { .. } | JournalRecord::BatchBegin { .. } => {}
                JournalRecord::BatchCommit { bytes, .. } => {
                    st.committed += 1;
                    st.bytes_committed += bytes;
                }
                JournalRecord::Complete { .. } => st.complete = true,
                JournalRecord::RollbackBegin => st.rolling_back = true,
                JournalRecord::UndoBegin { .. } => {}
                JournalRecord::UndoCommit { bytes, .. } => {
                    st.undone += 1;
                    st.bytes_undone += bytes;
                }
                JournalRecord::RolledBack => {
                    st.rolling_back = false;
                    st.rolled_back = true;
                }
            }
        }
        st
    }

    /// The plan fingerprint pinned by the `Start` record, if any.
    pub fn fingerprint(&self) -> Option<u64> {
        self.records.first().and_then(|r| match *r {
            JournalRecord::Start { fingerprint, .. } => Some(fingerprint),
            _ => None,
        })
    }

    /// Serializes to JSONL: one checksummed record per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in &self.records {
            let body = rec.to_value().to_string();
            let line = Value::Object(vec![
                ("crc".to_string(), fnv64(body.as_bytes()).to_value()),
                ("rec".to_string(), rec.to_value()),
            ]);
            out.push_str(&line.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses JSONL produced by [`to_jsonl`](Self::to_jsonl), verifying
    /// per-line checksums and the record sequence. Any damage — malformed
    /// JSON, checksum mismatch, an impossible sequence — is a
    /// [`EngineError::CorruptJournal`] naming the offending line.
    pub fn from_jsonl(text: &str) -> Result<Self, EngineError> {
        let corrupt = |line: usize, what: &str| EngineError::CorruptJournal {
            what: format!("line {}: {what}", line + 1),
        };
        let mut journal = Self::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v: Value = serde_json::from_str(line)
                .map_err(|e| corrupt(i, &format!("malformed JSON ({e})")))?;
            let crc = v
                .get("crc")
                .and_then(Value::as_u64)
                .ok_or_else(|| corrupt(i, "missing crc"))?;
            let rec_v = v.get("rec").ok_or_else(|| corrupt(i, "missing rec"))?;
            let rec = JournalRecord::from_value(rec_v)
                .map_err(|e| corrupt(i, &format!("bad record ({e})")))?;
            // The checksum covers the record's canonical encoding; a
            // round-trip through `from_value` canonicalizes field order.
            let body = rec.to_value().to_string();
            if fnv64(body.as_bytes()) != crc {
                return Err(corrupt(i, "checksum mismatch"));
            }
            journal
                .append(rec)
                .map_err(|e| corrupt(i, &format!("illegal sequence ({e})")))?;
        }
        Ok(journal)
    }

    /// Validates that `rec` may legally follow the current tail.
    fn check_next(&self, rec: JournalRecord) -> Result<(), EngineError> {
        let bad = |what: &str| EngineError::CorruptJournal {
            what: what.to_string(),
        };
        let st = self.state();
        if st.terminal() {
            return Err(bad("record after a terminal Complete/RolledBack"));
        }
        match rec {
            JournalRecord::Start { .. } => {
                if !self.records.is_empty() {
                    return Err(bad("Start is only legal as the first record"));
                }
            }
            _ if self.records.is_empty() => {
                return Err(bad("first record must be Start"));
            }
            JournalRecord::BatchBegin { batch } => {
                if st.rolling_back {
                    return Err(bad("BatchBegin during a rollback"));
                }
                if batch != st.committed {
                    return Err(bad("BatchBegin out of order"));
                }
            }
            JournalRecord::BatchCommit { batch, .. } => {
                if batch != st.committed
                    || !matches!(
                        self.records.last(),
                        Some(JournalRecord::BatchBegin { batch: b }) if *b == batch
                    )
                {
                    return Err(bad("BatchCommit without its BatchBegin"));
                }
            }
            JournalRecord::Complete { .. } => {
                if st.rolling_back {
                    return Err(bad("Complete during a rollback"));
                }
            }
            JournalRecord::RollbackBegin => {
                if st.rolling_back {
                    return Err(bad("nested RollbackBegin"));
                }
            }
            JournalRecord::UndoBegin { batch } => {
                if !st.rolling_back {
                    return Err(bad("UndoBegin outside a rollback"));
                }
                if batch + 1 != st.boundary() {
                    return Err(bad("UndoBegin out of order"));
                }
            }
            JournalRecord::UndoCommit { batch, .. } => {
                if !matches!(
                    self.records.last(),
                    Some(JournalRecord::UndoBegin { batch: b }) if *b == batch
                ) {
                    return Err(bad("UndoCommit without its UndoBegin"));
                }
            }
            JournalRecord::RolledBack => {
                if !st.rolling_back {
                    return Err(bad("RolledBack outside a rollback"));
                }
                if st.boundary() != 0 {
                    return Err(bad("RolledBack with batches still applied"));
                }
            }
        }
        Ok(())
    }
}

/// FNV-1a over raw bytes: the per-line checksum.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> JournalRecord {
        JournalRecord::Start {
            fingerprint: 0xFEED,
            batches: 2,
            rows_per_fragment: 8,
        }
    }

    fn committed_journal() -> MigrationJournal {
        let mut j = MigrationJournal::new();
        j.append(start()).unwrap();
        j.append(JournalRecord::BatchBegin { batch: 0 }).unwrap();
        j.append(JournalRecord::BatchCommit {
            batch: 0,
            bytes: 32.0,
        })
        .unwrap();
        j.append(JournalRecord::BatchBegin { batch: 1 }).unwrap();
        j
    }

    #[test]
    fn state_derivation_tracks_commits_not_begins() {
        let j = committed_journal();
        let st = j.state();
        assert_eq!(st.committed, 1, "an uncommitted begin is not progress");
        assert_eq!(st.boundary(), 1);
        assert_eq!(st.bytes_committed, 32.0);
        assert!(!st.terminal());
        assert_eq!(j.fingerprint(), Some(0xFEED));
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let j = committed_journal();
        let text = j.to_jsonl();
        let back = MigrationJournal::from_jsonl(&text).unwrap();
        assert_eq!(j, back);
        assert_eq!(j.state(), back.state());
    }

    #[test]
    fn corruption_is_detected() {
        let j = committed_journal();
        let text = j.to_jsonl();
        // Flip a byte inside a record payload: checksum mismatch.
        let tampered = text.replacen("32", "33", 1);
        assert!(matches!(
            MigrationJournal::from_jsonl(&tampered),
            Err(EngineError::CorruptJournal { .. })
        ));
        // Drop the Start line: illegal sequence.
        let headless: String = text.lines().skip(1).map(|l| format!("{l}\n")).collect();
        assert!(matches!(
            MigrationJournal::from_jsonl(&headless),
            Err(EngineError::CorruptJournal { .. })
        ));
        // Truncate mid-line: malformed JSON.
        let cut = &text[..text.len() - 5];
        assert!(matches!(
            MigrationJournal::from_jsonl(cut),
            Err(EngineError::CorruptJournal { .. })
        ));
    }

    #[test]
    fn truncation_at_line_granularity_is_a_valid_prefix() {
        // A crash cuts the journal at a line boundary: every prefix of a
        // legal journal is itself legal (that is what write-ahead means).
        let j = committed_journal();
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        for k in 0..=lines.len() {
            let prefix: String = lines[..k].iter().map(|l| format!("{l}\n")).collect();
            MigrationJournal::from_jsonl(&prefix).unwrap();
        }
    }

    #[test]
    fn sequence_violations_are_rejected() {
        let mut j = MigrationJournal::new();
        assert!(j.append(JournalRecord::BatchBegin { batch: 0 }).is_err());
        j.append(start()).unwrap();
        assert!(j.append(start()).is_err());
        assert!(j.append(JournalRecord::BatchBegin { batch: 1 }).is_err());
        assert!(j
            .append(JournalRecord::BatchCommit {
                batch: 0,
                bytes: 0.0
            })
            .is_err());
        j.append(JournalRecord::BatchBegin { batch: 0 }).unwrap();
        j.append(JournalRecord::BatchCommit {
            batch: 0,
            bytes: 8.0,
        })
        .unwrap();
        assert!(j.append(JournalRecord::UndoBegin { batch: 0 }).is_err());
        j.append(JournalRecord::RollbackBegin).unwrap();
        assert!(j.append(JournalRecord::BatchBegin { batch: 1 }).is_err());
        assert!(j.append(JournalRecord::RolledBack).is_err());
        j.append(JournalRecord::UndoBegin { batch: 0 }).unwrap();
        j.append(JournalRecord::UndoCommit {
            batch: 0,
            bytes: 0.0,
        })
        .unwrap();
        j.append(JournalRecord::RolledBack).unwrap();
        assert!(j.append(JournalRecord::RollbackBegin).is_err());
        assert!(j.state().rolled_back);
    }

    #[test]
    fn rollback_state_round_trips() {
        let mut j = committed_journal();
        j.append(JournalRecord::RollbackBegin).unwrap();
        j.append(JournalRecord::UndoBegin { batch: 0 }).unwrap();
        let st = j.state();
        assert!(st.rolling_back);
        assert_eq!(st.boundary(), 1, "an uncommitted undo is not progress");
        let back = MigrationJournal::from_jsonl(&j.to_jsonl()).unwrap();
        assert_eq!(back.state(), st);
    }
}
