//! Physical storage: sites holding row-store table fractions.
//!
//! A [`Fragment`] is one vertical fraction of one table on one site: the
//! subset of the table's attributes placed there, stored row-contiguously
//! (the H-store/row-store assumption — access happens in quantums of whole
//! fraction rows). Row payloads are materialized deterministically so the
//! executor really moves bytes instead of just counting them.
//!
//! [`ColumnFragment`] is the replay harness's storage: the same vertical
//! fraction, but laid out **columnarly** (one contiguous byte vector per
//! attribute, physical — i.e. rounded-up — widths) and covering only a
//! contiguous *row segment* of the table, so disjoint segments can be
//! owned mutably by different replay workers. Reads assemble a fraction
//! row into a caller-provided buffer; all meters are integer bytes.

use vpart_model::{AttrId, SiteId, TableId};

/// One vertical table fraction on one site.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The table this fraction belongs to.
    pub table: TableId,
    /// The attributes stored here, in global id order.
    pub attrs: Vec<AttrId>,
    /// Exact fraction row width in bytes (`Σ w_a`, may be fractional —
    /// widths are *average* widths).
    pub width: f64,
    /// Number of materialized rows.
    pub rows: usize,
    /// Row-contiguous payload (`rows × ceil(width)` bytes).
    data: Vec<u8>,
    byte_width: usize,
}

impl Fragment {
    /// Materializes a fragment with `rows` rows of deterministic payload.
    pub fn new(table: TableId, attrs: Vec<AttrId>, width: f64, rows: usize) -> Self {
        let byte_width = (width.ceil() as usize).max(1);
        let mut data = vec![0u8; rows * byte_width];
        // Deterministic, cheap, non-constant fill: row/table dependent.
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(table.0)
                .to_le_bytes()[0];
        }
        Self {
            table,
            attrs,
            width,
            rows,
            data,
            byte_width,
        }
    }

    /// Reads row `i % rows`, returning its payload slice.
    pub fn read_row(&self, i: usize) -> &[u8] {
        let r = i % self.rows.max(1);
        &self.data[r * self.byte_width..(r + 1) * self.byte_width]
    }

    /// Overwrites row `i % rows` with a tag byte; returns bytes written
    /// (the exact fractional width, for the meter).
    pub fn write_row(&mut self, i: usize, tag: u8) -> f64 {
        let r = i % self.rows.max(1);
        for b in &mut self.data[r * self.byte_width..(r + 1) * self.byte_width] {
            *b = tag;
        }
        self.width
    }

    /// True if this fraction stores attribute `a`.
    pub fn holds(&self, a: AttrId) -> bool {
        self.attrs.binary_search(&a).is_ok()
    }

    /// Physical payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// The raw physical payload (row-major, `byte_width` bytes per row).
    /// Recovery tests hash this to prove bit-identical fragment state.
    pub fn payload(&self) -> &[u8] {
        &self.data
    }
}

/// One columnar vertical table fraction covering a contiguous row segment.
///
/// Unlike [`Fragment`] (fractional average widths, whole-table rows), a
/// `ColumnFragment` stores each attribute in its own contiguous column at
/// its *physical* width (`ceil(w_a).max(1)` bytes) and holds only rows
/// `base_row .. base_row + rows` of the table. The replay driver builds
/// one per `(shard, site, table)` so each worker owns its shard's storage
/// outright — no locks, no atomics, byte meters in exact `u64`.
#[derive(Debug, Clone)]
pub struct ColumnFragment {
    /// The table this fraction belongs to.
    pub table: TableId,
    /// The attributes stored here, in global id order.
    pub attrs: Vec<AttrId>,
    /// First table row covered by this segment.
    pub base_row: usize,
    /// Rows in this segment.
    pub rows: usize,
    /// Physical per-attribute widths in bytes (`ceil(w_a).max(1)`).
    widths: Vec<usize>,
    /// One contiguous column per attribute (`rows × widths[i]` bytes).
    columns: Vec<Vec<u8>>,
    row_width: usize,
}

impl ColumnFragment {
    /// Materializes the segment with a deterministic, row-global fill:
    /// byte `j` of table row `r` in attribute `a`'s column depends only on
    /// `(table, a, r, j)`, never on the segment boundaries — so checksums
    /// are invariant under re-sharding.
    pub fn new(table: TableId, attrs: Vec<(AttrId, f64)>, base_row: usize, rows: usize) -> Self {
        let mut ids = Vec::with_capacity(attrs.len());
        let mut widths = Vec::with_capacity(attrs.len());
        let mut columns = Vec::with_capacity(attrs.len());
        let mut row_width = 0usize;
        for (a, w) in attrs {
            let pw = (w.ceil() as usize).max(1);
            let mut col = vec![0u8; rows * pw];
            fill_column(&mut col, table, a, base_row, pw);
            ids.push(a);
            widths.push(pw);
            columns.push(col);
            row_width += pw;
        }
        Self {
            table,
            attrs: ids,
            base_row,
            rows,
            widths,
            columns,
            row_width,
        }
    }

    /// Restores the deterministic initial fill — the replay harness's
    /// crash recovery: a pass discarded by an injected fault rolls its
    /// partial writes back to the durable (initial) payload.
    pub fn refill(&mut self) {
        let (table, base_row) = (self.table, self.base_row);
        for ((&a, &pw), col) in self
            .attrs
            .iter()
            .zip(&self.widths)
            .zip(self.columns.iter_mut())
        {
            fill_column(col, table, a, base_row, pw);
        }
    }

    /// Physical width of one fraction row (`Σ ceil(w_a).max(1)`).
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Physical width of attribute `a` here, or 0 when absent.
    pub fn attr_width(&self, a: AttrId) -> usize {
        match self.attrs.binary_search(&a) {
            Ok(i) => self.widths[i],
            Err(_) => 0,
        }
    }

    /// Assembles table row `row` (a *global* row index inside this
    /// segment) into `buf`, gathering each attribute's bytes from its
    /// column. Returns the physical bytes read. `buf` must be at least
    /// [`row_width`](Self::row_width) long — replay preallocates it once
    /// per site and reuses it for every read.
    pub fn read_row_into(&self, row: usize, buf: &mut [u8]) -> usize {
        debug_assert!(row >= self.base_row && row < self.base_row + self.rows);
        let local = row - self.base_row;
        let mut at = 0usize;
        for (w, col) in self.widths.iter().zip(&self.columns) {
            buf[at..at + w].copy_from_slice(&col[local * w..(local + 1) * w]);
            at += w;
        }
        at
    }

    /// Overwrites table row `row` of every column with `tag`; returns the
    /// physical bytes written.
    pub fn write_row(&mut self, row: usize, tag: u8) -> usize {
        debug_assert!(row >= self.base_row && row < self.base_row + self.rows);
        let local = row - self.base_row;
        for (w, col) in self.widths.iter().zip(self.columns.iter_mut()) {
            for b in &mut col[local * w..(local + 1) * w] {
                *b = tag;
            }
        }
        self.row_width
    }

    /// Physical payload size of this segment in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }
}

/// Deterministic, row-global columnar fill: byte `j` of table row `r`
/// depends only on `(table, a, r, j)` — see [`ColumnFragment::new`].
fn fill_column(col: &mut [u8], table: TableId, a: AttrId, base_row: usize, pw: usize) {
    for (i, b) in col.iter_mut().enumerate() {
        let r = base_row + i / pw;
        let j = i % pw;
        *b = ((r * pw + j) as u32)
            .wrapping_mul(2654435761)
            .wrapping_add(table.0 ^ (a.0 << 8))
            .to_le_bytes()[0];
    }
}

/// One site: a set of table fractions plus access counters.
#[derive(Debug, Clone)]
pub struct Site {
    /// The site's id.
    pub id: SiteId,
    /// Fractions hosted here, grouped per table (`fragments[t]` is `None`
    /// when no attribute of table `t` lives on this site).
    pub fragments: Vec<Option<Fragment>>,
}

impl Site {
    /// Creates an empty site for `n_tables` tables.
    pub fn new(id: SiteId, n_tables: usize) -> Self {
        Self {
            id,
            fragments: vec![None; n_tables],
        }
    }

    /// The fraction of table `t` on this site, if any.
    pub fn fragment(&self, t: TableId) -> Option<&Fragment> {
        self.fragments[t.index()].as_ref()
    }

    /// Mutable access to the fraction of table `t`.
    pub fn fragment_mut(&mut self, t: TableId) -> Option<&mut Fragment> {
        self.fragments[t.index()].as_mut()
    }

    /// Total materialized bytes on this site.
    pub fn stored_bytes(&self) -> usize {
        self.fragments
            .iter()
            .flatten()
            .map(Fragment::payload_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_round_trip() {
        let mut f = Fragment::new(TableId(0), vec![AttrId(0), AttrId(2)], 12.0, 8);
        assert_eq!(f.payload_bytes(), 8 * 12);
        assert!(f.holds(AttrId(2)));
        assert!(!f.holds(AttrId(1)));
        let before = f.read_row(3).to_vec();
        let w = f.write_row(3, 0xAB);
        assert_eq!(w, 12.0);
        assert_eq!(f.read_row(3), vec![0xAB; 12].as_slice());
        assert_ne!(before, f.read_row(3));
        // Row indices wrap.
        assert_eq!(f.read_row(11), f.read_row(3));
    }

    #[test]
    fn fractional_widths_round_up_physically() {
        let f = Fragment::new(TableId(1), vec![AttrId(5)], 2.5, 4);
        assert_eq!(f.payload_bytes(), 4 * 3);
        assert_eq!(f.width, 2.5);
    }

    #[test]
    fn column_fragment_round_trip() {
        let mut f = ColumnFragment::new(TableId(0), vec![(AttrId(0), 4.0), (AttrId(2), 2.5)], 0, 8);
        // Physical widths round up: 4 + 3 = 7 bytes per row.
        assert_eq!(f.row_width(), 7);
        assert_eq!(f.payload_bytes(), 8 * 7);
        assert_eq!(f.attr_width(AttrId(0)), 4);
        assert_eq!(f.attr_width(AttrId(2)), 3);
        assert_eq!(f.attr_width(AttrId(1)), 0);
        let mut buf = vec![0u8; 7];
        assert_eq!(f.read_row_into(3, &mut buf), 7);
        let before = buf.clone();
        assert_eq!(f.write_row(3, 0xCD), 7);
        f.read_row_into(3, &mut buf);
        assert_eq!(buf, vec![0xCD; 7]);
        assert_ne!(before, buf);
    }

    /// The fill is row-global: the same table row carries the same bytes
    /// no matter which segment materializes it.
    #[test]
    fn column_fragment_fill_is_segment_invariant() {
        let attrs = vec![(AttrId(0), 4.0), (AttrId(1), 8.0)];
        let whole = ColumnFragment::new(TableId(2), attrs.clone(), 0, 16);
        let upper = ColumnFragment::new(TableId(2), attrs, 10, 6);
        let mut a = vec![0u8; whole.row_width()];
        let mut b = vec![0u8; upper.row_width()];
        for row in 10..16 {
            whole.read_row_into(row, &mut a);
            upper.read_row_into(row, &mut b);
            assert_eq!(a, b, "row {row} differs between segment layouts");
        }
    }

    #[test]
    fn site_holds_fragments_per_table() {
        let mut s = Site::new(SiteId(0), 3);
        assert!(s.fragment(TableId(1)).is_none());
        s.fragments[1] = Some(Fragment::new(TableId(1), vec![AttrId(0)], 4.0, 2));
        assert!(s.fragment(TableId(1)).is_some());
        assert_eq!(s.stored_bytes(), 8);
        s.fragment_mut(TableId(1)).unwrap().write_row(0, 1);
    }
}
