//! Physical storage: sites holding row-store table fractions.
//!
//! A [`Fragment`] is one vertical fraction of one table on one site: the
//! subset of the table's attributes placed there, stored row-contiguously
//! (the H-store/row-store assumption — access happens in quantums of whole
//! fraction rows). Row payloads are materialized deterministically so the
//! executor really moves bytes instead of just counting them.

use vpart_model::{AttrId, SiteId, TableId};

/// One vertical table fraction on one site.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// The table this fraction belongs to.
    pub table: TableId,
    /// The attributes stored here, in global id order.
    pub attrs: Vec<AttrId>,
    /// Exact fraction row width in bytes (`Σ w_a`, may be fractional —
    /// widths are *average* widths).
    pub width: f64,
    /// Number of materialized rows.
    pub rows: usize,
    /// Row-contiguous payload (`rows × ceil(width)` bytes).
    data: Vec<u8>,
    byte_width: usize,
}

impl Fragment {
    /// Materializes a fragment with `rows` rows of deterministic payload.
    pub fn new(table: TableId, attrs: Vec<AttrId>, width: f64, rows: usize) -> Self {
        let byte_width = (width.ceil() as usize).max(1);
        let mut data = vec![0u8; rows * byte_width];
        // Deterministic, cheap, non-constant fill: row/table dependent.
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(table.0)
                .to_le_bytes()[0];
        }
        Self {
            table,
            attrs,
            width,
            rows,
            data,
            byte_width,
        }
    }

    /// Reads row `i % rows`, returning its payload slice.
    pub fn read_row(&self, i: usize) -> &[u8] {
        let r = i % self.rows.max(1);
        &self.data[r * self.byte_width..(r + 1) * self.byte_width]
    }

    /// Overwrites row `i % rows` with a tag byte; returns bytes written
    /// (the exact fractional width, for the meter).
    pub fn write_row(&mut self, i: usize, tag: u8) -> f64 {
        let r = i % self.rows.max(1);
        for b in &mut self.data[r * self.byte_width..(r + 1) * self.byte_width] {
            *b = tag;
        }
        self.width
    }

    /// True if this fraction stores attribute `a`.
    pub fn holds(&self, a: AttrId) -> bool {
        self.attrs.binary_search(&a).is_ok()
    }

    /// Physical payload size in bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }
}

/// One site: a set of table fractions plus access counters.
#[derive(Debug, Clone)]
pub struct Site {
    /// The site's id.
    pub id: SiteId,
    /// Fractions hosted here, grouped per table (`fragments[t]` is `None`
    /// when no attribute of table `t` lives on this site).
    pub fragments: Vec<Option<Fragment>>,
}

impl Site {
    /// Creates an empty site for `n_tables` tables.
    pub fn new(id: SiteId, n_tables: usize) -> Self {
        Self {
            id,
            fragments: vec![None; n_tables],
        }
    }

    /// The fraction of table `t` on this site, if any.
    pub fn fragment(&self, t: TableId) -> Option<&Fragment> {
        self.fragments[t.index()].as_ref()
    }

    /// Mutable access to the fraction of table `t`.
    pub fn fragment_mut(&mut self, t: TableId) -> Option<&mut Fragment> {
        self.fragments[t.index()].as_mut()
    }

    /// Total materialized bytes on this site.
    pub fn stored_bytes(&self) -> usize {
        self.fragments
            .iter()
            .flatten()
            .map(Fragment::payload_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_round_trip() {
        let mut f = Fragment::new(TableId(0), vec![AttrId(0), AttrId(2)], 12.0, 8);
        assert_eq!(f.payload_bytes(), 8 * 12);
        assert!(f.holds(AttrId(2)));
        assert!(!f.holds(AttrId(1)));
        let before = f.read_row(3).to_vec();
        let w = f.write_row(3, 0xAB);
        assert_eq!(w, 12.0);
        assert_eq!(f.read_row(3), vec![0xAB; 12].as_slice());
        assert_ne!(before, f.read_row(3));
        // Row indices wrap.
        assert_eq!(f.read_row(11), f.read_row(3));
    }

    #[test]
    fn fractional_widths_round_up_physically() {
        let f = Fragment::new(TableId(1), vec![AttrId(5)], 2.5, 4);
        assert_eq!(f.payload_bytes(), 4 * 3);
        assert_eq!(f.width, 2.5);
    }

    #[test]
    fn site_holds_fragments_per_table() {
        let mut s = Site::new(SiteId(0), 3);
        assert!(s.fragment(TableId(1)).is_none());
        s.fragments[1] = Some(Fragment::new(TableId(1), vec![AttrId(0)], 4.0, 2));
        assert!(s.fragment(TableId(1)).is_some());
        assert_eq!(s.stored_bytes(), 8);
        s.fragment_mut(TableId(1)).unwrap().write_row(0, 1);
    }
}
