//! Production-rate trace replay with true-byte metering.
//!
//! [`Deployment::execute`](crate::Deployment::execute) meters *fractional*
//! bytes (average widths × fractional row counts) and therefore agrees
//! with the cost model exactly — by construction. This module answers the
//! harder question: how far is the model from what an executor moving
//! **physical** bytes at full speed actually does?
//!
//! A [`ReplayDeployment`] materializes the partitioning as columnar
//! storage ([`ColumnFragment`]) split into a fixed number of contiguous
//! *row-range shards*. A [`ReplayStream`] expands an instance (or a
//! recorded [`Trace`]) into a seeded, deterministic stream of row-level
//! touches. The driver replays the stream with `std::thread::scope`
//! workers, each owning a contiguous chunk of shards outright:
//!
//! * every worker walks the **whole** stream and executes only the
//!   touches whose row falls in its shards — row ownership, no locks;
//! * byte meters are per-shard `u64`s merged in shard order, so totals
//!   are **bit-identical across thread counts** (the shard count, not the
//!   thread count, fixes the summation structure);
//! * pass 0 is the metered pass; subsequent passes repeat the same work
//!   until the configured duration elapses and only feed the
//!   throughput clock.
//!
//! The measured bytes are compared against the cost model's prediction
//! ([`PredictedBytes`], computed by the caller from
//! `vpart_core::predicted_txn_bytes` — the engine deliberately does not
//! depend on the solver crates) yielding a [`ReplayModelError`]: the
//! relative gap between predicted and true bytes, which quantifies the
//! model's quantization error (average widths and fractional row counts
//! vs. physical rounded-up columns and integer rows).

use crate::faults::{FaultInjector, FP_REPLAY_PASS};
use crate::storage::ColumnFragment;
use crate::trace::Trace;
use std::time::{Duration, Instant};
use vpart_model::{AttrId, Instance, Partitioning, TxnId};
use vpart_obs::{HealthMonitor, Obs};

use crate::executor::EngineError;

/// Default shard count: fixed independently of `threads` so meter
/// summation structure — and thus every byte total — is identical no
/// matter how many workers replay the stream.
pub const DEFAULT_SHARDS: usize = 32;

const FNV_PRIME: u64 = 1099511628211;

/// splitmix64 finalizer: the row-touch hash.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic stream of transaction executions to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayStream {
    /// Transaction executions in order.
    pub executions: Vec<TxnId>,
    /// Seed for the row-touch hash (which table rows each execution hits).
    pub seed: u64,
}

impl ReplayStream {
    /// Every transaction exactly `rounds` times, round-robin.
    pub fn uniform(instance: &Instance, rounds: usize, seed: u64) -> Self {
        Self {
            executions: Trace::uniform(instance, rounds).executions,
            seed,
        }
    }

    /// `total` executions sampled proportionally to each transaction's
    /// total query frequency (seeded, deterministic).
    pub fn weighted(instance: &Instance, total: usize, seed: u64) -> Self {
        Self {
            executions: Trace::weighted(instance, total, seed).executions,
            seed,
        }
    }

    /// Replays a recorded trace.
    pub fn from_trace(trace: &Trace, seed: u64) -> Self {
        Self {
            executions: trace.executions.clone(),
            seed,
        }
    }

    /// Number of executions per pass.
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// True if the stream has no executions.
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// How many times each transaction appears.
    pub fn counts(&self, n_txns: usize) -> Vec<usize> {
        let mut c = vec![0; n_txns];
        for t in &self.executions {
            c[t.index()] += 1;
        }
        c
    }
}

/// How the replay stream picks which physical row a touch hits.
///
/// The paper's cost model assumes uniform row touches; the skewed
/// generators measure how far non-uniform access pushes the true-byte
/// meters and throughput. All variants map the same deterministic
/// splitmix64 touch hash, so skewed replays stay bit-identical across
/// thread counts and runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RowSkew {
    /// Uniform over all rows (the paper's assumption; the default).
    #[default]
    Uniform,
    /// Zipfian with parameter `theta ∈ (0, 1)` (YCSB's generator: larger
    /// `theta` ⇒ heavier head; 0.99 is YCSB's default "zipfian").
    Zipf {
        /// The Zipf exponent.
        theta: f64,
    },
    /// A hot set of `frac ∈ (0, 1)` of the rows receives `1 − frac` of
    /// the touches (`hotspot:0.1` ⇒ 10% of rows take 90% of traffic).
    Hotspot {
        /// The hot fraction of rows.
        frac: f64,
    },
}

impl RowSkew {
    /// Parses the CLI's `--skew` syntax: `uniform`, `zipf:<theta>` or
    /// `hotspot:<frac>`.
    pub fn parse(s: &str) -> Result<Self, EngineError> {
        if s == "uniform" {
            return Ok(Self::Uniform);
        }
        if let Some(t) = s.strip_prefix("zipf:") {
            let theta: f64 = t.parse().map_err(|_| EngineError::InvalidReplay {
                what: "zipf skew wants a numeric theta (e.g. zipf:0.99)",
            })?;
            if !(theta > 0.0 && theta < 1.0) {
                return Err(EngineError::InvalidReplay {
                    what: "zipf theta must be in (0, 1)",
                });
            }
            return Ok(Self::Zipf { theta });
        }
        if let Some(fr) = s.strip_prefix("hotspot:") {
            let frac: f64 = fr.parse().map_err(|_| EngineError::InvalidReplay {
                what: "hotspot skew wants a numeric fraction (e.g. hotspot:0.2)",
            })?;
            if !(frac > 0.0 && frac < 1.0) {
                return Err(EngineError::InvalidReplay {
                    what: "hotspot fraction must be in (0, 1)",
                });
            }
            return Ok(Self::Hotspot { frac });
        }
        Err(EngineError::InvalidReplay {
            what: "unknown skew (want uniform, zipf:<theta> or hotspot:<frac>)",
        })
    }
}

/// A [`RowSkew`] compiled against a concrete row count: maps the uniform
/// 64-bit touch hash to a row index. Pure and `Sync` — workers share it.
#[derive(Debug, Clone, Copy)]
enum SkewMap {
    Uniform {
        n: u64,
    },
    /// YCSB's zipfian mapper with `ζ(n, θ)` precomputed.
    Zipf {
        n: f64,
        zetan: f64,
        eta: f64,
        alpha: f64,
        half_pow_theta: f64,
    },
    Hotspot {
        hot: u64,
        cold: u64,
        hot_traffic: f64,
    },
}

impl SkewMap {
    fn new(skew: RowSkew, n: u64) -> Self {
        match skew {
            RowSkew::Uniform => Self::Uniform { n },
            RowSkew::Zipf { theta } => {
                let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
                let zeta2 = 1.0 + 0.5f64.powf(theta);
                let nf = n as f64;
                let eta = (1.0 - (2.0 / nf).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
                Self::Zipf {
                    n: nf,
                    zetan,
                    eta,
                    alpha: 1.0 / (1.0 - theta),
                    half_pow_theta: 0.5f64.powf(theta),
                }
            }
            RowSkew::Hotspot { frac } => {
                let hot = (((n as f64) * frac).ceil() as u64).clamp(1, n);
                Self::Hotspot {
                    hot,
                    cold: n - hot,
                    hot_traffic: 1.0 - frac,
                }
            }
        }
    }

    /// Maps the touch hash `h` to a row index in `[0, n)`.
    #[inline]
    fn map(&self, h: u64) -> usize {
        // Top 53 bits of the hash → uniform u ∈ [0, 1).
        let u = ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        match *self {
            Self::Uniform { n } => (h % n) as usize,
            Self::Zipf {
                n,
                zetan,
                eta,
                alpha,
                half_pow_theta,
            } => {
                let uz = u * zetan;
                if uz < 1.0 {
                    0
                } else if uz < 1.0 + half_pow_theta {
                    1
                } else {
                    let r = (n * (eta * u - eta + 1.0).powf(alpha)) as usize;
                    r.min(n as usize - 1)
                }
            }
            Self::Hotspot {
                hot,
                cold,
                hot_traffic,
            } => {
                // A second, independent hash picks the row within the
                // chosen region (reusing `h` would correlate with `u`).
                let h2 = mix(h ^ 0xD00D_F00D_0000_0001);
                if cold == 0 || u < hot_traffic {
                    (h2 % hot) as usize
                } else {
                    (hot + h2 % cold) as usize
                }
            }
        }
    }
}

/// Replay driver knobs.
#[derive(Debug, Clone, Default)]
pub struct ReplayConfig {
    /// Worker threads (clamped to `[1, shards]`). Zero is treated as 1.
    pub threads: usize,
    /// Keep replaying whole passes until at least this much wall time has
    /// elapsed (zero ⇒ exactly one pass — the fully deterministic mode).
    pub min_duration: Duration,
    /// Hard cap on passes regardless of duration (zero is treated as 1).
    pub max_passes: usize,
    /// Row-touch distribution (uniform by default).
    pub skew: RowSkew,
    /// Fault injection: the [`FP_REPLAY_PASS`] point is hit once per
    /// pass; a firing arm crashes that pass, which is discarded (meters
    /// reset if it was the metered pass) and retried — so injected runs
    /// end with meters bit-identical to fault-free ones.
    pub faults: FaultInjector,
}

impl ReplayConfig {
    /// `threads` workers, one metered pass, no timing passes.
    pub fn deterministic(threads: usize) -> Self {
        Self {
            threads,
            max_passes: 1,
            ..Self::default()
        }
    }

    /// `threads` workers replaying for at least `min_duration`.
    pub fn timed(threads: usize, min_duration: Duration) -> Self {
        Self {
            threads,
            min_duration,
            max_passes: usize::MAX,
            ..Self::default()
        }
    }
}

/// The cost model's predicted bytes for one replay pass of a stream.
///
/// Callers build this by summing `vpart_core::predicted_txn_bytes` over
/// the stream's per-transaction counts; the engine takes it as opaque
/// numbers so the model and the meter stay independently implemented.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictedBytes {
    /// Predicted bytes read by storage access methods.
    pub read: f64,
    /// Predicted bytes written by storage access methods.
    pub written: f64,
    /// Predicted bytes shipped between sites.
    pub transferred: f64,
}

impl PredictedBytes {
    /// Total predicted bytes.
    pub fn total(&self) -> f64 {
        self.read + self.written + self.transferred
    }
}

/// Relative model-vs-measured gap, per component and overall.
///
/// Ratios are signed: `(measured − predicted) / predicted`. A component
/// predicted as zero yields `0.0` when the meter also saw zero and
/// `f64::INFINITY` otherwise (the model missed real traffic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayModelError {
    /// What the model predicted for the metered pass.
    pub predicted: PredictedBytes,
    /// What the meter measured (physical bytes, exact integers as `f64`).
    pub measured: PredictedBytes,
    /// Signed relative error on bytes read.
    pub read_ratio: f64,
    /// Signed relative error on bytes written.
    pub write_ratio: f64,
    /// Signed relative error on bytes transferred.
    pub transfer_ratio: f64,
    /// Signed relative error on total bytes — the headline number.
    pub overall_ratio: f64,
}

fn signed_ratio(measured: f64, predicted: f64) -> f64 {
    if predicted <= f64::EPSILON {
        if measured <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (measured - predicted) / predicted
    }
}

impl ReplayModelError {
    fn new(predicted: PredictedBytes, measured: PredictedBytes) -> Self {
        Self {
            predicted,
            measured,
            read_ratio: signed_ratio(measured.read, predicted.read),
            write_ratio: signed_ratio(measured.written, predicted.written),
            transfer_ratio: signed_ratio(measured.transferred, predicted.transferred),
            overall_ratio: signed_ratio(measured.total(), predicted.total()),
        }
    }
}

/// Exact per-site physical byte meters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteBytes {
    /// Physical bytes read by storage access methods.
    pub bytes_read: u64,
    /// Physical bytes written by storage access methods.
    pub bytes_written: u64,
}

impl SiteBytes {
    /// Total storage work on this site.
    pub fn work(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Result of a replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Per-site physical meters from the metered pass (pass 0).
    pub per_site: Vec<SiteBytes>,
    /// Physical bytes shipped between sites during the metered pass.
    pub transfer_bytes: u64,
    /// Executions per pass (the stream length).
    pub stream_len: usize,
    /// Whole passes replayed (≥ 1; pass 0 is the metered one).
    pub passes: usize,
    /// Total transaction executions across all passes.
    pub txns_replayed: usize,
    /// Physical rows read during the metered pass.
    pub rows_read: u64,
    /// Physical rows written during the metered pass.
    pub rows_written: u64,
    /// Checksum over read payloads of the metered pass (forces real data
    /// movement; reproducibility probe — thread-count independent).
    pub checksum: u64,
    /// Wall time across all passes.
    pub elapsed: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Row-range shards used.
    pub shards: usize,
    /// Passes crashed by an injected [`FP_REPLAY_PASS`] fault, discarded
    /// and retried (they count toward neither `passes` nor the meters).
    pub passes_injected: usize,
    /// Model-vs-measured gap, when a prediction was supplied.
    pub model_error: Option<ReplayModelError>,
}

impl ReplayReport {
    /// Aggregated meters across sites.
    pub fn totals(&self) -> SiteBytes {
        let mut t = SiteBytes::default();
        for s in &self.per_site {
            t.bytes_read += s.bytes_read;
            t.bytes_written += s.bytes_written;
        }
        t
    }

    /// Measured throughput in transaction executions per second.
    pub fn throughput_txns_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.txns_replayed as f64 / secs
    }

    /// The meter fields that must be bit-identical across thread counts
    /// and runs: per-site bytes, transfer, rows, stream length, checksum.
    pub fn meter_fingerprint(&self) -> (Vec<SiteBytes>, u64, u64, u64, usize, u64) {
        (
            self.per_site.clone(),
            self.transfer_bytes,
            self.rows_read,
            self.rows_written,
            self.stream_len,
            self.checksum,
        )
    }
}

/// Per-shard meter: owned by exactly one worker during a pass, merged in
/// shard order afterwards — the key to thread-count-independent totals.
#[derive(Debug, Clone, Default)]
struct ShardMeter {
    site_read: Vec<u64>,
    site_written: Vec<u64>,
    transfer: u64,
    rows_read: u64,
    rows_written: u64,
    checksum: u64,
}

impl ShardMeter {
    fn new(n_sites: usize) -> Self {
        Self {
            site_read: vec![0; n_sites],
            site_written: vec![0; n_sites],
            ..Self::default()
        }
    }
}

/// One site's storage inside one shard: columnar fragments per table plus
/// a preallocated row-assembly buffer reused by every read.
#[derive(Debug, Clone)]
struct ShardSite {
    fragments: Vec<Option<ColumnFragment>>,
    buf: Vec<u8>,
}

/// One contiguous row-range shard: all sites' fragment segments for those
/// rows, plus the shard's meter. A worker owns whole shards — every
/// byte a touch moves lives inside the shard that owns its row.
#[derive(Debug, Clone)]
struct StoreShard {
    sites: Vec<ShardSite>,
    meter: ShardMeter,
}

/// Per-table touch plan of one query.
#[derive(Debug, Clone)]
struct TablePlan {
    table_idx: usize,
    /// Physical rows touched per repetition (`round(n).max(1)`).
    n_phys: usize,
    /// Physical transfer bytes per touched row: `Σ_{a∈α∩table}
    /// ceil(w_a) × |replicas(a) ∖ {home}|` (writes only).
    transfer_per_row: u64,
}

/// Precompiled execution plan of one query.
#[derive(Debug, Clone)]
struct QueryPlan {
    write: bool,
    /// Repetitions per execution (`round(f_q).max(1)` — engine semantics).
    reps: usize,
    /// Stable hash key distinguishing this query's touches.
    key: u64,
    tables: Vec<TablePlan>,
}

/// Precompiled plan of one transaction.
#[derive(Debug, Clone)]
struct TxnPlan {
    home: usize,
    queries: Vec<QueryPlan>,
}

/// A partitioning deployed as sharded columnar storage for replay.
#[derive(Debug, Clone)]
pub struct ReplayDeployment<'a> {
    instance: &'a Instance,
    partitioning: Partitioning,
    shards: Vec<StoreShard>,
    plans: Vec<TxnPlan>,
    rows_per_table: usize,
    rows_per_shard: usize,
    obs: Obs,
    health: Option<HealthMonitor>,
}

impl<'a> ReplayDeployment<'a> {
    /// Validates `partitioning` and materializes columnar storage:
    /// `rows_per_table` rows of every table, vertically fractioned per
    /// site, split into `shards` contiguous row-range shards.
    pub fn new(
        instance: &'a Instance,
        partitioning: &Partitioning,
        rows_per_table: usize,
        shards: usize,
    ) -> Result<Self, EngineError> {
        partitioning.validate(instance, false)?;
        let rows_per_table = rows_per_table.max(1);
        let n_shards = shards.clamp(1, rows_per_table);
        let rows_per_shard = rows_per_table.div_ceil(n_shards);
        let schema = instance.schema();
        let n_sites = partitioning.n_sites();
        let n_tables = instance.n_tables();

        let mut store = Vec::with_capacity(n_shards);
        for s in 0..n_shards {
            let base = s * rows_per_shard;
            let rows = rows_per_shard.min(rows_per_table.saturating_sub(base));
            let mut sites = Vec::with_capacity(n_sites);
            for si in 0..n_sites {
                let site_id = vpart_model::SiteId::from_index(si);
                let mut fragments = Vec::with_capacity(n_tables);
                let mut buf_len = 0usize;
                for t in 0..n_tables {
                    let table = vpart_model::TableId::from_index(t);
                    let attrs: Vec<(AttrId, f64)> = schema
                        .table_attrs(table)
                        .map(AttrId::from_index)
                        .filter(|&a| partitioning.has_attr(a, site_id))
                        .map(|a| (a, schema.width(a)))
                        .collect();
                    if attrs.is_empty() || rows == 0 {
                        fragments.push(None);
                    } else {
                        let frag = ColumnFragment::new(table, attrs, base, rows);
                        buf_len = buf_len.max(frag.row_width());
                        fragments.push(Some(frag));
                    }
                }
                sites.push(ShardSite {
                    fragments,
                    buf: vec![0u8; buf_len],
                });
            }
            store.push(StoreShard {
                sites,
                meter: ShardMeter::new(n_sites),
            });
        }

        // Precompile per-transaction touch plans: everything the hot loop
        // needs, resolved to indices and integer widths up front.
        let mut plans = Vec::with_capacity(instance.n_txns());
        for t in 0..instance.n_txns() {
            let txn = TxnId::from_index(t);
            let home = partitioning.site_of(txn);
            let mut queries = Vec::new();
            for &qid in &instance.workload().txn(txn).queries {
                let q = instance.workload().query(qid);
                let mut tables = Vec::with_capacity(q.table_rows.len());
                for &(table, n) in &q.table_rows {
                    let mut transfer_per_row = 0u64;
                    if q.kind.is_write() {
                        for &a in &q.attrs {
                            if schema.table_of(a) == table {
                                let w = (schema.width(a).ceil() as u64).max(1);
                                let remote =
                                    partitioning.attr_sites(a).filter(|&s| s != home).count()
                                        as u64;
                                transfer_per_row += w * remote;
                            }
                        }
                    }
                    tables.push(TablePlan {
                        table_idx: table.index(),
                        n_phys: n.round().max(1.0) as usize,
                        transfer_per_row,
                    });
                }
                queries.push(QueryPlan {
                    write: q.kind.is_write(),
                    reps: q.frequency.round().max(1.0) as usize,
                    key: mix(0x5EED_0000_0000_0000 ^ qid.index() as u64),
                    tables,
                });
            }
            plans.push(TxnPlan {
                home: home.index(),
                queries,
            });
        }

        Ok(Self {
            instance,
            partitioning: partitioning.clone(),
            shards: store,
            plans,
            rows_per_table,
            rows_per_shard,
            obs: Obs::disabled(),
            health: None,
        })
    }

    /// Attaches an observability sink: [`replay`](Self::replay) then
    /// records a `replay` span, the `replay_txns_total` /
    /// `replay_bytes_total` / `replay_passes_total` counters and the
    /// `model_error_ratio` / `replay_txns_per_sec` gauges. Off by default.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a live health monitor: [`replay`](Self::replay) ticks it
    /// once per completed pass (logical clock = pass index) plus a
    /// closing tick that sees the end-of-run gauges. Requires an enabled
    /// obs handle (see [`with_obs`](Self::with_obs)) to have any effect.
    pub fn with_health(mut self, monitor: HealthMonitor) -> Self {
        self.health = Some(monitor);
        self
    }

    /// The attached health monitor, if any.
    pub fn health(&self) -> Option<&HealthMonitor> {
        self.health.as_ref()
    }

    /// The deployed partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The instance this deployment serves.
    pub fn instance(&self) -> &Instance {
        self.instance
    }

    /// Rows materialized per table.
    pub fn rows_per_table(&self) -> usize {
        self.rows_per_table
    }

    /// Row-range shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total physically materialized bytes across shards and sites.
    pub fn stored_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|sh| &sh.sites)
            .flat_map(|s| s.fragments.iter().flatten())
            .map(ColumnFragment::payload_bytes)
            .sum()
    }

    /// Replays `stream` and reports exact physical byte meters, optionally
    /// judged against the model's `predicted` bytes for one pass.
    ///
    /// Pass 0 is metered; further whole passes run until
    /// `config.min_duration` elapses (or `max_passes` is hit) and count
    /// toward throughput only. Meters are bit-identical across thread
    /// counts and repeated runs with the same stream and shard count.
    pub fn replay(
        &mut self,
        stream: &ReplayStream,
        config: &ReplayConfig,
        predicted: Option<&PredictedBytes>,
    ) -> Result<ReplayReport, EngineError> {
        if stream.is_empty() {
            return Err(EngineError::InvalidReplay {
                what: "replay stream has no executions",
            });
        }
        for t in &stream.executions {
            if t.index() >= self.plans.len() {
                return Err(EngineError::InvalidReplay {
                    what: "stream references a transaction outside the instance",
                });
            }
        }
        let n_sites = self.partitioning.n_sites();
        let n_shards = self.shards.len();
        let threads = config.threads.clamp(1, n_shards);
        let max_passes = config.max_passes.max(1);
        let span = self.obs.span_begin(
            "replay",
            &[
                ("stream_len", stream.len().into()),
                ("threads", threads.into()),
                ("shards", n_shards.into()),
            ],
        );

        for shard in &mut self.shards {
            shard.meter = ShardMeter::new(n_sites);
        }

        let skew = SkewMap::new(config.skew, self.rows_per_table as u64);
        let mut faults = config.faults.clone();
        let start = Instant::now();
        let mut passes = 0usize;
        let mut passes_injected = 0usize;
        loop {
            let metered = passes == 0;
            self.run_pass(stream, threads, metered, skew);
            if faults.hit(FP_REPLAY_PASS) {
                // The pass crashed: recovery rolls its partial writes
                // back to the durable fill, the metered pass also resets
                // its meters, and the pass retries — so an injected run
                // converges to the fault-free meters bit-for-bit.
                passes_injected += 1;
                if passes_injected >= 1024 {
                    // Fatal: the black box (when armed) gets the last-N
                    // records before the error surfaces.
                    let _ = self.obs.dump_flight(FP_REPLAY_PASS);
                    return Err(EngineError::Injected {
                        point: FP_REPLAY_PASS.to_string(),
                    });
                }
                for shard in &mut self.shards {
                    for site in &mut shard.sites {
                        for frag in site.fragments.iter_mut().flatten() {
                            frag.refill();
                        }
                    }
                    if metered {
                        shard.meter = ShardMeter::new(n_sites);
                    }
                }
                continue;
            }
            passes += 1;
            if self.obs.is_enabled() {
                // Per-pass accounting (instead of one bulk add after the
                // loop) so the health monitor's per-pass samples see the
                // counters grow and can derive rates.
                self.obs
                    .counter_add("replay_txns_total", stream.len() as f64);
                self.obs.counter_inc("replay_passes_total");
                if let Some(health) = &mut self.health {
                    health.tick((passes - 1) as u64, &self.obs);
                }
            }
            if passes >= max_passes || start.elapsed() >= config.min_duration {
                break;
            }
        }
        let elapsed = start.elapsed();

        // Merge in shard order: the summation structure depends only on
        // the (fixed) shard count, never on the thread count.
        let mut per_site = vec![SiteBytes::default(); n_sites];
        let mut transfer = 0u64;
        let mut rows_read = 0u64;
        let mut rows_written = 0u64;
        let mut checksum = 0u64;
        for shard in &self.shards {
            for (si, site) in per_site.iter_mut().enumerate() {
                site.bytes_read += shard.meter.site_read[si];
                site.bytes_written += shard.meter.site_written[si];
            }
            transfer += shard.meter.transfer;
            rows_read += shard.meter.rows_read;
            rows_written += shard.meter.rows_written;
            checksum = checksum
                .wrapping_mul(FNV_PRIME)
                .wrapping_add(shard.meter.checksum);
        }

        let measured = PredictedBytes {
            read: per_site.iter().map(|s| s.bytes_read as f64).sum(),
            written: per_site.iter().map(|s| s.bytes_written as f64).sum(),
            transferred: transfer as f64,
        };
        let model_error = predicted.map(|p| ReplayModelError::new(*p, measured));

        let report = ReplayReport {
            per_site,
            transfer_bytes: transfer,
            stream_len: stream.len(),
            passes,
            txns_replayed: passes * stream.len(),
            rows_read,
            rows_written,
            checksum,
            elapsed,
            threads,
            shards: n_shards,
            passes_injected,
            model_error,
        };

        if self.obs.is_enabled() {
            self.obs.counter_add(
                "replay_bytes_total",
                measured.total() * report.passes as f64,
            );
            self.obs
                .gauge_set("replay_txns_per_sec", report.throughput_txns_per_sec());
            if let Some(me) = &report.model_error {
                self.obs.gauge_set("model_error_ratio", me.overall_ratio);
            }
            self.obs.span_end(
                span,
                &[
                    ("passes", report.passes.into()),
                    ("txns_replayed", report.txns_replayed.into()),
                    ("bytes_read", report.totals().bytes_read.into()),
                    ("bytes_written", report.totals().bytes_written.into()),
                    ("transfer_bytes", report.transfer_bytes.into()),
                    ("checksum", report.checksum.into()),
                ],
            );
        }
        if let Some(health) = &mut self.health {
            if self.obs.is_enabled() {
                // A closing tick one past the last pass index, so the
                // end-of-run gauges (model error, throughput) are
                // sampled and judged by the alert rules.
                health.tick(report.passes as u64, &self.obs);
            }
        }

        Ok(report)
    }

    /// One whole pass over the stream: workers own disjoint shard chunks,
    /// each walks the full stream and executes only its rows' touches.
    fn run_pass(&mut self, stream: &ReplayStream, threads: usize, metered: bool, skew: SkewMap) {
        let plans = &self.plans;
        let rows_per_shard = self.rows_per_shard;
        let n_shards = self.shards.len();
        let chunk = n_shards.div_ceil(threads);
        let seed = stream.seed;
        std::thread::scope(|scope| {
            for (ci, shard_chunk) in self.shards.chunks_mut(chunk).enumerate() {
                let first_shard = ci * chunk;
                scope.spawn(move || {
                    let owned = first_shard..first_shard + shard_chunk.len();
                    for (exec_idx, txn) in stream.executions.iter().enumerate() {
                        let plan = &plans[txn.index()];
                        let exec_key = mix(seed ^ (exec_idx as u64).wrapping_mul(0x9E37_79B9));
                        let tag = (exec_idx % 251) as u8;
                        for q in &plan.queries {
                            for rep in 0..q.reps {
                                let rep_key = exec_key ^ q.key ^ mix(rep as u64);
                                for tp in &q.tables {
                                    let tbl_key = rep_key ^ mix(0xAB1E ^ tp.table_idx as u64);
                                    for j in 0..tp.n_phys {
                                        let row = skew.map(mix(tbl_key ^ j as u64));
                                        let s = row / rows_per_shard;
                                        if !owned.contains(&s) {
                                            continue;
                                        }
                                        let shard = &mut shard_chunk[s - first_shard];
                                        if q.write {
                                            write_touch(shard, tp, row, tag, metered);
                                        } else {
                                            read_touch(shard, plan, tp, row, metered);
                                        }
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
    }
}

/// Writes one physical row of `tp`'s table on every replica site of the
/// owning shard and meters physical bytes plus replication transfer.
#[inline]
fn write_touch(shard: &mut StoreShard, tp: &TablePlan, row: usize, tag: u8, metered: bool) {
    let StoreShard { sites, meter } = shard;
    for (si, site) in sites.iter_mut().enumerate() {
        if let Some(frag) = site.fragments[tp.table_idx].as_mut() {
            let w = frag.write_row(row, tag);
            if metered {
                meter.site_written[si] += w as u64;
                meter.rows_written += 1;
            }
        }
    }
    // α attributes of this row travel to every remote replica — priced
    // once per row, not per destination fragment.
    if metered {
        meter.transfer += tp.transfer_per_row;
    }
}

/// Reads one physical row of `tp`'s table at the home site of the owning
/// shard, assembling it into the site's preallocated buffer.
#[inline]
fn read_touch(shard: &mut StoreShard, plan: &TxnPlan, tp: &TablePlan, row: usize, metered: bool) {
    let StoreShard { sites, meter } = shard;
    let ShardSite { fragments, buf } = &mut sites[plan.home];
    if let Some(frag) = fragments[tp.table_idx].as_ref() {
        let n = frag.read_row_into(row, buf);
        if metered {
            meter.site_read[plan.home] += n as u64;
            meter.rows_read += 1;
            meter.checksum = meter
                .checksum
                .wrapping_mul(FNV_PRIME)
                .wrapping_add(buf[0] as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, SiteId, Workload};

    /// R{a(4), b(8)}: T0 reads a (1 row); T1 writes b (2 rows).
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 2.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("replay", schema, wb.build().unwrap()).unwrap()
    }

    /// Fractional widths: R{a(2.5)}: T0 reads a; physical width is 3.
    fn fractional_instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 2.5)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        Instance::new("frac", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn single_site_physical_meters_by_hand() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let mut dep = ReplayDeployment::new(&ins, &part, 64, 4).unwrap();
        let stream = ReplayStream::uniform(&ins, 1, 7);
        let report = dep
            .replay(&stream, &ReplayConfig::deterministic(1), None)
            .unwrap();
        let t = report.totals();
        // T0 reads 1 physical row of the whole fraction: 4 + 8 = 12 bytes.
        assert_eq!(t.bytes_read, 12);
        // T1 writes 2 physical rows on the single replica: 2 × 12 = 24.
        assert_eq!(t.bytes_written, 24);
        assert_eq!(report.transfer_bytes, 0);
        assert_eq!(report.rows_read, 1);
        assert_eq!(report.rows_written, 2);
        assert_eq!(report.passes, 1);
        assert_eq!(report.txns_replayed, 2);
        assert!(report.model_error.is_none());
    }

    #[test]
    fn replication_generates_physical_transfer() {
        let ins = instance();
        let mut part = Partitioning::single_site(&ins, 2).unwrap();
        part.add_replica(AttrId(1), SiteId(1)); // b replicated; T1 home = s0
        let mut dep = ReplayDeployment::new(&ins, &part, 32, 4).unwrap();
        let stream = ReplayStream::uniform(&ins, 1, 7);
        let report = dep
            .replay(&stream, &ReplayConfig::deterministic(1), None)
            .unwrap();
        // Transfer: b (8 bytes) × 2 physical rows to the remote replica.
        assert_eq!(report.transfer_bytes, 16);
        // Writes hit both fragments: 2 × 12 at site 0 + 2 × 8 at site 1.
        assert_eq!(report.per_site[0].bytes_written, 24);
        assert_eq!(report.per_site[1].bytes_written, 16);
    }

    #[test]
    fn meters_are_thread_count_independent() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::weighted(&ins, 200, 11);
        let mut reference = None;
        for threads in [1usize, 2, 3, 8] {
            let mut dep = ReplayDeployment::new(&ins, &part, 100, 8).unwrap();
            let report = dep
                .replay(&stream, &ReplayConfig::deterministic(threads), None)
                .unwrap();
            let fp = report.meter_fingerprint();
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(r, &fp, "meters diverge at {threads} threads"),
            }
        }
    }

    #[test]
    fn repeated_runs_are_deterministic() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::weighted(&ins, 100, 5);
        let run = |threads| {
            ReplayDeployment::new(&ins, &part, 50, 8)
                .unwrap()
                .replay(&stream, &ReplayConfig::deterministic(threads), None)
                .unwrap()
                .meter_fingerprint()
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn quantization_gap_shows_in_model_error() {
        let ins = fractional_instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let mut dep = ReplayDeployment::new(&ins, &part, 16, 2).unwrap();
        let stream = ReplayStream::uniform(&ins, 1, 3);
        // Model predicts the fractional width 2.5 per read row.
        let predicted = PredictedBytes {
            read: 2.5,
            written: 0.0,
            transferred: 0.0,
        };
        let report = dep
            .replay(&stream, &ReplayConfig::deterministic(1), Some(&predicted))
            .unwrap();
        assert_eq!(report.totals().bytes_read, 3, "physical width rounds up");
        let me = report.model_error.expect("prediction was supplied");
        assert!((me.read_ratio - 0.2).abs() < 1e-12, "3 vs 2.5 → +20%");
        assert_eq!(me.transfer_ratio, 0.0, "zero predicted, zero measured");
        assert!((me.overall_ratio - 0.2).abs() < 1e-12);
    }

    #[test]
    fn timing_passes_scale_throughput_but_not_meters() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::uniform(&ins, 5, 1);
        let mut dep = ReplayDeployment::new(&ins, &part, 32, 4).unwrap();
        let one = dep
            .replay(&stream, &ReplayConfig::deterministic(1), None)
            .unwrap();
        let mut dep = ReplayDeployment::new(&ins, &part, 32, 4).unwrap();
        let many = dep
            .replay(
                &stream,
                &ReplayConfig {
                    threads: 1,
                    min_duration: Duration::from_millis(5),
                    max_passes: 64,
                    ..ReplayConfig::default()
                },
                None,
            )
            .unwrap();
        assert!(many.passes >= 1);
        assert_eq!(many.txns_replayed, many.passes * stream.len());
        // Metered quantities come from pass 0 only.
        assert_eq!(one.meter_fingerprint(), many.meter_fingerprint());
        assert!(many.throughput_txns_per_sec() > 0.0);
    }

    #[test]
    fn empty_stream_is_rejected() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let mut dep = ReplayDeployment::new(&ins, &part, 8, 2).unwrap();
        let stream = ReplayStream {
            executions: vec![],
            seed: 0,
        };
        assert!(matches!(
            dep.replay(&stream, &ReplayConfig::default(), None),
            Err(EngineError::InvalidReplay { .. })
        ));
    }

    #[test]
    fn shard_count_clamps_to_rows() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let dep = ReplayDeployment::new(&ins, &part, 4, 64).unwrap();
        assert_eq!(dep.n_shards(), 4);
        assert!(dep.stored_bytes() > 0);
    }

    #[test]
    fn skew_specs_parse_and_reject() {
        assert_eq!(RowSkew::parse("uniform").unwrap(), RowSkew::Uniform);
        assert_eq!(
            RowSkew::parse("zipf:0.99").unwrap(),
            RowSkew::Zipf { theta: 0.99 }
        );
        assert_eq!(
            RowSkew::parse("hotspot:0.2").unwrap(),
            RowSkew::Hotspot { frac: 0.2 }
        );
        for bad in [
            "zipf",
            "zipf:",
            "zipf:abc",
            "zipf:0",
            "zipf:1.0",
            "zipf:-0.5",
            "hotspot:1.5",
            "hotspot:0",
            "hotspot:x",
            "pareto:2",
        ] {
            assert!(
                matches!(RowSkew::parse(bad), Err(EngineError::InvalidReplay { .. })),
                "spec {bad:?} should be rejected"
            );
        }
    }

    /// The compiled maps really skew: hashed touches land on the head
    /// (zipf) / hot set (hotspot) far more often than uniform would.
    #[test]
    fn skew_maps_concentrate_touches() {
        let n = 1000u64;
        let samples = 20_000u64;
        let zipf = SkewMap::new(RowSkew::Zipf { theta: 0.99 }, n);
        let hot = SkewMap::new(RowSkew::Hotspot { frac: 0.1 }, n);
        let uni = SkewMap::new(RowSkew::Uniform, n);
        let (mut z_head, mut h_hot, mut u_head) = (0u64, 0u64, 0u64);
        for i in 0..samples {
            let h = mix(0xBEEF ^ i);
            let zr = zipf.map(h);
            let hr = hot.map(h);
            let ur = uni.map(h);
            assert!(zr < n as usize && hr < n as usize && ur < n as usize);
            z_head += u64::from(zr < 10);
            h_hot += u64::from(hr < 100);
            u_head += u64::from(ur < 10);
        }
        // Uniform puts ~1% in the top-10 rows; zipf(0.99) puts >30%.
        assert!(u_head < samples / 20, "uniform head share too high");
        assert!(z_head > samples * 3 / 10, "zipf head share too low");
        // hotspot:0.1 routes ~90% of touches to the 10% hot set.
        assert!(h_hot > samples * 8 / 10, "hotspot share too low");
    }

    /// Skewed replays keep the determinism contract: meters are
    /// bit-identical across thread counts, and the skew visibly changes
    /// which rows are touched (checksum) without changing byte totals.
    #[test]
    fn skewed_replay_is_thread_independent() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::uniform(&ins, 40, 7);
        let run = |threads: usize, skew: RowSkew| {
            let mut dep = ReplayDeployment::new(&ins, &part, 64, 8).unwrap();
            let cfg = ReplayConfig {
                skew,
                ..ReplayConfig::deterministic(threads)
            };
            dep.replay(&stream, &cfg, None).unwrap()
        };
        let zipf = RowSkew::Zipf { theta: 0.9 };
        let a = run(1, zipf);
        let b = run(4, zipf);
        assert_eq!(a.meter_fingerprint(), b.meter_fingerprint());
        let uniform = run(1, RowSkew::Uniform);
        assert_eq!(
            a.totals(),
            uniform.totals(),
            "byte totals are row-independent"
        );
        assert_ne!(
            a.checksum, uniform.checksum,
            "skew should touch different rows"
        );
    }

    /// A pass crashed by an injected fault is discarded and retried: the
    /// run completes with meters bit-identical to the fault-free run.
    #[test]
    fn injected_pass_crash_retries_to_identical_meters() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::uniform(&ins, 20, 3);
        let mut dep = ReplayDeployment::new(&ins, &part, 32, 4).unwrap();
        let clean = dep
            .replay(&stream, &ReplayConfig::deterministic(2), None)
            .unwrap();
        assert_eq!(clean.passes_injected, 0);

        let mut dep = ReplayDeployment::new(&ins, &part, 32, 4).unwrap();
        let mut cfg = ReplayConfig::deterministic(2);
        cfg.faults = FaultInjector::new(11);
        cfg.faults.arm_spec("replay.pass:nth=1").unwrap();
        let faulted = dep.replay(&stream, &cfg, None).unwrap();
        assert_eq!(faulted.passes_injected, 1);
        assert_eq!(faulted.passes, 1);
        assert_eq!(clean.meter_fingerprint(), faulted.meter_fingerprint());
    }

    /// A fault that fires on every pass can never finish: the driver
    /// gives up with `Injected` instead of spinning forever.
    #[test]
    fn always_firing_pass_fault_errors_out() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let stream = ReplayStream::uniform(&ins, 3, 3);
        let mut dep = ReplayDeployment::new(&ins, &part, 8, 2).unwrap();
        let mut cfg = ReplayConfig::deterministic(1);
        cfg.faults = FaultInjector::new(5);
        cfg.faults.arm_spec("replay.pass:prob=1.0").unwrap();
        assert!(matches!(
            dep.replay(&stream, &cfg, None),
            Err(EngineError::Injected { .. })
        ));
    }
}
