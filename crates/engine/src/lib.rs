//! An H-store-like row-store execution simulator.
//!
//! The paper *assumes* an H-store-like DBMS (single-threaded sites, rows
//! stored contiguously, reads in quantums of whole rows, single-sited
//! transactions running without undo/redo logs). No such system is
//! available here, so this crate builds the substrate: a deterministic
//! multi-site row-store that physically materializes table fractions
//! according to a [`vpart_model::Partitioning`], executes workload traces,
//! and meters exactly the three quantities the cost model estimates —
//! bytes read and written by storage access methods per site, and bytes
//! transferred between sites by write replication.
//!
//! Because the meter implements the *semantics* of the cost model (whole
//! row-fraction reads at the executing site, all-attribute write
//! accounting at every replica, α-attribute transfer to remote replicas),
//! an execution of a trace whose per-transaction counts equal the query
//! frequencies must measure **exactly** the model's predicted `A_R`,
//! `A_W` and `B`. Integration tests assert this equality on TPC-C — the
//! cost model and the engine are implemented independently, so agreement
//! validates both.
//!
//! ```
//! use vpart_engine::{Deployment, Trace};
//! use vpart_model::Partitioning;
//! use vpart_instances::tpcc;
//!
//! let ins = tpcc();
//! let part = Partitioning::single_site(&ins, 1).unwrap();
//! let mut dep = Deployment::new(&ins, &part, 64).unwrap();
//! let report = dep.execute(&Trace::uniform(&ins, 3)).unwrap();
//! assert!(report.totals().bytes_read > 0.0);
//! ```

pub mod executor;
pub mod faults;
pub mod journal;
pub mod replay;
pub mod storage;
pub mod trace;

pub use executor::{
    BatchedMigrationReport, Deployment, EngineError, ExecutionReport, MigrationReport, SiteMetrics,
};
pub use faults::{
    FaultInjector, FaultTrigger, FP_MIGRATION_BATCH, FP_MIGRATION_ROLLBACK, FP_REPLAY_PASS,
    FP_WATCH_RESOLVE,
};
pub use journal::{JournalRecord, JournalState, MigrationJournal};
pub use replay::{
    PredictedBytes, ReplayConfig, ReplayDeployment, ReplayModelError, ReplayReport, ReplayStream,
    RowSkew, SiteBytes,
};
pub use storage::{ColumnFragment, Fragment, Site};
pub use trace::Trace;
