//! Workload traces: concrete sequences of transaction executions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpart_model::{Instance, TxnId};

/// A sequence of transaction executions to run against a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Transaction executions in order.
    pub executions: Vec<TxnId>,
}

impl Trace {
    /// Every transaction exactly `rounds` times, in round-robin order.
    ///
    /// With the paper's equal-frequency assumption (`f_q = 1`), a
    /// `rounds`-round uniform trace measures exactly `rounds ×` the cost
    /// model's predicted byte counts.
    pub fn uniform(instance: &Instance, rounds: usize) -> Self {
        let mut executions = Vec::with_capacity(rounds * instance.n_txns());
        for _ in 0..rounds {
            for t in 0..instance.n_txns() {
                executions.push(TxnId::from_index(t));
            }
        }
        Self { executions }
    }

    /// `total` executions sampled with probability proportional to each
    /// transaction's total query frequency (seeded, deterministic).
    pub fn weighted(instance: &Instance, total: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..instance.n_txns())
            .map(|t| {
                instance
                    .workload()
                    .txn(TxnId::from_index(t))
                    .queries
                    .iter()
                    .map(|&q| instance.workload().query(q).frequency)
                    .sum()
            })
            .collect();
        let sum: f64 = weights.iter().sum();
        let executions = (0..total)
            .map(|_| {
                let mut pick = rng.gen::<f64>() * sum;
                for (t, w) in weights.iter().enumerate() {
                    pick -= w;
                    if pick <= 0.0 {
                        return TxnId::from_index(t);
                    }
                }
                TxnId::from_index(instance.n_txns() - 1)
            })
            .collect();
        Self { executions }
    }

    /// Number of executions.
    pub fn len(&self) -> usize {
        self.executions.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.executions.is_empty()
    }

    /// How many times each transaction appears.
    pub fn counts(&self, n_txns: usize) -> Vec<usize> {
        let mut c = vec![0; n_txns];
        for t in &self.executions {
            c[t.index()] += 1;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{AttrId, Schema, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]).frequency(9.0))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(0)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("t", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn uniform_counts() {
        let ins = instance();
        let tr = Trace::uniform(&ins, 5);
        assert_eq!(tr.len(), 10);
        assert_eq!(tr.counts(2), vec![5, 5]);
        assert!(!tr.is_empty());
    }

    #[test]
    fn weighted_respects_frequencies() {
        let ins = instance();
        let tr = Trace::weighted(&ins, 2000, 3);
        let c = tr.counts(2);
        // T0's weight is 9×, so it should dominate ~90/10.
        assert!(c[0] > c[1] * 5, "counts {c:?}");
        assert_eq!(c[0] + c[1], 2000);
        // Deterministic per seed.
        assert_eq!(tr, Trace::weighted(&ins, 2000, 3));
    }
}
