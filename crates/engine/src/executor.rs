//! Deployment and trace execution with byte-exact metering.

use crate::faults::{FaultInjector, FP_MIGRATION_BATCH, FP_MIGRATION_ROLLBACK};
use crate::journal::{JournalRecord, MigrationJournal};
use crate::storage::{Fragment, Site};
use crate::trace::Trace;
use std::fmt;
use vpart_model::{
    AttrId, BatchedMigrationPlan, Instance, MigrationOp, MigrationPlan, Partitioning, SiteId,
    TableId, TxnId,
};
use vpart_obs::Obs;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The partitioning failed validation against the instance.
    Model(vpart_model::ModelError),
    /// A read query needed an attribute absent from its executing site —
    /// the deployment would break single-sitedness.
    NotSingleSited {
        /// The transaction whose read broke.
        txn: TxnId,
        /// The missing attribute.
        attr: AttrId,
        /// The executing site.
        site: SiteId,
    },
    /// A migration plan does not start from this deployment's state (its
    /// `from` layout or row count differs).
    MigrationMismatch {
        /// What the plan disagrees with the deployment about.
        what: &'static str,
    },
    /// A migration plan is internally inconsistent: applying its changes
    /// to `from` does not produce `to`.
    CorruptPlan {
        /// Which invariant broke.
        what: &'static str,
    },
    /// A replay stream or configuration is unusable (empty stream,
    /// out-of-range transaction ids, …).
    InvalidReplay {
        /// What was wrong with the replay request.
        what: &'static str,
    },
    /// A deterministic fault-injection arm fired at a named fail point
    /// (a simulated crash/abort; see [`crate::faults`]).
    Injected {
        /// The fail point that fired.
        point: String,
    },
    /// A migration journal failed validation: damaged encoding, checksum
    /// mismatch, impossible record sequence, or a fingerprint that does
    /// not match the plan being recovered.
    CorruptJournal {
        /// What was wrong, naming the offending line where applicable.
        what: String,
    },
    /// A fault-injection spec string could not be parsed.
    InvalidFault {
        /// What was wrong with the spec.
        what: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "invalid deployment: {e}"),
            Self::NotSingleSited { txn, attr, site } => {
                write!(f, "read of {attr} by {txn} not satisfiable on site {site}")
            }
            Self::MigrationMismatch { what } => {
                write!(f, "migration plan does not match this deployment: {what}")
            }
            Self::CorruptPlan { what } => {
                write!(f, "migration plan is inconsistent: {what}")
            }
            Self::InvalidReplay { what } => {
                write!(f, "invalid replay request: {what}")
            }
            Self::Injected { point } => {
                write!(f, "injected fault at {point}")
            }
            Self::CorruptJournal { what } => {
                write!(f, "migration journal is corrupt: {what}")
            }
            Self::InvalidFault { what } => {
                write!(f, "invalid fault spec: {what}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<vpart_model::ModelError> for EngineError {
    fn from(e: vpart_model::ModelError) -> Self {
        Self::Model(e)
    }
}

/// Per-site byte meters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SiteMetrics {
    /// Bytes read by storage access methods.
    pub bytes_read: f64,
    /// Bytes written by storage access methods.
    pub bytes_written: f64,
}

impl SiteMetrics {
    /// Total storage work (`read + write`) on this site — the engine-side
    /// analogue of the cost model's per-site work (equation (5)).
    pub fn work(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }
}

/// Result of executing a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Per-site meters.
    pub per_site: Vec<SiteMetrics>,
    /// Bytes shipped between sites by write replication.
    pub transfer_bytes: f64,
    /// Transaction executions processed.
    pub executions: usize,
    /// Executions that ran entirely on their home site (no replica
    /// traffic) — these need no undo/redo log in an H-store-like system.
    pub single_sited_executions: usize,
    /// Individual queries executed.
    pub queries_executed: usize,
    /// Physical rows touched (reads + writes).
    pub rows_touched: usize,
    /// Checksum over read payloads (forces real data movement; also a
    /// cheap reproducibility probe).
    pub checksum: u64,
}

impl ExecutionReport {
    /// Aggregated meters across sites.
    pub fn totals(&self) -> SiteMetrics {
        let mut t = SiteMetrics::default();
        for s in &self.per_site {
            t.bytes_read += s.bytes_read;
            t.bytes_written += s.bytes_written;
        }
        t
    }

    /// The engine-side analogue of objective (4): `A_R + A_W + p·B` from
    /// *measured* bytes.
    pub fn measured_objective4(&self, p: f64) -> f64 {
        let t = self.totals();
        t.bytes_read + t.bytes_written + p * self.transfer_bytes
    }

    /// Measured per-site work.
    pub fn site_work(&self) -> Vec<f64> {
        self.per_site.iter().map(SiteMetrics::work).collect()
    }

    /// Fraction of executions that stayed single-sited.
    pub fn single_sited_ratio(&self) -> f64 {
        if self.executions == 0 {
            return 1.0;
        }
        self.single_sited_executions as f64 / self.executions as f64
    }
}

/// Result of applying a [`MigrationPlan`]: what physically moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Bytes shipped between sites to install attribute fractions, metered
    /// from the engine's own schema widths and fragment row counts (not
    /// copied from the plan's estimates).
    pub bytes_moved: f64,
    /// Per-[`FragmentChange`](vpart_model::FragmentChange) moved bytes, in
    /// plan order.
    pub per_change_bytes: Vec<f64>,
    /// Attribute replicas installed.
    pub installs: usize,
    /// Attribute replicas dropped.
    pub drops: usize,
    /// Transactions re-routed to a new home site.
    pub txns_rerouted: usize,
}

/// Result of running (part of) a [`BatchedMigrationPlan`] through the
/// write-ahead journal: forward progress, rollback progress, and the
/// durable byte meter derived from commit records (never double-counted
/// across crashes and resumes).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchedMigrationReport {
    /// Durable metered bytes: `Σ` over the journal's commit records —
    /// forward installs for a migration, re-installs for a rollback.
    /// Identical across any crash/resume schedule of the same plan.
    pub bytes_moved: f64,
    /// Bytes shipped by batches committed in *this* call.
    pub bytes_this_run: f64,
    /// Batches committed (or undone, for rollbacks) in this call.
    pub batches_applied: usize,
    /// The batch boundary the deployment now sits at (committed − undone).
    pub boundary: usize,
    /// Total batches in the plan.
    pub batches_total: usize,
    /// Attribute replicas installed in this call.
    pub installs: usize,
    /// Attribute replicas dropped in this call.
    pub drops: usize,
    /// Transactions re-homed in this call.
    pub txns_rerouted: usize,
    /// The plan's peak transient dual-resident bytes (worst extra storage
    /// at any boundary, priced by the cost model's widths).
    pub peak_transient_bytes: f64,
    /// True when this call continued a journal with prior progress.
    pub resumed: bool,
    /// True when the migration reached `plan.to` (forward) …
    pub completed: bool,
    /// … or `plan.from` again (rollback).
    pub rolled_back: bool,
}

/// A partitioning physically deployed onto sites.
#[derive(Debug, Clone)]
pub struct Deployment<'a> {
    instance: &'a Instance,
    partitioning: Partitioning,
    sites: Vec<Site>,
    rows_per_fragment: usize,
    obs: Obs,
}

impl<'a> Deployment<'a> {
    /// Validates `partitioning` and materializes one fragment per
    /// `(site, table)` pair with `rows_per_fragment` rows each.
    pub fn new(
        instance: &'a Instance,
        partitioning: &Partitioning,
        rows_per_fragment: usize,
    ) -> Result<Self, EngineError> {
        partitioning.validate(instance, false)?;
        let n_tables = instance.n_tables();
        let mut sites = Vec::with_capacity(partitioning.n_sites());
        for s in 0..partitioning.n_sites() {
            let site_id = SiteId::from_index(s);
            let mut site = Site::new(site_id, n_tables);
            for t in 0..n_tables {
                let table = vpart_model::TableId::from_index(t);
                let attrs: Vec<AttrId> = instance
                    .schema()
                    .table_attrs(table)
                    .map(AttrId::from_index)
                    .filter(|&a| partitioning.has_attr(a, site_id))
                    .collect();
                if !attrs.is_empty() {
                    let width: f64 = attrs.iter().map(|&a| instance.schema().width(a)).sum();
                    site.fragments[t] =
                        Some(Fragment::new(table, attrs, width, rows_per_fragment.max(1)));
                }
            }
            sites.push(site);
        }
        Ok(Self {
            instance,
            partitioning: partitioning.clone(),
            sites,
            rows_per_fragment: rows_per_fragment.max(1),
            obs: Obs::disabled(),
        })
    }

    /// Attaches an observability sink: [`apply_migration`] then records an
    /// `apply_migration` span and the `engine_*_total` meter counters
    /// (migration bytes, installs, drops, re-routes). Off by default.
    ///
    /// [`apply_migration`]: Self::apply_migration
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The deployed partitioning.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The uniform per-fragment row count this deployment materializes.
    pub fn rows_per_fragment(&self) -> usize {
        self.rows_per_fragment
    }

    /// The sites (for storage inspection).
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Total physically materialized bytes across sites.
    pub fn stored_bytes(&self) -> usize {
        self.sites.iter().map(Site::stored_bytes).sum()
    }

    /// Physically executes a [`MigrationPlan`]: rebuilds every changed
    /// fragment (installs materialize column data at the destination site,
    /// drops shrink the fraction in place), re-routes moved transactions,
    /// and meters the bytes shipped between sites.
    ///
    /// The meter re-derives moved bytes from the engine's own schema
    /// widths and row counts — `(Σ w_installed) × rows` per change, the
    /// same accounting [`MigrationPlan::between`] estimates with — so a
    /// plan built with this deployment's `rows_per_fragment` measures
    /// **exactly** its estimate (`MigrationReport::bytes_moved ==
    /// MigrationPlan::estimated_bytes`).
    ///
    /// The plan must start from the currently deployed layout and its
    /// changes must reproduce `plan.to` exactly; anything else is rejected
    /// without touching storage.
    pub fn apply_migration(
        &mut self,
        plan: &MigrationPlan,
    ) -> Result<MigrationReport, EngineError> {
        // Dropped without a record if the plan is rejected below.
        let span = self.obs.span_begin("apply_migration", &[]);
        if plan.from != self.partitioning {
            return Err(EngineError::MigrationMismatch {
                what: "plan.from is not the deployed partitioning",
            });
        }
        if plan.rows_per_fragment.max(1) != self.rows_per_fragment {
            return Err(EngineError::MigrationMismatch {
                what: "plan rows_per_fragment differs from the deployment's",
            });
        }
        plan.to.validate(self.instance, false)?;

        // Dry-run the bookkeeping first: storage is only touched once the
        // whole plan checks out.
        let mut next = self.partitioning.clone();
        for mv in &plan.txn_moves {
            if next.site_of(mv.txn) != mv.from {
                return Err(EngineError::CorruptPlan {
                    what: "txn move does not start at the transaction's current site",
                });
            }
            next.move_txn(mv.txn, mv.to);
        }
        for ch in &plan.changes {
            for &a in ch.installed.iter().chain(&ch.dropped) {
                if self.instance.schema().table_of(a) != ch.table {
                    return Err(EngineError::CorruptPlan {
                        what: "fragment change lists an attribute of another table",
                    });
                }
            }
            for &a in &ch.installed {
                if next.has_attr(a, ch.site) {
                    return Err(EngineError::CorruptPlan {
                        what: "install of an already-present replica",
                    });
                }
                next.add_replica(a, ch.site);
            }
            for &a in &ch.dropped {
                if !next.has_attr(a, ch.site) {
                    return Err(EngineError::CorruptPlan {
                        what: "drop of a replica that is not there",
                    });
                }
                next.remove_replica(a, ch.site);
            }
        }
        if next != plan.to {
            return Err(EngineError::CorruptPlan {
                what: "changes do not produce plan.to",
            });
        }

        // Execute: rebuild each changed fragment and meter shipped bytes.
        let schema = self.instance.schema();
        let mut per_change_bytes = Vec::with_capacity(plan.changes.len());
        let mut bytes_moved = 0.0f64;
        let mut installs = 0usize;
        let mut drops = 0usize;
        for ch in &plan.changes {
            let moved = ch.installed.iter().map(|&a| schema.width(a)).sum::<f64>()
                * self.rows_per_fragment as f64;
            per_change_bytes.push(moved);
            bytes_moved += moved;
            installs += ch.installed.len();
            drops += ch.dropped.len();

            let site = &mut self.sites[ch.site.index()];
            let mut attrs = site.fragments[ch.table.index()]
                .take()
                .map(|f| f.attrs)
                .unwrap_or_default();
            for &a in &ch.dropped {
                if let Ok(i) = attrs.binary_search(&a) {
                    attrs.remove(i);
                }
            }
            for &a in &ch.installed {
                if let Err(i) = attrs.binary_search(&a) {
                    attrs.insert(i, a);
                }
            }
            if !attrs.is_empty() {
                let width: f64 = attrs.iter().map(|&a| schema.width(a)).sum();
                site.fragments[ch.table.index()] = Some(Fragment::new(
                    ch.table,
                    attrs,
                    width,
                    self.rows_per_fragment,
                ));
            }
        }
        self.partitioning = next;

        let txns_rerouted = plan.txn_moves.len();
        if self.obs.is_enabled() {
            self.obs.counter_inc("engine_migrations_total");
            self.obs
                .counter_add("engine_migration_bytes_total", bytes_moved);
            self.obs
                .counter_add("engine_fragment_installs_total", installs as f64);
            self.obs
                .counter_add("engine_fragment_drops_total", drops as f64);
            self.obs
                .counter_add("engine_txns_rerouted_total", txns_rerouted as f64);
            self.obs.span_end(
                span,
                &[
                    ("bytes_moved", bytes_moved.into()),
                    ("installs", installs.into()),
                    ("drops", drops.into()),
                    ("txns_rerouted", txns_rerouted.into()),
                    ("changes", plan.changes.len().into()),
                ],
            );
        }

        self.debug_check_storage_bookkeeping();

        Ok(MigrationReport {
            bytes_moved,
            per_change_bytes,
            installs,
            drops,
            txns_rerouted,
        })
    }

    /// Runs a [`BatchedMigrationPlan`] to completion through a write-ahead
    /// `journal`: each batch is journaled (`BatchBegin`), applied to
    /// storage, then committed (`BatchCommit` with its metered bytes).
    /// Passing a journal with prior progress *resumes* from its boundary —
    /// already-committed batches are never re-applied and never re-counted,
    /// so `bytes_moved` is identical across any crash/resume schedule.
    ///
    /// `faults` may arm the [`FP_MIGRATION_BATCH`] fail point, which fires
    /// *after* a batch's ops hit storage but *before* its commit is
    /// journaled — the worst-case crash window. After an
    /// [`EngineError::Injected`] abort this deployment is mid-batch and
    /// must be discarded; [`Deployment::recover`] rebuilds a clean one at
    /// the journal's boundary.
    pub fn migrate_batched(
        &mut self,
        plan: &BatchedMigrationPlan,
        journal: &mut MigrationJournal,
        faults: &mut FaultInjector,
    ) -> Result<BatchedMigrationReport, EngineError> {
        self.migrate_batches(plan, journal, faults, usize::MAX)
    }

    /// [`migrate_batched`](Self::migrate_batched), but commits at most
    /// `max_batches` batches in this call (rate limiting: a control loop
    /// can interleave batches with foreground work). The migration is
    /// `Complete` only once a call commits the final batch.
    pub fn migrate_batches(
        &mut self,
        plan: &BatchedMigrationPlan,
        journal: &mut MigrationJournal,
        faults: &mut FaultInjector,
        max_batches: usize,
    ) -> Result<BatchedMigrationReport, EngineError> {
        let span = self.obs.span_begin(
            "migrate_batched",
            &[
                ("batches", plan.n_batches().into()),
                ("fingerprint", plan.fingerprint().into()),
                ("rows_per_fragment", self.rows_per_fragment.into()),
            ],
        );
        let resumed = !journal.is_empty();
        if resumed {
            self.check_journal_matches(plan, journal)?;
            let st = journal.state();
            if st.rolling_back || st.rolled_back {
                return Err(EngineError::MigrationMismatch {
                    what: "journal records a rollback; resume with rollback_migration",
                });
            }
            if st.complete {
                return Ok(self.batched_report(plan, journal, 0.0, 0, 0, 0, 0));
            }
        } else {
            if plan.plan.from != self.partitioning {
                return Err(EngineError::MigrationMismatch {
                    what: "plan.from is not the deployed partitioning",
                });
            }
            if plan.plan.rows_per_fragment.max(1) != self.rows_per_fragment {
                return Err(EngineError::MigrationMismatch {
                    what: "plan rows_per_fragment differs from the deployment's",
                });
            }
            plan.plan.to.validate(self.instance, false)?;
            if plan.boundary(plan.n_batches()) != plan.plan.to {
                return Err(EngineError::CorruptPlan {
                    what: "batches do not produce plan.to",
                });
            }
            journal.append(JournalRecord::Start {
                fingerprint: plan.fingerprint(),
                batches: plan.n_batches(),
                rows_per_fragment: self.rows_per_fragment,
            })?;
        }

        let start = journal.state().boundary();
        let mut bytes_this_run = 0.0f64;
        let mut applied = 0usize;
        let mut installs = 0usize;
        let mut drops = 0usize;
        let mut moves = 0usize;
        for (k, batch) in plan.batches.iter().enumerate().skip(start) {
            if applied >= max_batches {
                break;
            }
            journal.append(JournalRecord::BatchBegin { batch: k })?;
            let mut batch_bytes = 0.0f64;
            for op in &batch.ops {
                let (b, i, d, m) = self.apply_op(op, true);
                batch_bytes += b;
                installs += i;
                drops += d;
                moves += m;
            }
            if self.obs.is_enabled() {
                self.obs.event(
                    "migration_batch.applied",
                    &[("batch", k.into()), ("bytes", batch_bytes.into())],
                );
            }
            // The crash window: ops applied, commit not yet durable. A
            // fault here aborts mid-batch; recovery re-applies batch k
            // from the journal's boundary and the meter (commit records
            // only) never double-counts it. The flight recorder dumps its
            // ring before the error propagates, so the black box carries
            // the crashing batch's span context.
            if let Err(e) = faults.fail(FP_MIGRATION_BATCH) {
                let _ = self.obs.dump_flight(FP_MIGRATION_BATCH);
                return Err(e);
            }
            journal.append(JournalRecord::BatchCommit {
                batch: k,
                bytes: batch_bytes,
            })?;
            bytes_this_run += batch_bytes;
            applied += 1;
            #[cfg(feature = "debug-invariants")]
            {
                // The durable meter must equal the plan's estimate for the
                // committed prefix exactly — bit-identical f64 sums.
                let expect: f64 = plan.batches[..=k].iter().map(|b| b.bytes).sum();
                assert_eq!(
                    journal.state().bytes_committed,
                    expect,
                    "journaled bytes diverge from the plan estimate at batch {k}"
                );
                assert_eq!(self.partitioning, plan.boundary(k + 1));
            }
            self.debug_check_storage_bookkeeping();
        }

        let st = journal.state();
        if st.boundary() == plan.n_batches() && !st.complete {
            if self.partitioning != plan.plan.to {
                return Err(EngineError::CorruptPlan {
                    what: "applying all batches did not reach plan.to",
                });
            }
            journal.append(JournalRecord::Complete {
                bytes_moved: st.bytes_committed,
            })?;
        }

        let report = self.batched_report(
            plan,
            journal,
            bytes_this_run,
            applied,
            installs,
            drops,
            moves,
        );
        let report = BatchedMigrationReport { resumed, ..report };
        if self.obs.is_enabled() {
            if report.completed {
                self.obs.counter_inc("engine_migrations_total");
            }
            self.obs
                .counter_add("engine_migration_bytes_total", bytes_this_run);
            self.obs
                .counter_add("engine_migration_batches_total", applied as f64);
            self.obs
                .counter_add("engine_fragment_installs_total", installs as f64);
            self.obs
                .counter_add("engine_fragment_drops_total", drops as f64);
            self.obs
                .counter_add("engine_txns_rerouted_total", moves as f64);
            self.obs.span_end(
                span,
                &[
                    ("bytes_this_run", bytes_this_run.into()),
                    ("batches_applied", applied.into()),
                    ("boundary", report.boundary.into()),
                    ("completed", (report.completed as usize).into()),
                ],
            );
        }
        Ok(report)
    }

    /// Rolls a journaled migration back to `plan.from`: committed batches
    /// are undone in reverse order (re-homings reversed, installed
    /// replicas dropped, dropped replicas re-installed and re-metered),
    /// each undo journaled write-ahead like forward batches. A journal
    /// already mid-rollback resumes it; a crash between undo batches
    /// (the [`FP_MIGRATION_ROLLBACK`] fail point) is recoverable the same
    /// way as a forward crash.
    pub fn rollback_migration(
        &mut self,
        plan: &BatchedMigrationPlan,
        journal: &mut MigrationJournal,
        faults: &mut FaultInjector,
    ) -> Result<BatchedMigrationReport, EngineError> {
        let span = self.obs.span_begin(
            "rollback_migration",
            &[
                ("batches", plan.n_batches().into()),
                ("fingerprint", plan.fingerprint().into()),
            ],
        );
        if journal.is_empty() {
            return Err(EngineError::MigrationMismatch {
                what: "rollback without a started migration",
            });
        }
        self.check_journal_matches(plan, journal)?;
        let st = journal.state();
        if st.complete {
            return Err(EngineError::MigrationMismatch {
                what: "cannot roll back a completed migration",
            });
        }
        if st.rolled_back {
            return Ok(self.batched_report(plan, journal, 0.0, 0, 0, 0, 0));
        }
        let resumed = st.rolling_back;
        if !st.rolling_back {
            journal.append(JournalRecord::RollbackBegin)?;
        }

        let mut bytes_this_run = 0.0f64;
        let mut applied = 0usize;
        let mut installs = 0usize;
        let mut drops = 0usize;
        let mut moves = 0usize;
        while journal.state().boundary() > 0 {
            let k = journal.state().boundary() - 1;
            journal.append(JournalRecord::UndoBegin { batch: k })?;
            let mut undo_bytes = 0.0f64;
            for op in plan.batches[k].ops.iter().rev() {
                let (b, i, d, m) = self.apply_op(op, false);
                undo_bytes += b;
                installs += i;
                drops += d;
                moves += m;
            }
            if self.obs.is_enabled() {
                self.obs.event(
                    "migration_batch.undone",
                    &[("batch", k.into()), ("bytes", undo_bytes.into())],
                );
            }
            if let Err(e) = faults.fail(FP_MIGRATION_ROLLBACK) {
                let _ = self.obs.dump_flight(FP_MIGRATION_ROLLBACK);
                return Err(e);
            }
            journal.append(JournalRecord::UndoCommit {
                batch: k,
                bytes: undo_bytes,
            })?;
            bytes_this_run += undo_bytes;
            applied += 1;
            #[cfg(feature = "debug-invariants")]
            assert_eq!(self.partitioning, plan.boundary(k));
            self.debug_check_storage_bookkeeping();
        }
        if self.partitioning != plan.plan.from {
            return Err(EngineError::CorruptPlan {
                what: "undoing all batches did not reach plan.from",
            });
        }
        journal.append(JournalRecord::RolledBack)?;

        let report = self.batched_report(
            plan,
            journal,
            bytes_this_run,
            applied,
            installs,
            drops,
            moves,
        );
        let report = BatchedMigrationReport { resumed, ..report };
        if self.obs.is_enabled() {
            self.obs.counter_inc("engine_migration_rollbacks_total");
            self.obs
                .counter_add("engine_migration_bytes_total", bytes_this_run);
            self.obs.span_end(
                span,
                &[
                    ("bytes_this_run", bytes_this_run.into()),
                    ("batches_undone", applied.into()),
                ],
            );
        }
        Ok(report)
    }

    /// Rebuilds a deployment at a crashed migration's durable boundary:
    /// the journal's committed batches (minus committed undos) applied to
    /// `plan.from`. Fragment materialization is deterministic, so the
    /// recovered fragment payloads are bit-identical to a deployment that
    /// reached the same boundary without crashing. Continue with
    /// [`migrate_batched`](Self::migrate_batched) (forward) or
    /// [`rollback_migration`](Self::rollback_migration).
    pub fn recover(
        instance: &'a Instance,
        plan: &BatchedMigrationPlan,
        journal: &MigrationJournal,
    ) -> Result<Self, EngineError> {
        if let Some(fp) = journal.fingerprint() {
            if fp != plan.fingerprint() {
                return Err(EngineError::CorruptJournal {
                    what: "journal fingerprint does not match the plan".to_string(),
                });
            }
        } else if !journal.is_empty() {
            return Err(EngineError::CorruptJournal {
                what: "journal has records but no Start".to_string(),
            });
        }
        let boundary = journal.state().boundary();
        if boundary > plan.n_batches() {
            return Err(EngineError::CorruptJournal {
                what: "journal commits more batches than the plan holds".to_string(),
            });
        }
        Self::new(
            instance,
            &plan.boundary(boundary),
            plan.plan.rows_per_fragment,
        )
    }

    /// A 64-bit fingerprint of the full deployment state: the logical
    /// partitioning plus every fragment's attrs, row count and raw
    /// physical payload. Two deployments with equal fingerprints hold
    /// bit-identical storage — the equality the fault-sweep harness
    /// asserts between crashed-and-recovered and uninterrupted runs.
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15_u64;
        let put = |h: &mut u64, v: u64| {
            let mut z = *h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *h = z ^ (z >> 31);
        };
        put(&mut h, self.partitioning.n_sites() as u64);
        for t in (0..self.instance.n_txns()).map(TxnId::from_index) {
            put(&mut h, self.partitioning.site_of(t).index() as u64);
        }
        for site in &self.sites {
            for frag in site.fragments.iter().flatten() {
                put(&mut h, frag.table.index() as u64);
                put(&mut h, frag.attrs.len() as u64);
                for a in &frag.attrs {
                    put(&mut h, a.index() as u64);
                }
                put(&mut h, frag.rows as u64);
                for &b in frag.payload() {
                    put(&mut h, b as u64);
                }
            }
        }
        h
    }

    /// Applies one micro-op (or its inverse) to the partitioning and the
    /// physical fragments, returning `(metered bytes, installs, drops,
    /// moves)`. Data-shipping ops — forward installs, undo re-installs —
    /// meter `w_a × rows`, the exact expression the plan priced.
    fn apply_op(&mut self, op: &MigrationOp, forward: bool) -> (f64, usize, usize, usize) {
        let schema = self.instance.schema();
        match *op {
            MigrationOp::Install { attr, site, .. } => {
                let table = schema.table_of(attr);
                if forward {
                    self.partitioning.add_replica(attr, site);
                    self.rebuild_fragment(site, table);
                    (schema.width(attr) * self.rows_per_fragment as f64, 1, 0, 0)
                } else {
                    self.partitioning.remove_replica(attr, site);
                    self.rebuild_fragment(site, table);
                    (0.0, 0, 1, 0)
                }
            }
            MigrationOp::Drop { attr, site } => {
                let table = schema.table_of(attr);
                if forward {
                    self.partitioning.remove_replica(attr, site);
                    self.rebuild_fragment(site, table);
                    (0.0, 0, 1, 0)
                } else {
                    self.partitioning.add_replica(attr, site);
                    self.rebuild_fragment(site, table);
                    (schema.width(attr) * self.rows_per_fragment as f64, 1, 0, 0)
                }
            }
            MigrationOp::MoveTxn { txn, from, to } => {
                self.partitioning
                    .move_txn(txn, if forward { to } else { from });
                (0.0, 0, 0, 1)
            }
        }
    }

    /// Re-derives the `(site, table)` fragment from the current logical
    /// partitioning. `Fragment::new` fills deterministically, so recovery
    /// reaches bit-identical payloads however many times a batch replays.
    fn rebuild_fragment(&mut self, site: SiteId, table: TableId) {
        let schema = self.instance.schema();
        let attrs: Vec<AttrId> = schema
            .table_attrs(table)
            .map(AttrId::from_index)
            .filter(|&a| self.partitioning.has_attr(a, site))
            .collect();
        self.sites[site.index()].fragments[table.index()] = if attrs.is_empty() {
            None
        } else {
            let width: f64 = attrs.iter().map(|&a| schema.width(a)).sum();
            Some(Fragment::new(table, attrs, width, self.rows_per_fragment))
        };
    }

    /// Shared resume-path validation: the journal must belong to `plan`
    /// and the deployment must sit exactly at its durable boundary.
    fn check_journal_matches(
        &self,
        plan: &BatchedMigrationPlan,
        journal: &MigrationJournal,
    ) -> Result<(), EngineError> {
        match journal.fingerprint() {
            Some(fp) if fp == plan.fingerprint() => {}
            Some(_) => {
                return Err(EngineError::CorruptJournal {
                    what: "journal fingerprint does not match the plan".to_string(),
                })
            }
            None => {
                return Err(EngineError::CorruptJournal {
                    what: "journal has records but no Start".to_string(),
                })
            }
        }
        let boundary = journal.state().boundary();
        if boundary > plan.n_batches() {
            return Err(EngineError::CorruptJournal {
                what: "journal commits more batches than the plan holds".to_string(),
            });
        }
        if self.partitioning != plan.boundary(boundary) {
            return Err(EngineError::MigrationMismatch {
                what: "deployment is not at the journal's batch boundary (recover() first)",
            });
        }
        Ok(())
    }

    /// Assembles a report from the journal's durable state.
    #[allow(clippy::too_many_arguments)]
    fn batched_report(
        &self,
        plan: &BatchedMigrationPlan,
        journal: &MigrationJournal,
        bytes_this_run: f64,
        batches_applied: usize,
        installs: usize,
        drops: usize,
        txns_rerouted: usize,
    ) -> BatchedMigrationReport {
        let st = journal.state();
        BatchedMigrationReport {
            bytes_moved: if st.rolling_back || st.rolled_back {
                st.bytes_undone
            } else {
                st.bytes_committed
            },
            bytes_this_run,
            batches_applied,
            boundary: st.boundary(),
            batches_total: plan.n_batches(),
            installs,
            drops,
            txns_rerouted,
            peak_transient_bytes: plan.peak_transient_bytes,
            resumed: true,
            completed: st.complete,
            rolled_back: st.rolled_back,
        }
    }

    /// `debug-invariants` self-check: after a migration, the physical
    /// fragments must agree exactly with the logical partitioning —
    /// every `(site, table)` fraction holds precisely the attributes
    /// `y` places there, with the matching width and row count, and no
    /// empty fragments linger. Compiles to nothing without the feature.
    #[cfg(feature = "debug-invariants")]
    fn debug_check_storage_bookkeeping(&self) {
        let schema = self.instance.schema();
        for site in &self.sites {
            for t in 0..self.instance.n_tables() {
                let table = vpart_model::TableId::from_index(t);
                let expected: Vec<AttrId> = schema
                    .table_attrs(table)
                    .map(AttrId::from_index)
                    .filter(|&a| self.partitioning.has_attr(a, site.id))
                    .collect();
                match &site.fragments[t] {
                    None => assert!(
                        expected.is_empty(),
                        "site {:?} table {:?}: partitioning places {:?} but no fragment exists",
                        site.id,
                        table,
                        expected
                    ),
                    Some(f) => {
                        assert!(
                            !f.attrs.is_empty(),
                            "site {:?} table {:?}: empty fragment not pruned",
                            site.id,
                            table
                        );
                        assert_eq!(
                            f.attrs, expected,
                            "site {:?} table {:?}: fragment attrs diverge from partitioning",
                            site.id, table
                        );
                        let width: f64 = expected.iter().map(|&a| schema.width(a)).sum();
                        assert!(
                            (f.width - width).abs() <= 1e-9 * (1.0 + width),
                            "site {:?} table {:?}: fragment width {} != schema width {width}",
                            site.id,
                            table,
                            f.width
                        );
                        assert_eq!(
                            f.rows, self.rows_per_fragment,
                            "site {:?} table {:?}: fragment row count drifted",
                            site.id, table
                        );
                    }
                }
            }
        }
    }

    #[cfg(not(feature = "debug-invariants"))]
    #[inline(always)]
    fn debug_check_storage_bookkeeping(&self) {}

    /// Executes `trace`, metering bytes per the H-store-like semantics:
    ///
    /// * reads fetch the executing site's whole fraction rows of every
    ///   touched table (row-store quantum),
    /// * writes update the fraction rows of touched tables on **every**
    ///   replica site (the paper's all-attribute write accounting),
    /// * updated (α) attributes are shipped to every replica site other
    ///   than the executing one.
    pub fn execute(&mut self, trace: &Trace) -> Result<ExecutionReport, EngineError> {
        let mut per_site = vec![SiteMetrics::default(); self.sites.len()];
        let mut transfer = 0.0f64;
        let mut single_sited = 0usize;
        let mut queries = 0usize;
        let mut rows_touched = 0usize;
        let mut checksum = 0u64;

        for (exec_idx, &txn) in trace.executions.iter().enumerate() {
            let home = self.partitioning.site_of(txn);
            let mut execution_transferred = false;
            for &qid in &self.instance.workload().txn(txn).queries {
                let q = self.instance.workload().query(qid);
                queries += 1;
                let reps = q.frequency.round().max(1.0) as usize;
                for rep in 0..reps {
                    let row_base = exec_idx.wrapping_mul(31).wrapping_add(rep * 7);
                    if q.kind.is_write() {
                        for &(table, n) in &q.table_rows {
                            let n_phys = n.round().max(1.0) as usize;
                            for (si, site) in self.sites.iter_mut().enumerate() {
                                if let Some(frag) = site.fragment_mut(table) {
                                    per_site[si].bytes_written += frag.width * n;
                                    for r in 0..n_phys {
                                        frag.write_row(row_base + r, (exec_idx % 251) as u8);
                                        rows_touched += 1;
                                    }
                                }
                            }
                        }
                        for &a in &q.attrs {
                            let n = q.rows_for_table(self.instance.schema().table_of(a));
                            let w = self.instance.schema().width(a);
                            for s in self.partitioning.attr_sites(a) {
                                if s != home {
                                    transfer += w * n;
                                    execution_transferred = true;
                                }
                            }
                        }
                    } else {
                        // Single-sitedness: every read attribute must be
                        // present on the home site.
                        for &a in &q.attrs {
                            if !self.partitioning.has_attr(a, home) {
                                return Err(EngineError::NotSingleSited {
                                    txn,
                                    attr: a,
                                    site: home,
                                });
                            }
                        }
                        for &(table, n) in &q.table_rows {
                            let n_phys = n.round().max(1.0) as usize;
                            let site = &self.sites[home.index()];
                            if let Some(frag) = site.fragment(table) {
                                per_site[home.index()].bytes_read += frag.width * n;
                                for r in 0..n_phys {
                                    let row = frag.read_row(row_base + r);
                                    checksum = checksum
                                        .wrapping_mul(1099511628211)
                                        .wrapping_add(row[0] as u64);
                                    rows_touched += 1;
                                }
                            }
                        }
                    }
                }
            }
            if !execution_transferred {
                single_sited += 1;
            }
        }

        Ok(ExecutionReport {
            per_site,
            transfer_bytes: transfer,
            executions: trace.executions.len(),
            single_sited_executions: single_sited,
            queries_executed: queries,
            rows_touched,
            checksum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::workload::QuerySpec;
    use vpart_model::{Schema, Workload};

    /// R{a(4), b(8)}: T0 reads a (1 row); T1 writes b (2 rows).
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0)]))
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(1)])
                    .rows(vpart_model::TableId(0), 2.0),
            )
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("eng", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn single_site_execution_meters_by_hand() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let mut dep = Deployment::new(&ins, &part, 16).unwrap();
        let report = dep.execute(&Trace::uniform(&ins, 1)).unwrap();
        // Read: whole fraction (a+b = 12 bytes) × 1 row.
        let t = report.totals();
        assert_eq!(t.bytes_read, 12.0);
        // Write: fraction width 12 × 2 rows on the single replica.
        assert_eq!(t.bytes_written, 24.0);
        assert_eq!(report.transfer_bytes, 0.0);
        assert_eq!(report.single_sited_executions, 2);
        assert_eq!(report.measured_objective4(8.0), 36.0);
        assert!(report.rows_touched >= 3);
    }

    #[test]
    fn replication_generates_transfer() {
        let ins = instance();
        let mut part = Partitioning::single_site(&ins, 2).unwrap();
        part.add_replica(AttrId(1), SiteId(1)); // b replicated; T1 home = s0
        let mut dep = Deployment::new(&ins, &part, 8).unwrap();
        let report = dep.execute(&Trace::uniform(&ins, 1)).unwrap();
        // Transfer: b (8 bytes) × 2 rows to the remote replica.
        assert_eq!(report.transfer_bytes, 16.0);
        // Writes hit both fragments: site0 fraction 12 × 2 + site1 (b only,
        // width 8) × 2.
        let t = report.totals();
        assert_eq!(t.bytes_written, 24.0 + 16.0);
        assert_eq!(report.single_sited_executions, 1);
        assert!(report.single_sited_ratio() < 1.0);
    }

    #[test]
    fn rejects_non_single_sited_deployment() {
        let ins = instance();
        // T0 on site 1, but `a` only on site 0 → invalid at deploy time.
        let mut y = vpart_model::BitMatrix::new(2, 2);
        y.set(0, 0);
        y.set(1, 0);
        let part = Partitioning::from_parts(2, vec![SiteId(1), SiteId(0)], y).unwrap();
        assert!(matches!(
            Deployment::new(&ins, &part, 4),
            Err(EngineError::Model(_))
        ));
    }

    #[test]
    fn deterministic_checksum() {
        let ins = instance();
        let part = Partitioning::single_site(&ins, 1).unwrap();
        let r1 = Deployment::new(&ins, &part, 16)
            .unwrap()
            .execute(&Trace::uniform(&ins, 2))
            .unwrap();
        let r2 = Deployment::new(&ins, &part, 16)
            .unwrap()
            .execute(&Trace::uniform(&ins, 2))
            .unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn apply_migration_moves_and_meters_exactly() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        // Replicate b to site 1 and re-home T1 there.
        let mut to = from.clone();
        to.add_replica(AttrId(1), SiteId(1));
        to.move_txn(TxnId(1), SiteId(1));
        let plan = vpart_model::MigrationPlan::between(&ins, &from, &to, 16).unwrap();
        assert_eq!(plan.estimated_bytes(), 8.0 * 16.0);

        let mut dep = Deployment::new(&ins, &from, 16).unwrap();
        let before = dep.stored_bytes();
        let report = dep.apply_migration(&plan).unwrap();
        assert_eq!(report.bytes_moved, plan.estimated_bytes());
        assert_eq!(report.per_change_bytes.len(), plan.changes.len());
        for (m, c) in report.per_change_bytes.iter().zip(&plan.changes) {
            assert_eq!(*m, c.bytes, "per-change meter matches the estimate");
        }
        assert_eq!(report.installs, 1);
        assert_eq!(report.drops, 0);
        assert_eq!(report.txns_rerouted, 1);
        assert_eq!(dep.partitioning(), &to);
        assert!(dep.stored_bytes() > before, "the replica is materialized");
        // The migrated deployment still executes.
        dep.execute(&Trace::uniform(&ins, 1)).unwrap();
    }

    #[test]
    fn apply_migration_drops_shrink_fragments() {
        let ins = instance();
        let mut from = Partitioning::single_site(&ins, 2).unwrap();
        from.add_replica(AttrId(1), SiteId(1));
        let to = Partitioning::single_site(&ins, 2).unwrap();
        let plan = vpart_model::MigrationPlan::between(&ins, &from, &to, 8).unwrap();
        assert_eq!(plan.estimated_bytes(), 0.0, "drops ship nothing");
        let mut dep = Deployment::new(&ins, &from, 8).unwrap();
        let before = dep.stored_bytes();
        let report = dep.apply_migration(&plan).unwrap();
        assert_eq!(report.bytes_moved, 0.0);
        assert_eq!(report.drops, 1);
        assert!(dep.stored_bytes() < before, "the replica is deleted");
        assert!(dep.sites()[1].fragment(vpart_model::TableId(0)).is_none());
    }

    /// With `debug-invariants` on, a chain of migrations keeps the
    /// physical fragments in lockstep with the logical partitioning —
    /// the self-check in `apply_migration` runs after every plan.
    #[cfg(feature = "debug-invariants")]
    #[test]
    fn migration_chain_passes_the_bookkeeping_self_check() {
        let ins = instance();
        let base = Partitioning::single_site(&ins, 2).unwrap();
        let mut dep = Deployment::new(&ins, &base, 8).unwrap();
        let mut layouts = vec![base.clone()];
        let mut grown = base.clone();
        grown.add_replica(AttrId(1), SiteId(1));
        layouts.push(grown.clone());
        grown.move_txn(TxnId(1), SiteId(1));
        layouts.push(grown);
        layouts.push(base); // and all the way back
        for pair in layouts.windows(2) {
            let plan = vpart_model::MigrationPlan::between(&ins, &pair[0], &pair[1], 8).unwrap();
            dep.apply_migration(&plan).unwrap();
            assert_eq!(dep.partitioning(), &pair[1]);
        }
    }

    #[test]
    fn apply_migration_rejects_mismatched_and_corrupt_plans() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        let mut to = from.clone();
        to.add_replica(AttrId(0), SiteId(1));
        let plan = vpart_model::MigrationPlan::between(&ins, &from, &to, 16).unwrap();

        // Wrong starting layout.
        let mut dep = Deployment::new(&ins, &to, 16).unwrap();
        assert!(matches!(
            dep.apply_migration(&plan),
            Err(EngineError::MigrationMismatch { .. })
        ));
        // Wrong row count.
        let mut dep = Deployment::new(&ins, &from, 32).unwrap();
        assert!(matches!(
            dep.apply_migration(&plan),
            Err(EngineError::MigrationMismatch { .. })
        ));
        // Tampered plan: changes no longer produce `to`.
        let mut bad = plan.clone();
        bad.changes.clear();
        let mut dep = Deployment::new(&ins, &from, 16).unwrap();
        assert!(matches!(
            dep.apply_migration(&bad),
            Err(EngineError::CorruptPlan { .. })
        ));
        // Rejected plans leave the deployment untouched.
        assert_eq!(dep.partitioning(), &from);
    }

    #[test]
    fn stored_bytes_scale_with_replication() {
        let ins = instance();
        let single = Partitioning::single_site(&ins, 2).unwrap();
        let dep1 = Deployment::new(&ins, &single, 100).unwrap();
        let mut replicated = single.clone();
        replicated.add_replica(AttrId(0), SiteId(1));
        replicated.add_replica(AttrId(1), SiteId(1));
        let dep2 = Deployment::new(&ins, &replicated, 100).unwrap();
        assert!(dep2.stored_bytes() > dep1.stored_bytes());
    }

    /// Everything relocates from site 0 to site 1 — a migration the
    /// batcher must split across several batches at a small budget.
    fn relocation_pair(ins: &Instance) -> (Partitioning, Partitioning) {
        let from = Partitioning::single_site(ins, 2).unwrap();
        let mut to = from.clone();
        to.add_replica(AttrId(0), SiteId(1));
        to.add_replica(AttrId(1), SiteId(1));
        to.move_txn(TxnId(0), SiteId(1));
        to.move_txn(TxnId(1), SiteId(1));
        to.remove_replica(AttrId(0), SiteId(0));
        to.remove_replica(AttrId(1), SiteId(0));
        (from, to)
    }

    fn relocation_plan(ins: &Instance) -> vpart_model::BatchedMigrationPlan {
        let (from, to) = relocation_pair(ins);
        vpart_model::MigrationPlan::between(ins, &from, &to, 16)
            .unwrap()
            .batched(ins, 64.0)
            .unwrap()
    }

    #[test]
    fn batched_migration_matches_atomic_apply() {
        let ins = instance();
        let (from, to) = relocation_pair(&ins);
        let plan = vpart_model::MigrationPlan::between(&ins, &from, &to, 16).unwrap();
        let batched = plan.batched(&ins, 64.0).unwrap();
        assert!(batched.n_batches() >= 2, "budget should split the plan");

        let mut atomic = Deployment::new(&ins, &from, 16).unwrap();
        let atomic_report = atomic.apply_migration(&plan).unwrap();

        let mut dep = Deployment::new(&ins, &from, 16).unwrap();
        let mut journal = MigrationJournal::new();
        let report = dep
            .migrate_batched(&batched, &mut journal, &mut FaultInjector::disabled())
            .unwrap();
        assert!(report.completed && !report.resumed);
        assert_eq!(report.boundary, batched.n_batches());
        assert_eq!(report.bytes_moved, atomic_report.bytes_moved);
        assert_eq!(report.bytes_moved, plan.estimated_bytes());
        assert_eq!(dep.partitioning(), &to);
        assert_eq!(
            dep.state_fingerprint(),
            atomic.state_fingerprint(),
            "batched and atomic migration must reach bit-identical storage"
        );
    }

    /// Crash at every batch boundary (the window after ops hit storage
    /// but before the commit is durable), recover from the journal and
    /// resume: state and byte meter end bit-identical to a run that
    /// never crashed.
    #[test]
    fn crash_at_every_boundary_recovers_bit_identically() {
        let ins = instance();
        let plan = relocation_plan(&ins);
        let n = plan.n_batches();

        let mut clean = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let mut clean_journal = MigrationJournal::new();
        clean
            .migrate_batched(&plan, &mut clean_journal, &mut FaultInjector::disabled())
            .unwrap();
        let clean_fp = clean.state_fingerprint();
        let clean_bytes = clean_journal.state().bytes_committed;

        for k in 1..=n {
            let mut dep = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
            let mut journal = MigrationJournal::new();
            let mut faults = FaultInjector::new(1);
            faults
                .arm_spec(&format!("migration.batch:nth={k}"))
                .unwrap();
            let err = dep
                .migrate_batched(&plan, &mut journal, &mut faults)
                .unwrap_err();
            assert!(matches!(err, EngineError::Injected { .. }));
            assert_eq!(
                journal.state().boundary(),
                k - 1,
                "commit k never became durable"
            );

            // The journal survives as text; the crashed deployment does not.
            let journal_text = journal.to_jsonl();
            let mut journal = MigrationJournal::from_jsonl(&journal_text).unwrap();
            let mut dep = Deployment::recover(&ins, &plan, &journal).unwrap();
            let report = dep
                .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
                .unwrap();
            assert!(report.resumed && report.completed);
            assert_eq!(dep.state_fingerprint(), clean_fp, "crash at batch {k}");
            assert_eq!(journal.state().bytes_committed, clean_bytes);
            assert_eq!(report.bytes_moved, clean_bytes, "meter never double-counts");
        }
    }

    #[test]
    fn rollback_after_crash_restores_the_source_exactly() {
        let ins = instance();
        let plan = relocation_plan(&ins);
        let pristine_fp = Deployment::new(&ins, &plan.plan.from, 16)
            .unwrap()
            .state_fingerprint();

        let mut dep = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let mut journal = MigrationJournal::new();
        let mut faults = FaultInjector::new(2);
        faults.arm_spec("migration.batch:nth=2").unwrap();
        dep.migrate_batched(&plan, &mut journal, &mut faults)
            .unwrap_err();

        let mut dep = Deployment::recover(&ins, &plan, &journal).unwrap();
        let report = dep
            .rollback_migration(&plan, &mut journal, &mut FaultInjector::disabled())
            .unwrap();
        assert!(report.rolled_back);
        assert_eq!(dep.partitioning(), &plan.plan.from);
        assert_eq!(dep.state_fingerprint(), pristine_fp);
        // A rolled-back journal is terminal for both directions.
        assert!(dep
            .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
            .is_err());
        let again = dep
            .rollback_migration(&plan, &mut journal, &mut FaultInjector::disabled())
            .unwrap();
        assert_eq!(again.batches_applied, 0, "rollback is idempotent");
    }

    /// A crash during rollback resumes the rollback the same way.
    #[test]
    fn rollback_crash_resumes_to_source() {
        let ins = instance();
        let plan = relocation_plan(&ins);
        let mut dep = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let mut journal = MigrationJournal::new();
        let mut faults = FaultInjector::new(3);
        faults
            .arm_spec(&format!("migration.batch:nth={}", plan.n_batches()))
            .unwrap();
        faults.arm_spec("migration.rollback:nth=1").unwrap();
        dep.migrate_batched(&plan, &mut journal, &mut faults)
            .unwrap_err();

        let mut dep = Deployment::recover(&ins, &plan, &journal).unwrap();
        dep.rollback_migration(&plan, &mut journal, &mut faults)
            .unwrap_err();

        let mut dep = Deployment::recover(&ins, &plan, &journal).unwrap();
        let report = dep
            .rollback_migration(&plan, &mut journal, &mut FaultInjector::disabled())
            .unwrap();
        assert!(report.rolled_back && report.resumed);
        assert_eq!(dep.partitioning(), &plan.plan.from);
    }

    #[test]
    fn rate_limited_batches_step_to_completion() {
        let ins = instance();
        let plan = relocation_plan(&ins);
        let mut dep = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let mut journal = MigrationJournal::new();
        let mut faults = FaultInjector::disabled();
        let mut steps = 0usize;
        let mut total = 0.0f64;
        loop {
            let r = dep
                .migrate_batches(&plan, &mut journal, &mut faults, 1)
                .unwrap();
            total += r.bytes_this_run;
            steps += 1;
            if r.completed {
                break;
            }
            assert_eq!(r.boundary, steps, "one batch per call");
        }
        assert_eq!(steps, plan.n_batches());
        assert_eq!(total, plan.estimated_bytes());
        assert_eq!(dep.partitioning(), &plan.plan.to);
        // Re-running a complete migration is a observable no-op.
        let again = dep
            .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
            .unwrap();
        assert!(again.completed && again.resumed);
        assert_eq!(again.batches_applied, 0);
        assert_eq!(again.bytes_this_run, 0.0);
    }

    #[test]
    fn journal_from_another_plan_is_rejected() {
        let ins = instance();
        let plan = relocation_plan(&ins);
        let mut dep = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let mut journal = MigrationJournal::new();
        dep.migrate_batches(&plan, &mut journal, &mut FaultInjector::disabled(), 1)
            .unwrap();

        // Same endpoints, different budget ⇒ different fingerprint.
        let other = plan.plan.clone().batched(&ins, 1e9).unwrap();
        assert_ne!(other.fingerprint(), plan.fingerprint());
        assert!(matches!(
            dep.migrate_batched(&other, &mut journal, &mut FaultInjector::disabled()),
            Err(EngineError::CorruptJournal { .. })
        ));
        assert!(matches!(
            Deployment::recover(&ins, &other, &journal),
            Err(EngineError::CorruptJournal { .. })
        ));
        // A deployment that drifted off the journal's boundary must be
        // rebuilt with recover() before resuming.
        let mut stale = Deployment::new(&ins, &plan.plan.from, 16).unwrap();
        let stale_err = stale
            .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
            .unwrap_err();
        assert!(matches!(stale_err, EngineError::MigrationMismatch { .. }));
    }
}
