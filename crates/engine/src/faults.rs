//! Deterministic, seeded fault injection.
//!
//! Production repartitioners fail in the middle of things: a migration
//! batch aborts, a replay worker dies, a re-solve times out. This module
//! makes those failures *schedulable*: code under test declares named fail
//! points (`faults.fail("migration.batch")?`) and a [`FaultInjector`]
//! decides — from a seed and a trigger schedule, never from the wall clock
//! or OS entropy — whether each hit fires. Equal seeds and equal hit
//! sequences fire identically on every platform, so a crash injected in a
//! test is exactly reproducible, and a sweep harness can enumerate "crash
//! at hit 1, at hit 2, …" exhaustively.
//!
//! Trigger schedules are parsed from compact spec strings (the CLI's
//! `--fault` flag uses the same syntax):
//!
//! * `point:nth=3` — fire on the 3rd hit of `point`, once;
//! * `point:prob=0.01` — fire each hit with probability 0.01, decided by a
//!   splitmix64 stream seeded from the injector seed and the point name;
//! * `point:once` — fire on the first hit, once.
//!
//! The default injector has no arms and every check is a cheap early-out,
//! so production paths can keep their fail points permanently wired.

use crate::executor::EngineError;

/// The well-known fail point at migration batch boundaries: fires after a
/// batch's ops are applied but *before* its commit record is journaled —
/// the worst-case crash window for recovery to handle.
pub const FP_MIGRATION_BATCH: &str = "migration.batch";
/// Fail point hit once per replay pass, at the coordinator, after the pass
/// ran but before its results are accepted (the pass is discarded and
/// retried — meters stay bit-identical to a fault-free run).
pub const FP_REPLAY_PASS: &str = "replay.pass";
/// Fail point in the online control loop's re-solve step (a solver
/// timeout / crash stand-in; the `Watcher` retries with backoff).
pub const FP_WATCH_RESOLVE: &str = "watch.resolve";
/// Fail point in the rollback path: fires between undo batches, so
/// mid-rollback crashes are exercisable too.
pub const FP_MIGRATION_ROLLBACK: &str = "migration.rollback";

/// When an armed fail point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTrigger {
    /// Fire on exactly the n-th hit (1-based), once.
    Nth(u64),
    /// Fire on each hit independently with this probability, decided by a
    /// seeded splitmix64 stream (no OS entropy).
    Prob(f64),
    /// Fire on the first hit, once.
    Once,
}

/// One armed fail point: a point name plus a trigger schedule.
#[derive(Debug, Clone, PartialEq)]
struct FaultArm {
    point: String,
    trigger: FaultTrigger,
    hits: u64,
    fired: u64,
}

/// A registry of armed fail points with deterministic trigger schedules.
///
/// Cloning an injector clones its full state (hit counters included), so a
/// sweep harness can fork schedules mid-run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    arms: Vec<FaultArm>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultInjector {
    /// An injector with no armed points: every check is a no-op.
    pub fn disabled() -> Self {
        Self {
            seed: 0,
            arms: Vec::new(),
        }
    }

    /// An injector whose probabilistic triggers draw from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            arms: Vec::new(),
        }
    }

    /// Arms `point` with an explicit trigger.
    pub fn arm(&mut self, point: &str, trigger: FaultTrigger) {
        self.arms.push(FaultArm {
            point: point.to_string(),
            trigger,
            hits: 0,
            fired: 0,
        });
    }

    /// Arms a fail point from a `point:trigger` spec string
    /// (`migration.batch:nth=3`, `replay.pass:prob=0.01`,
    /// `watch.resolve:once`). Returns [`EngineError::InvalidFault`] on
    /// malformed specs.
    pub fn arm_spec(&mut self, spec: &str) -> Result<(), EngineError> {
        let bad = |what: String| EngineError::InvalidFault { what };
        let (point, trig) = spec
            .rsplit_once(':')
            .ok_or_else(|| bad(format!("{spec:?}: expected `point:trigger`")))?;
        if point.is_empty() {
            return Err(bad(format!("{spec:?}: empty fail-point name")));
        }
        let trigger = if trig == "once" {
            FaultTrigger::Once
        } else if let Some(n) = trig.strip_prefix("nth=") {
            let n: u64 = n
                .parse()
                .map_err(|_| bad(format!("{spec:?}: `nth=` wants an integer")))?;
            if n == 0 {
                return Err(bad(format!("{spec:?}: `nth=` is 1-based, got 0")));
            }
            FaultTrigger::Nth(n)
        } else if let Some(p) = trig.strip_prefix("prob=") {
            let p: f64 = p
                .parse()
                .map_err(|_| bad(format!("{spec:?}: `prob=` wants a number")))?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(bad(format!(
                    "{spec:?}: `prob=` wants a probability in (0, 1], got {p}"
                )));
            }
            FaultTrigger::Prob(p)
        } else {
            return Err(bad(format!(
                "{spec:?}: unknown trigger {trig:?} (want `nth=N`, `prob=P` or `once`)"
            )));
        };
        self.arm(point, trigger);
        Ok(())
    }

    /// Arms every spec in a comma-separated list (the CLI's `--fault`).
    pub fn arm_specs(&mut self, specs: &str) -> Result<(), EngineError> {
        for spec in specs.split(',').filter(|s| !s.is_empty()) {
            self.arm_spec(spec)?;
        }
        Ok(())
    }

    /// True when no points are armed (the production fast path).
    pub fn is_disabled(&self) -> bool {
        self.arms.is_empty()
    }

    /// Registers one hit of `point` and reports whether an arm fired.
    /// `Nth`/`Once` arms fire at most once; `Prob` arms may fire on any
    /// hit, decided by `splitmix64(seed ⊕ hash(point) ⊕ hit_count)`.
    pub fn hit(&mut self, point: &str) -> bool {
        if self.arms.is_empty() {
            return false;
        }
        let mut fired = false;
        for arm in self.arms.iter_mut().filter(|a| a.point == point) {
            arm.hits += 1;
            let fires = match arm.trigger {
                FaultTrigger::Nth(n) => arm.hits == n,
                FaultTrigger::Once => arm.fired == 0,
                FaultTrigger::Prob(p) => {
                    let draw = splitmix64(self.seed ^ str_hash(point) ^ arm.hits);
                    // Top 53 bits → uniform in [0, 1).
                    ((draw >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
                }
            };
            if fires {
                arm.fired += 1;
                fired = true;
            }
        }
        fired
    }

    /// [`hit`](Self::hit) as a fallible operation: returns
    /// [`EngineError::Injected`] when an arm fires. The idiom at a fail
    /// point is `faults.fail(FP_X)?;`.
    pub fn fail(&mut self, point: &str) -> Result<(), EngineError> {
        if self.hit(point) {
            Err(EngineError::Injected {
                point: point.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Total times any arm of `point` has fired (test introspection).
    pub fn fired(&self, point: &str) -> u64 {
        self.arms
            .iter()
            .filter(|a| a.point == point)
            .map(|a| a.fired)
            .sum()
    }
}

/// The splitmix64 finalizer: a full-period bijective mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the point name: stable across processes and platforms.
fn str_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        let mut f = FaultInjector::disabled();
        for _ in 0..100 {
            assert!(!f.hit(FP_MIGRATION_BATCH));
        }
        assert!(f.is_disabled());
        assert_eq!(f.fired(FP_MIGRATION_BATCH), 0);
    }

    #[test]
    fn nth_fires_exactly_once_at_the_nth_hit() {
        let mut f = FaultInjector::new(7);
        f.arm_spec("p:nth=3").unwrap();
        assert!(!f.hit("p"));
        assert!(!f.hit("p"));
        assert!(f.hit("p"));
        for _ in 0..10 {
            assert!(!f.hit("p"));
        }
        assert_eq!(f.fired("p"), 1);
    }

    #[test]
    fn once_fires_on_the_first_hit_only() {
        let mut f = FaultInjector::new(7);
        f.arm_spec("p:once").unwrap();
        assert!(f.hit("p"));
        assert!(!f.hit("p"));
        assert_eq!(f.fired("p"), 1);
    }

    #[test]
    fn prob_is_seed_deterministic() {
        let run = |seed| {
            let mut f = FaultInjector::new(seed);
            f.arm_spec("p:prob=0.5").unwrap();
            (0..64).map(|_| f.hit("p")).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds draw differently");
        let fires = run(1).iter().filter(|&&b| b).count();
        assert!(
            fires > 10 && fires < 54,
            "p=0.5 fires roughly half: {fires}"
        );
    }

    #[test]
    fn points_are_independent() {
        let mut f = FaultInjector::new(7);
        f.arm_spec("a:once").unwrap();
        assert!(!f.hit("b"));
        assert!(f.hit("a"));
    }

    #[test]
    fn fail_maps_to_injected_error() {
        let mut f = FaultInjector::new(7);
        f.arm_spec("p:once").unwrap();
        assert_eq!(
            f.fail("p"),
            Err(EngineError::Injected {
                point: "p".to_string()
            })
        );
        assert_eq!(f.fail("p"), Ok(()));
    }

    #[test]
    fn comma_separated_specs_arm_multiple_points() {
        let mut f = FaultInjector::new(7);
        f.arm_specs("a:once,b:nth=2").unwrap();
        assert!(f.hit("a"));
        assert!(!f.hit("b"));
        assert!(f.hit("b"));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let mut f = FaultInjector::new(7);
        for bad in [
            "noseparator",
            ":once",
            "p:nth=0",
            "p:nth=x",
            "p:prob=0",
            "p:prob=1.5",
            "p:prob=abc",
            "p:sometimes",
        ] {
            assert!(
                matches!(f.arm_spec(bad), Err(EngineError::InvalidFault { .. })),
                "{bad:?} must be rejected"
            );
        }
    }
}
