//! Replay harness validation: byte meters are bit-identical across thread
//! counts and repeated runs, and the true-byte measurement stays within a
//! pinned bound of the cost model's prediction on TPC-C.

use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{predicted_txn_bytes, CostConfig};
use vpart_engine::{PredictedBytes, ReplayConfig, ReplayDeployment, ReplayStream};
use vpart_instances::tpcc;
use vpart_model::{Instance, Partitioning};

fn solved(ins: &Instance, sites: usize, seed: u64) -> Partitioning {
    SaSolver::new(SaConfig::fast_deterministic(seed))
        .solve(ins, sites, &CostConfig::default())
        .expect("SA solves TPC-C")
        .partitioning
}

/// The model's prediction for one pass of `stream`: per-transaction bytes
/// weighted by the stream's execution counts.
fn predicted_for_stream(
    ins: &Instance,
    part: &Partitioning,
    stream: &ReplayStream,
) -> PredictedBytes {
    let per = predicted_txn_bytes(ins, part, &CostConfig::default());
    let counts = stream.counts(ins.n_txns());
    let mut p = PredictedBytes::default();
    for (t, &c) in counts.iter().enumerate() {
        p.read += c as f64 * per[t].read;
        p.written += c as f64 * per[t].written;
        p.transferred += c as f64 * per[t].transferred;
    }
    p
}

#[test]
fn meters_are_thread_count_independent_on_tpcc() {
    let ins = tpcc();
    let part = solved(&ins, 3, 1);
    let stream = ReplayStream::weighted(&ins, 300, 42);
    let mut reference = None;
    for threads in [1usize, 2, 4, 16] {
        let mut dep = ReplayDeployment::new(&ins, &part, 256, 32).expect("deploys");
        let report = dep
            .replay(&stream, &ReplayConfig::deterministic(threads), None)
            .expect("replays");
        assert_eq!(report.txns_replayed, 300);
        let fp = report.meter_fingerprint();
        match &reference {
            None => reference = Some(fp),
            Some(r) => assert_eq!(
                r, &fp,
                "byte meters must be bit-identical at {threads} threads"
            ),
        }
    }
}

#[test]
fn fixed_seed_reproduces_meters_and_counts() {
    let ins = tpcc();
    let part = solved(&ins, 3, 1);
    let run = || {
        let stream = ReplayStream::weighted(&ins, 150, 7);
        ReplayDeployment::new(&ins, &part, 128, 16)
            .expect("deploys")
            .replay(&stream, &ReplayConfig::deterministic(2), None)
            .expect("replays")
    };
    let a = run();
    let b = run();
    assert_eq!(a.meter_fingerprint(), b.meter_fingerprint());
    assert_eq!(a.txns_replayed, b.txns_replayed);
    assert_eq!(a.passes, b.passes);
    // A different seed really does touch different rows.
    let other = ReplayStream::weighted(&ins, 150, 8);
    let c = ReplayDeployment::new(&ins, &part, 128, 16)
        .expect("deploys")
        .replay(&other, &ReplayConfig::deterministic(2), None)
        .expect("replays");
    assert_ne!(a.checksum, c.checksum, "seed must steer the row touches");
}

#[test]
fn model_error_stays_bounded_on_tpcc() {
    let ins = tpcc();
    for (sites, seed) in [(1usize, 0u64), (3, 1)] {
        let part = if sites == 1 {
            Partitioning::single_site(&ins, 1).expect("single site deploys")
        } else {
            solved(&ins, sites, seed)
        };
        let stream = ReplayStream::uniform(&ins, 4, 9);
        let predicted = predicted_for_stream(&ins, &part, &stream);
        let mut dep = ReplayDeployment::new(&ins, &part, 256, 32).expect("deploys");
        let report = dep
            .replay(&stream, &ReplayConfig::deterministic(2), Some(&predicted))
            .expect("replays");
        let me = report.model_error.expect("prediction supplied");
        // The gap is pure quantization (physical widths round up, row
        // counts and frequencies round to integers), so it is small and
        // non-negative on TPC-C's integer-width schema.
        assert!(
            me.overall_ratio.abs() < 0.15,
            "{sites} sites: model error {:+.4} out of bounds (predicted {:?}, measured {:?})",
            me.overall_ratio,
            me.predicted,
            me.measured
        );
        assert!(
            me.overall_ratio >= -1e-12,
            "true bytes can only exceed the fractional model on TPC-C"
        );
    }
}

#[test]
fn throughput_reporting_counts_all_passes() {
    let ins = tpcc();
    let part = solved(&ins, 3, 1);
    let stream = ReplayStream::weighted(&ins, 50, 3);
    let mut dep = ReplayDeployment::new(&ins, &part, 64, 8).expect("deploys");
    let report = dep
        .replay(
            &stream,
            &ReplayConfig {
                threads: 2,
                min_duration: std::time::Duration::from_millis(10),
                max_passes: 1000,
                ..ReplayConfig::default()
            },
            None,
        )
        .expect("replays");
    assert!(report.passes >= 1);
    assert_eq!(report.txns_replayed, report.passes * 50);
    assert!(report.throughput_txns_per_sec() > 0.0);
    assert!(report.elapsed >= std::time::Duration::from_millis(10) || report.passes == 1000);
}
