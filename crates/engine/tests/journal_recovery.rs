//! Journal persistence and recovery through a real file: crash, write the
//! JSONL journal to disk, read it back, recover — plus on-disk corruption
//! detection, idempotent re-application and mid-rollback crashes.

use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::CostConfig;
use vpart_engine::{Deployment, EngineError, FaultInjector, MigrationJournal};
use vpart_instances::tpcc;
use vpart_model::{BatchedMigrationPlan, Instance, MigrationPlan, Partitioning};

const ROWS: usize = 8;

fn batched(ins: &Instance) -> BatchedMigrationPlan {
    let from = Partitioning::single_site(ins, 3).expect("single-site start");
    let to = SaSolver::new(SaConfig::fast_deterministic(1))
        .solve(ins, 3, &CostConfig::default())
        .expect("SA solves TPC-C")
        .partitioning;
    let plan = MigrationPlan::between(ins, &from, &to, ROWS).expect("plan builds");
    let b = plan
        .batched(ins, plan.estimated_bytes() / 4.0)
        .expect("plan batches");
    assert!(b.n_batches() >= 2);
    b
}

/// Runs `plan` until the armed `spec` crashes it; returns the journal.
fn crash(ins: &Instance, plan: &BatchedMigrationPlan, spec: &str) -> MigrationJournal {
    let mut dep = Deployment::new(ins, &plan.plan.from, ROWS).expect("deploys");
    let mut journal = MigrationJournal::new();
    let mut faults = FaultInjector::new(1);
    faults.arm_spec(spec).expect("spec parses");
    let err = dep
        .migrate_batched(plan, &mut journal, &mut faults)
        .expect_err("armed migration must crash");
    assert!(matches!(err, EngineError::Injected { .. }));
    journal
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vpart_journal_{}_{name}", std::process::id()))
}

#[test]
fn journal_persists_to_disk_and_resumes() {
    let ins = tpcc();
    let plan = batched(&ins);
    let journal = crash(&ins, &plan, "migration.batch:nth=2");

    // The crash leaves the journal durable on disk; a fresh process reads
    // it back, recovers the deployment and finishes the migration.
    let path = scratch("resume.jsonl");
    std::fs::write(&path, journal.to_jsonl()).expect("journal writes");
    let mut durable =
        MigrationJournal::from_jsonl(&std::fs::read_to_string(&path).expect("journal reads"))
            .expect("journal parses");
    assert_eq!(durable.state().boundary(), 1);

    let mut dep = Deployment::recover(&ins, &plan, &durable).expect("recovers");
    let report = dep
        .migrate_batched(&plan, &mut durable, &mut FaultInjector::disabled())
        .expect("resume completes");
    assert!(durable.state().complete);

    // Reference: the same migration without the crash.
    let mut clean = Deployment::new(&ins, &plan.plan.from, ROWS).expect("deploys");
    let mut clean_journal = MigrationJournal::new();
    let clean_report = clean
        .migrate_batched(&plan, &mut clean_journal, &mut FaultInjector::disabled())
        .expect("clean run completes");
    assert_eq!(dep.state_fingerprint(), clean.state_fingerprint());
    assert_eq!(report.bytes_moved, clean_report.bytes_moved);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn on_disk_corruption_is_detected() {
    let ins = tpcc();
    let plan = batched(&ins);
    let text = crash(&ins, &plan, "migration.batch:nth=2").to_jsonl();

    // Bit-rot inside a record payload: the per-line checksum catches it.
    let tampered = text.replacen("\"batch\":0", "\"batch\":7", 1);
    assert_ne!(tampered, text, "tampering must hit a record");
    assert!(matches!(
        MigrationJournal::from_jsonl(&tampered),
        Err(EngineError::CorruptJournal { .. })
    ));

    // A crash mid-write cuts the last line: malformed JSON is reported,
    // while cutting at a line boundary leaves a valid (shorter) journal.
    let cut_mid_line = &text[..text.len() - 3];
    assert!(matches!(
        MigrationJournal::from_jsonl(cut_mid_line),
        Err(EngineError::CorruptJournal { .. })
    ));
    let lines: Vec<&str> = text.lines().collect();
    let prefix: String = lines[..lines.len() - 1]
        .iter()
        .map(|l| format!("{l}\n"))
        .collect();
    let shorter = MigrationJournal::from_jsonl(&prefix).expect("line-aligned prefix is valid");
    assert!(shorter.state().boundary() <= 1);

    // A journal from a *different* plan is refused at recovery.
    let other = plan
        .plan
        .batched(&ins, plan.batch_bytes / 2.0)
        .expect("rebatches");
    assert_ne!(other.fingerprint(), plan.fingerprint());
    let journal = MigrationJournal::from_jsonl(&text).expect("original parses");
    assert!(matches!(
        Deployment::recover(&ins, &other, &journal),
        Err(EngineError::CorruptJournal { .. })
    ));
}

#[test]
fn completed_journal_reapply_is_a_no_op() {
    let ins = tpcc();
    let plan = batched(&ins);
    let mut dep = Deployment::new(&ins, &plan.plan.from, ROWS).expect("deploys");
    let mut journal = MigrationJournal::new();
    let first = dep
        .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
        .expect("migration completes");
    let fp = dep.state_fingerprint();

    // Re-applying against the completed journal commits nothing and the
    // durable meter is unchanged — the idempotence the WAL guarantees.
    let again = dep
        .migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled())
        .expect("re-apply is accepted");
    assert_eq!(again.batches_applied, 0);
    assert_eq!(again.bytes_this_run, 0.0);
    assert_eq!(again.bytes_moved, first.bytes_moved);
    assert_eq!(dep.state_fingerprint(), fp);
}

#[test]
fn mid_rollback_crash_resumes_the_rollback() {
    let ins = tpcc();
    let plan = batched(&ins);
    let source_fp = Deployment::new(&ins, &plan.plan.from, ROWS)
        .expect("deploys")
        .state_fingerprint();

    // Crash forward at boundary 3, recover, then crash *again* inside the
    // rollback's undo chain.
    let journal = crash(&ins, &plan, "migration.batch:nth=3");
    let durable = MigrationJournal::from_jsonl(&journal.to_jsonl()).expect("parses");
    let mut dep = Deployment::recover(&ins, &plan, &durable).expect("recovers");
    let mut journal = durable;
    let mut faults = FaultInjector::new(2);
    faults
        .arm_spec("migration.rollback:nth=1")
        .expect("spec parses");
    let err = dep
        .rollback_migration(&plan, &mut journal, &mut faults)
        .expect_err("armed rollback must crash");
    assert!(matches!(err, EngineError::Injected { .. }));
    assert!(journal.state().rolling_back);

    // Recovery after the second crash resumes the *rollback*, not the
    // forward migration, and still restores the source bit-identically.
    let durable = MigrationJournal::from_jsonl(&journal.to_jsonl()).expect("parses");
    let mut dep = Deployment::recover(&ins, &plan, &durable).expect("recovers");
    let mut journal = durable;
    assert!(matches!(
        dep.migrate_batched(&plan, &mut journal, &mut FaultInjector::disabled()),
        Err(EngineError::MigrationMismatch { .. })
    ));
    dep.rollback_migration(&plan, &mut journal, &mut FaultInjector::disabled())
        .expect("rollback resumes");
    assert!(journal.state().rolled_back);
    assert_eq!(dep.state_fingerprint(), source_fp);
}
