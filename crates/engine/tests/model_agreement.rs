//! The central validation experiment: the execution engine's *measured*
//! bytes must equal the cost model's *predicted* bytes.
//!
//! The engine (`vpart-engine`) and the cost model (`vpart-core`) are
//! independent implementations of the same semantics, so exact agreement
//! on TPC-C and on random instances validates both sides.

use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::{evaluate, CostConfig};
use vpart_engine::{Deployment, Trace};
use vpart_instances::{by_name, tpcc};
use vpart_model::Partitioning;

fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs())),
        "{what}: engine {a} vs model {b}"
    );
}

fn check_agreement(ins: &vpart_model::Instance, part: &Partitioning, rounds: usize) {
    let cfg = CostConfig::default();
    let predicted = evaluate(ins, part, &cfg);
    let mut dep = Deployment::new(ins, part, 32).unwrap();
    let report = dep.execute(&Trace::uniform(ins, rounds)).unwrap();
    let k = rounds as f64;
    let totals = report.totals();
    assert_close(totals.bytes_read, k * predicted.read, "A_R");
    assert_close(totals.bytes_written, k * predicted.write, "A_W");
    assert_close(report.transfer_bytes, k * predicted.transfer, "B");
    assert_close(
        report.measured_objective4(cfg.p),
        k * predicted.objective4,
        "objective (4)",
    );
    for (s, (&measured, &pred)) in report
        .site_work()
        .iter()
        .zip(&predicted.site_work)
        .enumerate()
    {
        assert_close(measured, k * pred, &format!("work(site {s})"));
    }
}

#[test]
fn tpcc_single_site_agrees() {
    let ins = tpcc();
    let part = Partitioning::single_site(&ins, 1).unwrap();
    check_agreement(&ins, &part, 3);
}

#[test]
fn tpcc_partitioned_agrees() {
    let ins = tpcc();
    let r = SaSolver::new(SaConfig::fast_deterministic(5))
        .solve(&ins, 3, &CostConfig::default())
        .unwrap();
    check_agreement(&ins, &r.partitioning, 2);
}

#[test]
fn random_instances_agree() {
    for name in ["rndAt8x15", "rndBt16x15", "rndAt8x15u50"] {
        let ins = by_name(name).unwrap();
        let r = SaSolver::new(SaConfig::fast_deterministic(9))
            .solve(&ins, 2, &CostConfig::default())
            .unwrap();
        check_agreement(&ins, &r.partitioning, 1);
    }
}

#[test]
fn partitioning_reduces_measured_bytes_not_just_predicted() {
    // The 37%-style headline must hold in *measured* bytes too.
    let ins = tpcc();
    let cfg = CostConfig::default();
    let single = Partitioning::single_site(&ins, 1).unwrap();
    let mut dep = Deployment::new(&ins, &single, 32).unwrap();
    let base = dep.execute(&Trace::uniform(&ins, 2)).unwrap();

    let r = SaSolver::new(SaConfig::fast_deterministic(5))
        .solve(&ins, 2, &cfg)
        .unwrap();
    let mut dep = Deployment::new(&ins, &r.partitioning, 32).unwrap();
    let split = dep.execute(&Trace::uniform(&ins, 2)).unwrap();

    let base_cost = base.measured_objective4(cfg.p);
    let split_cost = split.measured_objective4(cfg.p);
    assert!(
        split_cost < base_cost * 0.8,
        "measured cost should drop ≥20%: {base_cost} -> {split_cost}"
    );
}

#[test]
fn single_sitedness_of_reads_is_preserved_in_execution() {
    // Read-only transactions never transfer, regardless of partitioning.
    let ins = tpcc();
    let r = SaSolver::new(SaConfig::fast_deterministic(5))
        .solve(&ins, 4, &CostConfig::default())
        .unwrap();
    let mut dep = Deployment::new(&ins, &r.partitioning, 16).unwrap();
    let trace = Trace {
        executions: vec![
            ins.workload().txn_by_name("OrderStatus").unwrap(),
            ins.workload().txn_by_name("StockLevel").unwrap(),
        ],
    };
    let report = dep.execute(&trace).unwrap();
    assert_eq!(report.transfer_bytes, 0.0);
    assert_eq!(report.single_sited_executions, 2);
}
