//! The crash flight recorder at a real fault point: arm the ring, crash a
//! batched migration mid-flight, and check the dumped black box carries
//! the crashing batch's span context and round-trips through the trace
//! summarizer.

use vpart_core::sa::{SaConfig, SaSolver};
use vpart_core::CostConfig;
use vpart_engine::{Deployment, EngineError, FaultInjector, MigrationJournal};
use vpart_instances::tpcc;
use vpart_model::{BatchedMigrationPlan, Instance, MigrationPlan, Partitioning};
use vpart_obs::{Obs, TraceSummary};

const ROWS: usize = 8;

fn batched(ins: &Instance) -> BatchedMigrationPlan {
    let from = Partitioning::single_site(ins, 3).expect("single-site start");
    let to = SaSolver::new(SaConfig::fast_deterministic(1))
        .solve(ins, 3, &CostConfig::default())
        .expect("SA solves TPC-C")
        .partitioning;
    let plan = MigrationPlan::between(ins, &from, &to, ROWS).expect("plan builds");
    let b = plan
        .batched(ins, plan.estimated_bytes() / 4.0)
        .expect("plan batches");
    assert!(b.n_batches() >= 2);
    b
}

#[test]
fn fault_dump_carries_crashing_batch_span_context() {
    let dir = std::env::temp_dir().join(format!("vpart-flight-engine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("flight dir creates");

    let ins = tpcc();
    let plan = batched(&ins);
    let obs = Obs::enabled();
    assert!(obs.arm_flight(&dir, 64));

    let mut dep = Deployment::new(&ins, &plan.plan.from, ROWS)
        .expect("deploys")
        .with_obs(obs.clone());
    let mut journal = MigrationJournal::new();
    let mut faults = FaultInjector::new(1);
    faults
        .arm_spec("migration.batch:nth=2")
        .expect("spec parses");
    let err = dep
        .migrate_batched(&plan, &mut journal, &mut faults)
        .expect_err("armed migration must crash");
    assert!(matches!(err, EngineError::Injected { .. }));

    let path = dir.join("flight_migration.batch.jsonl");
    let text = std::fs::read_to_string(&path).expect("fault dump written");

    // The black box holds the migration's span context: the span-open
    // event with the plan fingerprint, the per-batch applied events up to
    // and including the crashing batch (nth=2 → batch index 1), and the
    // dump marker naming the fault point.
    assert!(text.contains("migrate_batched.begin"), "{text}");
    assert!(text.contains("fingerprint"), "{text}");
    assert!(
        text.contains("\"name\":\"migration_batch.applied\""),
        "{text}"
    );
    assert!(text.contains("\"batch\":1"), "crashing batch index: {text}");
    assert!(text.contains("\"point\":\"migration.batch\""), "{text}");

    // And it is plain trace JSONL: the summarizer reads it unchanged.
    let summary = TraceSummary::from_jsonl(&text).expect("dump parses as a trace");
    assert!(summary.events >= 3, "begin + 2 batch events + marker");

    std::fs::remove_dir_all(&dir).ok();
}
