//! Property-based validation of the MILP solver against brute force.
//!
//! Small random binary programs are solved both by branch & bound and by
//! exhaustive enumeration; objectives and statuses must agree. Random LPs
//! are checked for weak duality-style invariants: the returned point is
//! feasible and no sampled feasible point beats it.

use proptest::prelude::*;
use vpart_ilp::{Cmp, Model, SolveParams, SolveStatus};

/// Compact description of a random binary program.
#[derive(Debug, Clone)]
struct BinProgram {
    n: usize,
    obj: Vec<f64>,
    /// rows: (coefficients, cmp selector 0/1/2, rhs)
    rows: Vec<(Vec<f64>, u8, f64)>,
    maximize: bool,
}

fn bin_program() -> impl Strategy<Value = BinProgram> {
    (2usize..7, 0usize..5, any::<bool>()).prop_flat_map(|(n, m, maximize)| {
        let obj = proptest::collection::vec(-5.0..5.0f64, n);
        let row = (
            proptest::collection::vec(-3.0..3.0f64, n),
            0u8..3,
            -4.0..6.0f64,
        );
        let rows = proptest::collection::vec(row, m);
        (obj, rows).prop_map(move |(obj, rows)| BinProgram {
            n,
            obj: obj.iter().map(|c| (c * 4.0).round() / 4.0).collect(),
            rows: rows
                .into_iter()
                .map(|(cs, cmp, rhs)| {
                    (
                        cs.iter().map(|c| (c * 4.0).round() / 4.0).collect(),
                        cmp,
                        (rhs * 4.0).round() / 4.0,
                    )
                })
                .collect(),
            maximize,
        })
    })
}

fn build(p: &BinProgram) -> Model {
    let mut m = if p.maximize {
        Model::maximize()
    } else {
        Model::minimize()
    };
    let vars: Vec<_> = (0..p.n)
        .map(|i| m.binary(format!("x{i}"), p.obj[i]))
        .collect();
    for (r, (coefs, cmp, rhs)) in p.rows.iter().enumerate() {
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        let terms: Vec<_> = vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect();
        m.add_constraint(format!("r{r}"), terms, cmp, *rhs);
    }
    m
}

/// Exhaustive optimum over all 2^n assignments; `None` if infeasible.
fn brute_force(m: &Model) -> Option<f64> {
    let n = m.n_vars();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let vals: Vec<f64> = (0..n).map(|i| ((mask >> i) & 1) as f64).collect();
        if m.is_feasible(&vals, 1e-9) {
            let obj = m.objective_value(&vals);
            best = Some(match (best, m.sense()) {
                (None, _) => obj,
                (Some(b), vpart_ilp::model::Sense::Minimize) => b.min(obj),
                (Some(b), vpart_ilp::model::Sense::Maximize) => b.max(obj),
            });
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn branch_and_bound_matches_brute_force(p in bin_program()) {
        let m = build(&p);
        let params = SolveParams {
            mip_gap: 0.0,
            ..Default::default()
        };
        let sol = m.solve(&params).unwrap();
        let brute = brute_force(&m);
        match brute {
            None => prop_assert_eq!(sol.status, SolveStatus::Infeasible),
            Some(best) => {
                prop_assert!(sol.has_solution(), "solver found nothing, brute force {best}");
                prop_assert!(
                    (sol.objective - best).abs() <= 1e-6 * best.abs().max(1.0),
                    "solver {} vs brute force {}", sol.objective, best
                );
                // The returned assignment must itself be feasible & integral.
                prop_assert!(m.is_feasible(&sol.values, 1e-6));
            }
        }
    }

    #[test]
    fn lp_relaxation_bounds_milp(p in bin_program()) {
        // The LP bound reported must never be beaten by any integral point.
        let m = build(&p);
        let sol = m.solve(&SolveParams::default()).unwrap();
        if let Some(best) = brute_force(&m) {
            match m.sense() {
                vpart_ilp::model::Sense::Minimize => {
                    prop_assert!(sol.best_bound <= best + 1e-6 * best.abs().max(1.0));
                }
                vpart_ilp::model::Sense::Maximize => {
                    prop_assert!(sol.best_bound >= best - 1e-6 * best.abs().max(1.0));
                }
            }
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // symmetric vars[i][j] / vars[j][i]
fn scaled_assignment_with_gap_control() {
    // A 4x4 assignment with large cost spread exercises scaling paths.
    let cost = [
        [1000.0, 2.0, 3.0, 4.0],
        [2.0, 1000.0, 4.0, 3.0],
        [3.0, 4.0, 1000.0, 2.0],
        [4.0, 3.0, 2.0, 1000.0],
    ];
    let mut m = Model::minimize();
    let mut v = vec![vec![]; 4];
    for (i, row) in cost.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            v[i].push(m.binary(format!("x{i}{j}"), c));
        }
    }
    for i in 0..4 {
        let r: Vec<_> = (0..4).map(|j| (v[i][j], 1.0)).collect();
        m.add_constraint(format!("row{i}"), r, Cmp::Eq, 1.0);
        let c: Vec<_> = (0..4).map(|j| (v[j][i], 1.0)).collect();
        m.add_constraint(format!("col{i}"), c, Cmp::Eq, 1.0);
    }
    let params = SolveParams {
        mip_gap: 0.0,
        ..Default::default()
    };
    let s = m.solve(&params).unwrap();
    assert_eq!(s.status, SolveStatus::Optimal);
    // Optimal avoids the diagonal: swap pairs (0,1) and (2,3) → 2+2+2+2 = 8.
    assert!(
        (s.objective - 8.0).abs() < 1e-6,
        "objective {}",
        s.objective
    );
}

#[test]
fn time_limit_zero_reports_no_solution_or_feasible() {
    let mut m = Model::maximize();
    let vars: Vec<_> = (0..20)
        .map(|i| m.binary(format!("x{i}"), (i % 5) as f64 + 1.0))
        .collect();
    let terms: Vec<_> = vars.iter().map(|&v| (v, 3.0)).collect();
    m.add_constraint("w", terms, Cmp::Le, 17.0);
    let mut p = SolveParams::with_time_limit(0.0);
    p.node_limit = 0;
    let s = m.solve(&p).unwrap();
    assert!(matches!(
        s.status,
        SolveStatus::NoSolutionFound | SolveStatus::Feasible
    ));
}
