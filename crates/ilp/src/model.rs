//! MILP model builder.

use crate::error::IlpError;
use crate::expr::LinExpr;
use crate::solution::{Solution, SolveParams};

/// Reference to a model variable (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarRef(pub usize);

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued within its bounds.
    Continuous,
    /// Integer-valued within its bounds (binary = integer in `[0, 1]`).
    Integer,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    #[allow(dead_code)] // names are kept for diagnostics and tests
    pub name: String,
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A mixed-integer linear program.
///
/// Build variables and constraints, then call [`Model::solve`].
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// A minimization model.
    pub fn minimize() -> Self {
        Self {
            sense: Sense::Minimize,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// A maximization model.
    pub fn maximize() -> Self {
        Self {
            sense: Sense::Maximize,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// The objective sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable; `obj` is its objective coefficient.
    ///
    /// Infinite bounds are allowed (`f64::INFINITY` / `NEG_INFINITY`).
    /// Invalid inputs are recorded and reported by [`Model::solve`], so
    /// model building stays ergonomic (no per-call `Result`).
    pub fn add_var<S: Into<String>>(
        &mut self,
        name: S,
        kind: VarKind,
        lower: f64,
        upper: f64,
        obj: f64,
    ) -> VarRef {
        let r = VarRef(self.vars.len());
        self.vars.push(Variable {
            name: name.into(),
            kind,
            lower,
            upper,
            obj,
        });
        r
    }

    /// Adds a binary variable (integer in `[0, 1]`).
    pub fn binary<S: Into<String>>(&mut self, name: S, obj: f64) -> VarRef {
        self.add_var(name, VarKind::Integer, 0.0, 1.0, obj)
    }

    /// Adds a non-negative continuous variable.
    pub fn continuous<S: Into<String>>(&mut self, name: S, obj: f64) -> VarRef {
        self.add_var(name, VarKind::Continuous, 0.0, f64::INFINITY, obj)
    }

    /// Adds the constraint `expr cmp rhs`. The expression is normalized
    /// (duplicate terms merged).
    pub fn add_constraint<S: Into<String>, E: Into<LinExpr>>(
        &mut self,
        name: S,
        expr: E,
        cmp: Cmp,
        rhs: f64,
    ) {
        self.cons.push(Constraint {
            name: name.into(),
            expr: expr.into().normalized(),
            cmp,
            rhs,
        });
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn n_cons(&self) -> usize {
        self.cons.len()
    }

    /// Number of integer variables.
    pub fn n_int_vars(&self) -> usize {
        self.vars
            .iter()
            .filter(|v| v.kind == VarKind::Integer)
            .count()
    }

    /// Variable name (for diagnostics).
    pub fn var_name(&self, v: VarRef) -> &str {
        &self.vars[v.0].name
    }

    /// Validates the model, returning the first problem found.
    pub fn validate(&self) -> Result<(), IlpError> {
        for v in &self.vars {
            if v.lower.is_nan() || v.upper.is_nan() || !v.obj.is_finite() {
                return Err(IlpError::NonFiniteCoefficient {
                    context: format!("variable {:?}", v.name),
                });
            }
            if v.lower > v.upper {
                return Err(IlpError::InvalidBounds {
                    var: v.name.clone(),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        for c in &self.cons {
            if c.rhs.is_nan() {
                return Err(IlpError::NonFiniteCoefficient {
                    context: format!("constraint {:?} rhs", c.name),
                });
            }
            for &(v, coeff) in c.expr.terms() {
                if v.0 >= self.vars.len() {
                    return Err(IlpError::UnknownVariable {
                        index: v.0,
                        n_vars: self.vars.len(),
                    });
                }
                if !coeff.is_finite() {
                    return Err(IlpError::NonFiniteCoefficient {
                        context: format!("constraint {:?}", c.name),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective for a full assignment (in the model's sense).
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.vars.iter().zip(values).map(|(v, &x)| v.obj * x).sum()
    }

    /// Checks whether `values` satisfies all bounds, integrality and
    /// constraints within a *relative* tolerance: each row's slack is
    /// compared against `tol · (1 + Σ|coefᵢ·valueᵢ|)`, so models with large
    /// coefficients (e.g. byte-cost objectives in the 10³–10⁵ range) don't
    /// spuriously reject solutions that are integral up to `tol`.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, &x) in self.vars.iter().zip(values) {
            let scale = 1.0 + x.abs();
            if x < v.lower - tol * scale || x > v.upper + tol * scale {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol * scale {
                return false;
            }
        }
        for c in &self.cons {
            let mut lhs = 0.0;
            let mut mag = 1.0 + c.rhs.abs();
            for &(v, k) in c.expr.terms() {
                let term = k * values[v.0];
                lhs += term;
                mag += term.abs();
            }
            let slack_tol = tol * mag;
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + slack_tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= slack_tol,
                Cmp::Ge => lhs >= c.rhs - slack_tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the model with branch & bound (see [`crate::branch`]).
    pub fn solve(&self, params: &SolveParams) -> Result<Solution, IlpError> {
        crate::branch::solve(self, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_validate() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 1.0);
        let y = m.binary("y", -2.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Le, 3.0);
        assert_eq!(m.n_vars(), 2);
        assert_eq!(m.n_cons(), 1);
        assert_eq!(m.n_int_vars(), 1);
        assert_eq!(m.var_name(y), "y");
        m.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::minimize();
        m.add_var("x", VarKind::Continuous, 1.0, 0.0, 0.0);
        assert!(matches!(m.validate(), Err(IlpError::InvalidBounds { .. })));
    }

    #[test]
    fn validate_rejects_nan() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 0.0);
        m.add_constraint("c", [(x, f64::NAN)], Cmp::Le, 1.0);
        assert!(matches!(
            m.validate(),
            Err(IlpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn validate_rejects_foreign_var() {
        let mut m = Model::minimize();
        m.add_constraint("c", [(VarRef(3), 1.0)], Cmp::Le, 1.0);
        assert!(matches!(
            m.validate(),
            Err(IlpError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::minimize();
        let x = m.binary("x", 1.0);
        let y = m.continuous("y", 1.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Ge, 1.5);
        assert!(m.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!m.is_feasible(&[0.5, 1.0], 1e-9)); // fractional binary
        assert!(!m.is_feasible(&[1.0, 0.0], 1e-9)); // constraint violated
        assert!(!m.is_feasible(&[1.0], 1e-9)); // wrong arity
        assert!(!m.is_feasible(&[1.0, -0.1], 1e-9)); // bound violated
    }

    #[test]
    fn objective_value_respects_sense_storage() {
        let mut m = Model::maximize();
        let x = m.continuous("x", 2.0);
        let _ = x;
        assert_eq!(m.objective_value(&[3.0]), 6.0);
        assert_eq!(m.sense(), Sense::Maximize);
    }
}
