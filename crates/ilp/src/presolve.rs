//! Lightweight presolve applied before every LP solve.
//!
//! Three reductions are iterated to a fixpoint:
//!
//! 1. **Fixed-variable substitution** — variables with `lower == upper`
//!    (within tolerance) are substituted into constraints and the objective.
//!    In branch & bound most branching decisions fix binaries, so this
//!    shrinks node LPs dramatically (a fixed `x[t][s]` cascades through the
//!    linearization rows `u ≤ x`).
//! 2. **Singleton rows** — `a·x cmp rhs` becomes a bound update on `x`
//!    (rounded inward for integer variables) and the row is dropped.
//! 3. **Empty rows** — checked for trivial feasibility and dropped.
//!
//! The output maps solved values back to the original variable space.

use crate::model::{Cmp, Model, VarKind};

const TOL: f64 = 1e-9;

/// Outcome of presolving.
#[derive(Debug)]
pub enum Presolved {
    /// The reduced problem plus the mapping back to original variables.
    Reduced(ReducedLp),
    /// Presolve proved infeasibility (crossed bounds or violated empty row).
    Infeasible,
}

/// A reduced LP in the original model's terms.
#[derive(Debug)]
pub struct ReducedLp {
    /// Indices of surviving variables (new → old).
    pub keep: Vec<usize>,
    /// Fixed value per original variable (`None` when surviving).
    pub fixed: Vec<Option<f64>>,
    /// Surviving variables' (possibly tightened) lower bounds.
    pub lower: Vec<f64>,
    /// Surviving variables' (possibly tightened) upper bounds.
    pub upper: Vec<f64>,
    /// Surviving variables' objective coefficients.
    pub obj: Vec<f64>,
    /// Objective constant contributed by fixed variables.
    pub obj_offset: f64,
    /// Surviving constraints as sparse rows over *new* indices.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Surviving row comparisons.
    pub cmps: Vec<Cmp>,
    /// Surviving row right-hand sides.
    pub rhs: Vec<f64>,
}

impl ReducedLp {
    /// Expands reduced-space values to a full original-space assignment.
    pub fn expand(&self, reduced_values: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.fixed.len()];
        for (i, f) in self.fixed.iter().enumerate() {
            if let Some(v) = f {
                full[i] = *v;
            }
        }
        for (new, &old) in self.keep.iter().enumerate() {
            full[old] = reduced_values[new];
        }
        full
    }

    /// Converts the reduced rows to column-major sparse form for the simplex.
    pub fn columns(&self) -> Vec<Vec<(usize, f64)>> {
        let mut cols = vec![Vec::new(); self.keep.len()];
        for (r, row) in self.rows.iter().enumerate() {
            for &(j, v) in row {
                cols[j].push((r, v));
            }
        }
        cols
    }
}

/// Presolves `model` under per-variable bound overrides
/// (`overrides[i] = Some((lo, hi))` replaces variable `i`'s bounds).
pub fn presolve(model: &Model, overrides: &[Option<(f64, f64)>]) -> Presolved {
    let n = model.n_vars();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    for (i, ov) in overrides.iter().enumerate() {
        if let Some((lo, hi)) = ov {
            lower[i] = lower[i].max(*lo);
            upper[i] = upper[i].min(*hi);
        }
    }

    // Working rows over original indices.
    let mut rows: Vec<Vec<(usize, f64)>> = model
        .cons
        .iter()
        .map(|c| c.expr.terms().iter().map(|&(v, k)| (v.0, k)).collect())
        .collect();
    let cmps: Vec<Cmp> = model.cons.iter().map(|c| c.cmp).collect();
    let mut rhs: Vec<f64> = model.cons.iter().map(|c| c.rhs).collect();
    let mut row_alive = vec![true; rows.len()];
    let mut fixed: Vec<Option<f64>> = vec![None; n];

    // Substitutes newly-fixed vars and tightens via singleton rows until
    // nothing changes.
    for _pass in 0..16 {
        let mut changed = false;

        // 1. Detect fixed variables.
        for j in 0..n {
            if fixed[j].is_none() && upper[j] - lower[j] <= TOL {
                if lower[j] > upper[j] + TOL {
                    return Presolved::Infeasible;
                }
                // Integer variables must have an integral point in range.
                let v = if model.vars[j].kind == VarKind::Integer {
                    let r = lower[j].round();
                    if (r - lower[j]).abs() > 0.5 + TOL {
                        return Presolved::Infeasible;
                    }
                    r
                } else {
                    lower[j]
                };
                fixed[j] = Some(v);
                changed = true;
            }
        }
        if lower.iter().zip(&upper).any(|(l, u)| l > &(u + TOL)) {
            return Presolved::Infeasible;
        }

        // 2. Substitute fixed vars into rows; classify rows.
        for (r, row) in rows.iter_mut().enumerate() {
            if !row_alive[r] {
                continue;
            }
            let before = row.len();
            row.retain(|&(j, coef)| {
                if let Some(v) = fixed[j] {
                    rhs[r] -= coef * v;
                    false
                } else {
                    true
                }
            });
            if row.len() != before {
                changed = true;
            }
            match row.len() {
                0 => {
                    let ok = match cmps[r] {
                        Cmp::Le => 0.0 <= rhs[r] + 1e-7,
                        Cmp::Eq => rhs[r].abs() <= 1e-7,
                        Cmp::Ge => 0.0 >= rhs[r] - 1e-7,
                    };
                    if !ok {
                        return Presolved::Infeasible;
                    }
                    row_alive[r] = false;
                    changed = true;
                }
                1 => {
                    let (j, a) = row[0];
                    let bound = rhs[r] / a;
                    let (mut new_lo, mut new_hi) = (lower[j], upper[j]);
                    match (cmps[r], a > 0.0) {
                        (Cmp::Le, true) | (Cmp::Ge, false) => new_hi = new_hi.min(bound),
                        (Cmp::Le, false) | (Cmp::Ge, true) => new_lo = new_lo.max(bound),
                        (Cmp::Eq, _) => {
                            new_lo = new_lo.max(bound);
                            new_hi = new_hi.min(bound);
                        }
                    }
                    if model.vars[j].kind == VarKind::Integer {
                        new_lo = (new_lo - 1e-7).ceil();
                        new_hi = (new_hi + 1e-7).floor();
                    }
                    if new_lo > lower[j] + TOL || new_hi < upper[j] - TOL {
                        changed = true;
                    }
                    lower[j] = lower[j].max(new_lo);
                    upper[j] = upper[j].min(new_hi);
                    if lower[j] > upper[j] + TOL {
                        return Presolved::Infeasible;
                    }
                    row_alive[r] = false;
                }
                _ => {}
            }
        }

        if !changed {
            break;
        }
    }

    // Assemble the reduced problem.
    let mut new_index = vec![usize::MAX; n];
    let mut keep = Vec::new();
    for j in 0..n {
        if fixed[j].is_none() {
            new_index[j] = keep.len();
            keep.push(j);
        }
    }
    let mut obj_offset = 0.0;
    for j in 0..n {
        if let Some(v) = fixed[j] {
            obj_offset += model.vars[j].obj * v;
        }
    }
    let mut out_rows = Vec::new();
    let mut out_cmps = Vec::new();
    let mut out_rhs = Vec::new();
    for (r, row) in rows.iter().enumerate() {
        if !row_alive[r] {
            continue;
        }
        out_rows.push(row.iter().map(|&(j, v)| (new_index[j], v)).collect());
        out_cmps.push(cmps[r]);
        out_rhs.push(rhs[r]);
    }
    Presolved::Reduced(ReducedLp {
        lower: keep.iter().map(|&j| lower[j]).collect(),
        upper: keep.iter().map(|&j| upper[j]).collect(),
        obj: keep.iter().map(|&j| model.vars[j].obj).collect(),
        keep,
        fixed,
        obj_offset,
        rows: out_rows,
        cmps: out_cmps,
        rhs: out_rhs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn fixes_and_substitutes() {
        let mut m = Model::minimize();
        let x = m.add_var("x", VarKind::Continuous, 2.0, 2.0, 3.0);
        let y = m.continuous("y", 1.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Le, 5.0);
        let Presolved::Reduced(red) = presolve(&m, &[None, None]) else {
            panic!("expected reduction");
        };
        assert_eq!(red.keep, vec![1]);
        assert_eq!(red.fixed[0], Some(2.0));
        assert_eq!(red.obj_offset, 6.0);
        // Row became y <= 3.  Singleton → dropped, bound tightened.
        assert!(red.rows.is_empty());
        assert_eq!(red.upper[0], 3.0);
        let full = red.expand(&[1.5]);
        assert_eq!(full, vec![2.0, 1.5]);
    }

    #[test]
    fn cascading_fixes_through_singletons() {
        // u <= x with x fixed to 0 forces u = 0 (u >= 0 by bound).
        let mut m = Model::minimize();
        let x = m.binary("x", 0.0);
        let u = m.continuous("u", -1.0);
        m.add_constraint("lin", [(u, 1.0), (x, -1.0)], Cmp::Le, 0.0);
        let Presolved::Reduced(red) = presolve(&m, &[Some((0.0, 0.0)), None]) else {
            panic!()
        };
        assert_eq!(red.keep.len(), 0, "everything fixed: {red:?}");
        assert_eq!(red.fixed[x.0], Some(0.0));
        assert_eq!(red.fixed[u.0], Some(0.0));
    }

    #[test]
    fn detects_infeasible_empty_row() {
        let mut m = Model::minimize();
        let x = m.add_var("x", VarKind::Continuous, 1.0, 1.0, 0.0);
        m.add_constraint("c", [(x, 1.0)], Cmp::Ge, 2.0);
        assert!(matches!(presolve(&m, &[None]), Presolved::Infeasible));
    }

    #[test]
    fn detects_crossed_bounds_from_overrides() {
        let mut m = Model::minimize();
        let _x = m.binary("x", 1.0);
        // Branching override narrows to an empty interval.
        assert!(matches!(
            presolve(&m, &[Some((1.0, 0.0))]),
            Presolved::Infeasible
        ));
    }

    #[test]
    fn integer_singleton_rounds_inward() {
        let mut m = Model::minimize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c", [(x, 2.0)], Cmp::Le, 7.0); // x <= 3.5 → x <= 3
        let Presolved::Reduced(red) = presolve(&m, &[None]) else {
            panic!()
        };
        assert_eq!(red.upper[0], 3.0);
    }

    #[test]
    fn columns_are_transposed_rows() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 1.0);
        let y = m.continuous("y", 1.0);
        m.add_constraint("c1", [(x, 1.0), (y, 2.0)], Cmp::Le, 4.0);
        m.add_constraint("c2", [(y, 3.0), (x, 1.0)], Cmp::Ge, 1.0);
        let Presolved::Reduced(red) = presolve(&m, &[None, None]) else {
            panic!()
        };
        let cols = red.columns();
        assert_eq!(cols[0], vec![(0, 1.0), (1, 1.0)]);
        assert_eq!(cols[1], vec![(0, 2.0), (1, 3.0)]);
    }
}
