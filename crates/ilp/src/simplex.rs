//! Bounded-variable primal simplex with explicit basis inverse.
//!
//! Implementation notes:
//!
//! * Constraints are converted to equalities with one slack per row
//!   (`≤ → s ∈ [0, ∞)`, `≥ → s ∈ (−∞, 0]`, `= → s ∈ [0, 0]`).
//! * Phase 1 starts from an all-artificial basis (`B = ±I`, so the initial
//!   inverse is free) and minimizes the sum of artificials; phase 2 locks
//!   the artificials to zero and optimizes the real objective.
//! * The basis inverse `B⁻¹` is kept explicitly (dense `m×m`) and updated
//!   with elementary eta transformations per pivot — `O(m²)` per iteration,
//!   which is the right trade-off for the few-thousand-row LPs produced by
//!   the partitioning models.
//! * Pricing is Dantzig (most negative reduced cost) with a switch to
//!   Bland's rule after a long run of degenerate pivots, guaranteeing
//!   termination.
//! * Rows are equilibrated (scaled by the largest absolute coefficient,
//!   rounded to a power of two so values stay exactly representable).
//! * The ratio test is a two-pass "Harris-lite": find the minimum ratio,
//!   then among near-ties pick the row with the largest pivot magnitude.

use crate::error::IlpError;
use crate::model::Cmp;

/// A linear program in computational form (minimization).
#[derive(Debug, Clone)]
pub struct LpForm {
    /// Number of structural variables.
    pub n: usize,
    /// Sparse columns of the structural part: `cols[j] = [(row, coef)]`.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Row comparison operators.
    pub cmps: Vec<Cmp>,
    /// Row right-hand sides.
    pub rhs: Vec<f64>,
    /// Structural lower bounds (may be `-inf`).
    pub lower: Vec<f64>,
    /// Structural upper bounds (may be `+inf`).
    pub upper: Vec<f64>,
    /// Objective coefficients (minimize).
    pub obj: Vec<f64>,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// Optimal basic solution found.
    Optimal {
        /// Structural variable values.
        x: Vec<f64>,
        /// Objective value (minimization sense).
        obj: f64,
        /// Simplex iterations used (both phases).
        iterations: usize,
    },
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum VarState {
    Basic(usize),
    AtLower,
    AtUpper,
    /// Free variable resting at zero (no finite bound).
    FreeZero,
}

const FEAS_TOL: f64 = 1e-7;
const DUAL_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;
const DEGEN_LIMIT: usize = 120;

struct Simplex {
    m: usize,
    /// Total columns: structural + slacks + artificials.
    total: usize,
    /// First artificial index (= n + m).
    art0: usize,
    cols: Vec<Vec<(usize, f64)>>,
    b: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    binv: Vec<f64>,
    basis: Vec<usize>,
    state: Vec<VarState>,
    xval: Vec<f64>,
    iterations: usize,
    iter_limit: usize,
    bland: bool,
    degen_run: usize,
}

impl Simplex {
    fn new(lp: &LpForm) -> Self {
        let m = lp.rhs.len();
        let n = lp.n;

        // Row equilibration: scale each row by 2^-round(log2(max |a|)).
        let mut scale = vec![1.0f64; m];
        for col in &lp.cols {
            for &(r, v) in col {
                scale[r] = scale[r].max(v.abs());
            }
        }
        for s in &mut scale {
            let e = s.log2().round().clamp(-40.0, 40.0);
            *s = (2.0f64).powi(e as i32).recip();
        }

        let total = n + m + m;
        let art0 = n + m;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(total);
        for col in &lp.cols {
            cols.push(col.iter().map(|&(r, v)| (r, v * scale[r])).collect());
        }
        let mut lower = lp.lower.clone();
        let mut upper = lp.upper.clone();
        // Slacks.
        for (i, cmp) in lp.cmps.iter().enumerate() {
            cols.push(vec![(i, 1.0)]);
            match cmp {
                Cmp::Le => {
                    lower.push(0.0);
                    upper.push(f64::INFINITY);
                }
                Cmp::Ge => {
                    lower.push(f64::NEG_INFINITY);
                    upper.push(0.0);
                }
                Cmp::Eq => {
                    lower.push(0.0);
                    upper.push(0.0);
                }
            }
        }
        let b: Vec<f64> = lp.rhs.iter().zip(&scale).map(|(&v, &s)| v * s).collect();

        // Nonbasic starting point: finite lower, else finite upper, else 0.
        let mut xval = vec![0.0; total];
        let mut state = vec![VarState::FreeZero; total];
        for j in 0..n + m {
            if lower[j].is_finite() {
                state[j] = VarState::AtLower;
                xval[j] = lower[j];
            } else if upper[j].is_finite() {
                state[j] = VarState::AtUpper;
                xval[j] = upper[j];
            }
        }

        // Residuals determine the artificial columns (basis = ±I).
        let mut resid = b.clone();
        for j in 0..n + m {
            if xval[j] != 0.0 {
                for &(r, v) in &cols[j] {
                    resid[r] -= v * xval[j];
                }
            }
        }
        let mut basis = Vec::with_capacity(m);
        let mut binv = vec![0.0; m * m];
        for (i, &r) in resid.iter().enumerate() {
            let sign = if r >= 0.0 { 1.0 } else { -1.0 };
            cols.push(vec![(i, sign)]);
            lower.push(0.0);
            upper.push(f64::INFINITY);
            let aj = art0 + i;
            xval[aj] = r.abs();
            state[aj] = VarState::Basic(i);
            basis.push(aj);
            binv[i * m + i] = sign;
        }

        let iter_limit = 50 * (m + total) + 10_000;
        Self {
            m,
            total,
            art0,
            cols,
            b,
            lower,
            upper,
            cost: vec![0.0; total],
            binv,
            basis,
            state,
            xval,
            iterations: 0,
            iter_limit,
            bland: false,
            degen_run: 0,
        }
    }

    /// Rebuilds `B⁻¹` from the current basis by Gauss–Jordan elimination
    /// with partial pivoting, erasing accumulated eta-update drift.
    /// Returns `false` if the basis matrix is numerically singular.
    fn refactorize(&mut self) -> bool {
        let m = self.m;
        if m == 0 {
            return true;
        }
        // Dense B (row-major): column k is the constraint column of the
        // k-th basic variable.
        let mut bmat = vec![0.0f64; m * m];
        for (k, &var) in self.basis.iter().enumerate() {
            for &(r, v) in &self.cols[var] {
                bmat[r * m + k] = v;
            }
        }
        let mut inv = vec![0.0f64; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivoting.
            let mut piv_row = col;
            let mut piv_val = bmat[col * m + col].abs();
            for r in col + 1..m {
                let v = bmat[r * m + col].abs();
                if v > piv_val {
                    piv_val = v;
                    piv_row = r;
                }
            }
            if piv_val < 1e-11 {
                return false;
            }
            if piv_row != col {
                for k in 0..m {
                    bmat.swap(piv_row * m + k, col * m + k);
                    inv.swap(piv_row * m + k, col * m + k);
                }
            }
            let piv = bmat[col * m + col];
            for k in 0..m {
                bmat[col * m + k] /= piv;
                inv[col * m + k] /= piv;
            }
            for r in 0..m {
                if r == col {
                    continue;
                }
                let f = bmat[r * m + col];
                if f != 0.0 {
                    for k in 0..m {
                        bmat[r * m + k] -= f * bmat[col * m + k];
                        inv[r * m + k] -= f * inv[col * m + k];
                    }
                }
            }
        }
        self.binv = inv;
        true
    }

    /// Maximum relative violation of rows (`Ax = b`) and variable bounds at
    /// the current point.
    fn primal_violation(&self) -> f64 {
        let mut resid = self.b.clone();
        let mut mag: Vec<f64> = self.b.iter().map(|v| 1.0 + v.abs()).collect();
        for j in 0..self.total {
            let xj = self.xval[j];
            if xj != 0.0 {
                for &(r, v) in &self.cols[j] {
                    resid[r] -= v * xj;
                    mag[r] += (v * xj).abs();
                }
            }
        }
        let mut worst = 0.0f64;
        for i in 0..self.m {
            worst = worst.max(resid[i].abs() / mag[i]);
        }
        for j in 0..self.total {
            let scale = 1.0 + self.xval[j].abs();
            worst = worst.max((self.lower[j] - self.xval[j]) / scale);
            worst = worst.max((self.xval[j] - self.upper[j]) / scale);
        }
        worst
    }

    /// Recomputes basic variable values from scratch (numerical hygiene).
    fn refresh_basics(&mut self) {
        let m = self.m;
        let mut rhs = self.b.clone();
        for j in 0..self.total {
            if !matches!(self.state[j], VarState::Basic(_)) && self.xval[j] != 0.0 {
                for &(r, v) in &self.cols[j] {
                    rhs[r] -= v * self.xval[j];
                }
            }
        }
        for i in 0..m {
            let mut acc = 0.0;
            for (k, &r) in rhs.iter().enumerate() {
                acc += self.binv[i * m + k] * r;
            }
            self.xval[self.basis[i]] = acc;
        }
    }

    /// Runs the simplex on the current cost vector until optimality.
    fn optimize(&mut self) -> Result<LpPhase, IlpError> {
        let m = self.m;
        let mut y = vec![0.0; m];
        loop {
            self.iterations += 1;
            if self.iterations > self.iter_limit {
                return Err(IlpError::IterationLimit);
            }
            if self.iterations.is_multiple_of(384) {
                // Periodic refactorization bounds eta-update drift.
                if !self.refactorize() {
                    return Err(IlpError::Internal("singular basis during refactorization"));
                }
                self.refresh_basics();
            }

            // Duals y = c_B^T B^{-1}.
            for k in 0..m {
                let mut acc = 0.0;
                for i in 0..m {
                    let cb = self.cost[self.basis[i]];
                    if cb != 0.0 {
                        acc += cb * self.binv[i * m + k];
                    }
                }
                y[k] = acc;
            }

            // Pricing.
            let mut entering: Option<(usize, f64, i8)> = None; // (var, |d|, dir)
            for j in 0..self.total {
                let st = self.state[j];
                if matches!(st, VarState::Basic(_)) {
                    continue;
                }
                if self.upper[j] - self.lower[j] <= 0.0 {
                    continue; // fixed (includes locked artificials)
                }
                let mut d = self.cost[j];
                for &(r, v) in &self.cols[j] {
                    d -= y[r] * v;
                }
                let cand: Option<i8> = match st {
                    VarState::AtLower if d < -DUAL_TOL => Some(1),
                    VarState::AtUpper if d > DUAL_TOL => Some(-1),
                    VarState::FreeZero if d < -DUAL_TOL => Some(1),
                    VarState::FreeZero if d > DUAL_TOL => Some(-1),
                    _ => None,
                };
                if let Some(dir) = cand {
                    let score = d.abs();
                    if self.bland {
                        entering = Some((j, score, dir));
                        break;
                    }
                    if entering.is_none_or(|(_, s, _)| score > s) {
                        entering = Some((j, score, dir));
                    }
                }
            }
            let Some((j, _, dir)) = entering else {
                return Ok(LpPhase::Optimal);
            };
            let dir = dir as f64;

            // FTRAN: w = B^{-1} a_j.
            let mut w = vec![0.0; m];
            for &(r, v) in &self.cols[j] {
                if v != 0.0 {
                    for i in 0..m {
                        w[i] += self.binv[i * m + r] * v;
                    }
                }
            }

            // Ratio test, pass 1: minimum ratio.
            let own_range = self.upper[j] - self.lower[j]; // may be inf
            let mut theta = own_range;
            for i in 0..m {
                let k = self.basis[i];
                let delta = -dir * w[i];
                if delta > PIVOT_TOL {
                    if self.upper[k].is_finite() {
                        let lim = ((self.upper[k] - self.xval[k]) / delta).max(0.0);
                        if lim < theta {
                            theta = lim;
                        }
                    }
                } else if delta < -PIVOT_TOL && self.lower[k].is_finite() {
                    let lim = ((self.lower[k] - self.xval[k]) / delta).max(0.0);
                    if lim < theta {
                        theta = lim;
                    }
                }
            }
            if theta.is_infinite() {
                return Ok(LpPhase::Unbounded);
            }
            // Pass 2: among rows within tolerance of theta, largest pivot.
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            let mut best_piv = 0.0;
            for i in 0..m {
                let k = self.basis[i];
                let delta = -dir * w[i];
                if delta > PIVOT_TOL {
                    if self.upper[k].is_finite() {
                        let lim = ((self.upper[k] - self.xval[k]) / delta).max(0.0);
                        if lim <= theta + FEAS_TOL && w[i].abs() > best_piv {
                            best_piv = w[i].abs();
                            leave = Some((i, true));
                            theta = theta.min(lim);
                        }
                    }
                } else if delta < -PIVOT_TOL && self.lower[k].is_finite() {
                    let lim = ((self.lower[k] - self.xval[k]) / delta).max(0.0);
                    if lim <= theta + FEAS_TOL && w[i].abs() > best_piv {
                        best_piv = w[i].abs();
                        leave = Some((i, false));
                        theta = theta.min(lim);
                    }
                }
            }
            let bound_flip = own_range <= theta + FEAS_TOL && own_range.is_finite();

            // Degeneracy bookkeeping.
            if theta <= 1e-10 {
                self.degen_run += 1;
                if self.degen_run > DEGEN_LIMIT {
                    self.bland = true;
                }
            } else {
                self.degen_run = 0;
            }

            // Apply the step.
            let step = dir * theta;
            if step != 0.0 {
                for i in 0..m {
                    if w[i] != 0.0 {
                        let k = self.basis[i];
                        self.xval[k] -= w[i] * step;
                    }
                }
                self.xval[j] += step;
            }

            if bound_flip || leave.is_none() {
                // The entering variable traverses to its opposite bound.
                self.state[j] = match self.state[j] {
                    VarState::AtLower => {
                        self.xval[j] = self.upper[j];
                        VarState::AtUpper
                    }
                    VarState::AtUpper => {
                        self.xval[j] = self.lower[j];
                        VarState::AtLower
                    }
                    other => other, // free: cannot bound-flip
                };
                continue;
            }

            let (r, hits_upper) = leave.unwrap();
            if w[r].abs() < PIVOT_TOL {
                return Err(IlpError::Internal("pivot element vanished"));
            }
            let k_leave = self.basis[r];
            self.xval[k_leave] = if hits_upper {
                self.upper[k_leave]
            } else {
                self.lower[k_leave]
            };

            // Eta update of B^{-1}.
            let piv = w[r];
            {
                let (head, tail) = self.binv.split_at_mut(r * m);
                let (row_r, rest) = tail.split_at_mut(m);
                for v in row_r.iter_mut() {
                    *v /= piv;
                }
                for (i, chunk) in head.chunks_exact_mut(m).enumerate() {
                    let f = w[i];
                    if f != 0.0 {
                        for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                            *c -= f * rr;
                        }
                    }
                }
                for (off, chunk) in rest.chunks_exact_mut(m).enumerate() {
                    let f = w[r + 1 + off];
                    if f != 0.0 {
                        for (c, rr) in chunk.iter_mut().zip(row_r.iter()) {
                            *c -= f * rr;
                        }
                    }
                }
            }
            self.basis[r] = j;
            self.state[j] = VarState::Basic(r);
            self.state[k_leave] = if hits_upper {
                VarState::AtUpper
            } else {
                VarState::AtLower
            };
            if k_leave >= self.art0 {
                // An artificial that leaves the basis never returns.
                self.lower[k_leave] = 0.0;
                self.upper[k_leave] = 0.0;
                self.xval[k_leave] = 0.0;
                self.state[k_leave] = VarState::AtLower;
            }
        }
    }

    /// Drives basic artificials out of the basis after phase 1, locking
    /// redundant rows' artificials at zero.
    fn purge_artificials(&mut self) {
        let m = self.m;
        for r in 0..m {
            if self.basis[r] < self.art0 {
                continue;
            }
            // Try to find a non-artificial, non-fixed nonbasic column with a
            // nonzero tableau entry in row r.
            let mut found = None;
            for j in 0..self.art0 {
                if matches!(self.state[j], VarState::Basic(_)) {
                    continue;
                }
                let mut t = 0.0;
                for &(i, v) in &self.cols[j] {
                    t += self.binv[r * m + i] * v;
                }
                if t.abs() > 1e-7 {
                    found = Some((j, t));
                    break;
                }
            }
            let Some((j, _)) = found else {
                // Redundant row: pin the artificial to zero forever.
                let a = self.basis[r];
                self.lower[a] = 0.0;
                self.upper[a] = 0.0;
                continue;
            };
            // Degenerate pivot: artificial sits at 0, so values don't move.
            let mut w = vec![0.0; m];
            for &(i, v) in &self.cols[j] {
                for row in 0..m {
                    w[row] += self.binv[row * m + i] * v;
                }
            }
            let piv = w[r];
            if piv.abs() < 1e-9 {
                continue;
            }
            let a_leave = self.basis[r];
            {
                let row_start = r * m;
                for k in 0..m {
                    self.binv[row_start + k] /= piv;
                }
                for i in 0..m {
                    if i == r {
                        continue;
                    }
                    let f = w[i];
                    if f != 0.0 {
                        for k in 0..m {
                            self.binv[i * m + k] -= f * self.binv[row_start + k];
                        }
                    }
                }
            }
            self.basis[r] = j;
            self.state[j] = VarState::Basic(r);
            self.state[a_leave] = VarState::AtLower;
            self.xval[a_leave] = 0.0;
        }
    }
}

enum LpPhase {
    Optimal,
    Unbounded,
}

/// Solves an LP with the two-phase bounded simplex.
pub fn solve_lp(lp: &LpForm) -> Result<LpOutcome, IlpError> {
    debug_assert_eq!(lp.cols.len(), lp.n);
    debug_assert_eq!(lp.lower.len(), lp.n);
    debug_assert_eq!(lp.upper.len(), lp.n);
    debug_assert_eq!(lp.obj.len(), lp.n);
    debug_assert_eq!(lp.cmps.len(), lp.rhs.len());

    // Quick infeasibility: crossed bounds.
    for j in 0..lp.n {
        if lp.lower[j] > lp.upper[j] + FEAS_TOL {
            return Ok(LpOutcome::Infeasible);
        }
    }

    // A solve whose final point fails verification is retried from scratch
    // with Bland's rule from the first pivot (slower, but drift-resistant:
    // fewer huge-step pivots on degenerate paths).
    let mut last_err = IlpError::IterationLimit;
    for attempt in 0..2 {
        match solve_lp_once(lp, attempt == 1) {
            Ok(out) => return Ok(out),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

fn solve_lp_once(lp: &LpForm, conservative: bool) -> Result<LpOutcome, IlpError> {
    let mut s = Simplex::new(lp);
    s.bland = conservative;

    // Phase 1: minimize the sum of artificials.
    let needs_phase1 = (0..s.m).any(|i| s.xval[s.art0 + i] > FEAS_TOL);
    if needs_phase1 {
        for i in 0..s.m {
            s.cost[s.art0 + i] = 1.0;
        }
        match s.optimize()? {
            LpPhase::Unbounded => {
                return Err(IlpError::Internal("phase 1 unbounded"));
            }
            LpPhase::Optimal => {}
        }
        // Clean the factorization before judging feasibility, so drift
        // cannot cause a spurious "infeasible".
        if !s.refactorize() {
            return Err(IlpError::Internal("singular basis after phase 1"));
        }
        s.refresh_basics();
        let infeas: f64 = (0..s.m).map(|i| s.xval[s.art0 + i].max(0.0)).sum();
        if infeas > 1e-6 * (1.0 + s.b.iter().map(|v| v.abs()).fold(0.0, f64::max)) {
            return Ok(LpOutcome::Infeasible);
        }
        s.purge_artificials();
    }
    // Lock artificials for phase 2.
    for i in 0..s.m {
        let a = s.art0 + i;
        s.lower[a] = 0.0;
        s.upper[a] = 0.0;
        s.cost[a] = 0.0;
        if !matches!(s.state[a], VarState::Basic(_)) {
            s.xval[a] = 0.0;
            s.state[a] = VarState::AtLower;
        }
    }

    // Phase 2: real objective, scaled for tolerance stability.
    let cmax = lp.obj.iter().fold(0.0f64, |acc, c| acc.max(c.abs()));
    let cscale = if cmax > 0.0 { 1.0 / cmax } else { 1.0 };
    for j in 0..lp.n {
        s.cost[j] = lp.obj[j] * cscale;
    }
    s.bland = conservative;
    s.degen_run = 0;
    match s.optimize()? {
        LpPhase::Unbounded => return Ok(LpOutcome::Unbounded),
        LpPhase::Optimal => {}
    }
    // Verify the returned point actually satisfies the system (erasing any
    // accumulated eta drift first); a bad point fails the whole attempt.
    if !s.refactorize() {
        return Err(IlpError::Internal("singular basis at verification"));
    }
    s.refresh_basics();
    if s.primal_violation() > 1e-6 {
        return Err(IlpError::IterationLimit);
    }
    let x: Vec<f64> = s.xval[..lp.n].to_vec();
    let obj: f64 = lp.obj.iter().zip(&x).map(|(c, v)| c * v).sum();
    Ok(LpOutcome::Optimal {
        x,
        obj,
        iterations: s.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(
        n: usize,
        cols: Vec<Vec<(usize, f64)>>,
        cmps: Vec<Cmp>,
        rhs: Vec<f64>,
        lower: Vec<f64>,
        upper: Vec<f64>,
        obj: Vec<f64>,
    ) -> LpForm {
        LpForm {
            n,
            cols,
            cmps,
            rhs,
            lower,
            upper,
            obj,
        }
    }

    fn assert_opt(out: LpOutcome, want_obj: f64, want_x: Option<&[f64]>) {
        match out {
            LpOutcome::Optimal { x, obj, .. } => {
                assert!(
                    (obj - want_obj).abs() < 1e-6,
                    "objective {obj} != expected {want_obj} (x = {x:?})"
                );
                if let Some(wx) = want_x {
                    for (i, (&got, &want)) in x.iter().zip(wx).enumerate() {
                        assert!((got - want).abs() < 1e-6, "x[{i}] = {got}, want {want}");
                    }
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max_as_min() {
        // max 3x+2y st x+y<=4, x+3y<=6, x,y>=0 → min -(3x+2y), opt at (4,0).
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 3.0)]],
            vec![Cmp::Le, Cmp::Le],
            vec![4.0, 6.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![-3.0, -2.0],
        ))
        .unwrap();
        assert_opt(out, -12.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn equality_and_ge_constraints() {
        // min x+y st x+y=2, x>=0.5 → obj 2.
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0), (1, 1.0)], vec![(1, 1.0)]],
            vec![Cmp::Eq, Cmp::Ge],
            vec![2.0, 0.5],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![1.0, 1.0],
        ))
        .unwrap();
        // Column layout: var0 appears in row0 only; var1 in rows 0 and 1.
        assert_opt(out, 2.0, None);
    }

    #[test]
    fn detects_infeasible() {
        // x <= 1 and x >= 2.
        let out = solve_lp(&lp(
            1,
            vec![vec![(0, 1.0), (1, 1.0)]],
            vec![Cmp::Le, Cmp::Ge],
            vec![1.0, 2.0],
            vec![0.0],
            vec![f64::INFINITY],
            vec![0.0],
        ))
        .unwrap();
        assert!(matches!(out, LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        // min -x st x >= 0 (no upper bound).
        let out = solve_lp(&lp(
            1,
            vec![vec![(0, 1.0)]],
            vec![Cmp::Ge],
            vec![0.0],
            vec![0.0],
            vec![f64::INFINITY],
            vec![-1.0],
        ))
        .unwrap();
        assert!(matches!(out, LpOutcome::Unbounded));
    }

    #[test]
    fn respects_upper_bounds_via_bound_flip() {
        // min -x - y st x + y <= 10, x <= 3, y <= 4 (bounds, not rows).
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            vec![Cmp::Le],
            vec![10.0],
            vec![0.0, 0.0],
            vec![3.0, 4.0],
            vec![-1.0, -1.0],
        ))
        .unwrap();
        assert_opt(out, -7.0, Some(&[3.0, 4.0]));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x st x >= -5 (bound) and x + y = 0, y <= 2 → x = -2? No:
        // x = -y, y ∈ [0,2] minimizing x → y=2, x=-2.
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            vec![Cmp::Eq],
            vec![0.0],
            vec![-5.0, 0.0],
            vec![f64::INFINITY, 2.0],
            vec![1.0, 0.0],
        ))
        .unwrap();
        assert_opt(out, -2.0, Some(&[-2.0, 2.0]));
    }

    #[test]
    fn free_variable() {
        // min x st x + y >= 3, y <= 1, x free → x = 2.
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            vec![Cmp::Ge],
            vec![3.0],
            vec![f64::NEG_INFINITY, 0.0],
            vec![f64::INFINITY, 1.0],
            vec![1.0, 0.0],
        ))
        .unwrap();
        assert_opt(out, 2.0, Some(&[2.0, 1.0]));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Multiple redundant constraints through the same vertex.
        let out = solve_lp(&lp(
            2,
            vec![
                vec![(0, 1.0), (1, 1.0), (2, 2.0)],
                vec![(0, 1.0), (1, 2.0), (2, 2.0)],
            ],
            vec![Cmp::Le, Cmp::Le, Cmp::Le],
            vec![1.0, 1.0, 2.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![-1.0, -1.0],
        ))
        .unwrap();
        assert_opt(out, -1.0, None);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 1 stated twice (rank-deficient) — phase 1 must cope.
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 1.0), (1, 1.0)]],
            vec![Cmp::Eq, Cmp::Eq],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![2.0, 1.0],
        ))
        .unwrap();
        assert_opt(out, 1.0, Some(&[0.0, 1.0]));
    }

    #[test]
    fn empty_constraint_set() {
        // min x with x in [1, 5], no rows.
        let out = solve_lp(&lp(
            1,
            vec![vec![]],
            vec![],
            vec![],
            vec![1.0],
            vec![5.0],
            vec![1.0],
        ))
        .unwrap();
        assert_opt(out, 1.0, Some(&[1.0]));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            vec![Cmp::Le],
            vec![5.0],
            vec![2.0, 0.0],
            vec![2.0, f64::INFINITY],
            vec![0.0, -1.0],
        ))
        .unwrap();
        // x fixed at 2, so y = 3 maximizes.
        assert_opt(out, -3.0, Some(&[2.0, 3.0]));
    }

    #[test]
    fn badly_scaled_rows() {
        // Same geometry as textbook test, but one row scaled by 1e6.
        let out = solve_lp(&lp(
            2,
            vec![vec![(0, 1e6), (1, 1.0)], vec![(0, 1e6), (1, 3.0)]],
            vec![Cmp::Le, Cmp::Le],
            vec![4e6, 6.0],
            vec![0.0, 0.0],
            vec![f64::INFINITY, f64::INFINITY],
            vec![-3.0, -2.0],
        ))
        .unwrap();
        assert_opt(out, -12.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn negative_rhs_rows() {
        // min x st -x <= -3  (i.e. x >= 3).
        let out = solve_lp(&lp(
            1,
            vec![vec![(0, -1.0)]],
            vec![Cmp::Le],
            vec![-3.0],
            vec![0.0],
            vec![f64::INFINITY],
            vec![1.0],
        ))
        .unwrap();
        assert_opt(out, 3.0, Some(&[3.0]));
    }
}
