//! Branch & bound over the LP relaxation.
//!
//! Best-first search (ties broken toward deeper nodes, giving a plunging
//! flavor), most-fractional branching, per-node presolve, and a rounding
//! primal heuristic. Termination mirrors the paper's GLPK setup: wall-clock
//! time limit, relative MIP gap (0.1% there) and an optional node limit.
//! When a limit stops the proof the best incumbent is reported with status
//! [`SolveStatus::Feasible`] — the "cost in parentheses" convention of the
//! paper's Table 3.

use crate::error::IlpError;
use crate::model::{Model, Sense, VarKind};
use crate::presolve::{presolve, Presolved};
use crate::simplex::{solve_lp, LpForm, LpOutcome};
use crate::solution::{Solution, SolveParams, SolveStats, SolveStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Instant;

/// Persistent chain of branching decisions (shared tails between siblings).
#[derive(Debug, Clone, Default)]
struct Chain(Option<Rc<ChainNode>>);

#[derive(Debug)]
struct ChainNode {
    var: usize,
    lo: f64,
    hi: f64,
    parent: Chain,
}

impl Chain {
    fn extend(&self, var: usize, lo: f64, hi: f64) -> Chain {
        Chain(Some(Rc::new(ChainNode {
            var,
            lo,
            hi,
            parent: self.clone(),
        })))
    }

    /// Materializes the cumulative overrides for presolve.
    fn overrides(&self, n: usize) -> Vec<Option<(f64, f64)>> {
        let mut out: Vec<Option<(f64, f64)>> = vec![None; n];
        let mut cur = &self.0;
        while let Some(node) = cur {
            let slot = &mut out[node.var];
            match slot {
                // Earlier entries in the chain are *older*; keep the
                // tightest interval.
                Some((lo, hi)) => {
                    *lo = lo.max(node.lo);
                    *hi = hi.min(node.hi);
                }
                None => *slot = Some((node.lo, node.hi)),
            }
            cur = &node.parent.0;
        }
        out
    }
}

struct Node {
    bound: f64,
    depth: u32,
    seq: u64,
    chain: Chain,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound on top,
        // then the newest node (plunge).
        other
            .bound
            .total_cmp(&self.bound)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Solves `model` by branch & bound. See [`Model::solve`].
pub fn solve(model: &Model, params: &SolveParams) -> Result<Solution, IlpError> {
    model.validate()?;
    let start = Instant::now();
    let n = model.n_vars();

    // Work in minimization sense.
    let mut work = model.clone();
    let cmul = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    if cmul < 0.0 {
        for v in &mut work.vars {
            v.obj = -v.obj;
        }
    }

    let mut stats = SolveStats {
        exact: true,
        ..Default::default()
    };
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    if let Some(init) = &params.initial_solution {
        if init.len() != n {
            return Err(IlpError::BadInitialSolution(format!(
                "length {} != {} variables",
                init.len(),
                n
            )));
        }
        if !work.is_feasible(init, 1e-6) {
            return Err(IlpError::BadInitialSolution("infeasible".into()));
        }
        incumbent = Some((work.objective_value(init), init.clone()));
    }

    let int_tol = params.int_tol;
    let mut heap: BinaryHeap<Node> = BinaryHeap::new();
    let mut seq = 0u64;
    heap.push(Node {
        bound: f64::NEG_INFINITY,
        depth: 0,
        seq,
        chain: Chain::default(),
    });
    // Bound contributed by nodes whose LP failed numerically (conservative).
    let mut lost_bound = f64::INFINITY;
    let mut unbounded = false;

    let accept_candidate = |cand: &[f64], work: &Model, inc: &mut Option<(f64, Vec<f64>)>| {
        if !work.is_feasible(cand, 1e-5) {
            return;
        }
        let obj = work.objective_value(cand);
        if inc.as_ref().is_none_or(|(best, _)| obj < *best - 1e-12) {
            *inc = Some((obj, cand.to_vec()));
        }
    };

    while let Some(node) = heap.pop() {
        // Global optimality / gap check against the best open bound.
        if let Some((inc_obj, _)) = &incumbent {
            let global_bound = node.bound.min(lost_bound);
            let gap = (inc_obj - global_bound) / inc_obj.abs().max(1e-10);
            if gap <= params.mip_gap || node.bound >= inc_obj - 1e-9 * inc_obj.abs().max(1.0) {
                // Everything still open is at least as bad: finished.
                heap.clear();
                break;
            }
        }
        if stats.nodes >= params.node_limit || start.elapsed() >= params.time_limit {
            heap.push(node); // keep it open for bound reporting
            break;
        }
        stats.nodes += 1;

        let overrides = node.chain.overrides(n);
        let red = match presolve(&work, &overrides) {
            Presolved::Infeasible => continue,
            Presolved::Reduced(r) => r,
        };

        let (full, node_obj) = if red.keep.is_empty() {
            // Fully fixed by presolve.
            (red.expand(&[]), red.obj_offset)
        } else {
            let lp = LpForm {
                n: red.keep.len(),
                cols: red.columns(),
                cmps: red.cmps.clone(),
                rhs: red.rhs.clone(),
                lower: red.lower.clone(),
                upper: red.upper.clone(),
                obj: red.obj.clone(),
            };
            match solve_lp(&lp) {
                Ok(LpOutcome::Optimal { x, obj, iterations }) => {
                    stats.lp_iterations += iterations;
                    (red.expand(&x), obj + red.obj_offset)
                }
                Ok(LpOutcome::Infeasible) => continue,
                Ok(LpOutcome::Unbounded) => {
                    if node.depth == 0 && incumbent.is_none() {
                        unbounded = true;
                        break;
                    }
                    stats.exact = false;
                    lost_bound = lost_bound.min(node.bound);
                    continue;
                }
                Err(_) => {
                    // Numerical failure: surrender the node, keep correctness.
                    stats.exact = false;
                    lost_bound = lost_bound.min(node.bound);
                    continue;
                }
            }
        };

        // Prune by bound.
        if let Some((inc_obj, _)) = &incumbent {
            if node_obj >= inc_obj - 1e-9 * inc_obj.abs().max(1.0) {
                continue;
            }
        }

        // Branch on the *first* fractional integer variable (static
        // priority order). Model builders exploit this: the vertical
        // partitioning MIP creates transaction-assignment variables first,
        // so the search fixes transaction placement before attribute
        // placement — the decisions everything else cascades from.
        let mut branch: Option<(usize, f64)> = None; // (var, fractionality)
        for (j, v) in work.vars.iter().enumerate() {
            if v.kind != VarKind::Integer {
                continue;
            }
            let x = full[j];
            let frac = (x - x.round()).abs();
            if frac > int_tol {
                let score = (x - x.floor()).min(x.ceil() - x);
                branch = Some((j, score));
                break;
            }
        }

        match branch {
            None => {
                // Integral: round and accept.
                let mut cand = full.clone();
                for (j, v) in work.vars.iter().enumerate() {
                    if v.kind == VarKind::Integer {
                        cand[j] = cand[j].round();
                    }
                }
                let before = incumbent.as_ref().map(|(o, _)| *o);
                accept_candidate(&cand, &work, &mut incumbent);
                let accepted = incumbent.as_ref().map(|(o, _)| *o) != before;
                let beats = before.is_none_or(|b| node_obj < b - 1e-12);
                if !accepted && beats {
                    // An integral LP solution that should have improved the
                    // incumbent failed the feasibility re-check (numerical
                    // noise). Closing the node would silently lose the
                    // subtree — keep the bound conservative instead.
                    stats.exact = false;
                    lost_bound = lost_bound.min(node_obj);
                }
            }
            Some((j, _)) => {
                // Primal rounding heuristic for an early incumbent.
                let mut cand = full.clone();
                for (jj, v) in work.vars.iter().enumerate() {
                    if v.kind == VarKind::Integer {
                        cand[jj] = cand[jj].round();
                    }
                }
                accept_candidate(&cand, &work, &mut incumbent);

                let x = full[j];
                for (lo, hi) in [(f64::NEG_INFINITY, x.floor()), (x.ceil(), f64::INFINITY)] {
                    seq += 1;
                    heap.push(Node {
                        bound: node_obj,
                        depth: node.depth + 1,
                        seq,
                        chain: node.chain.extend(j, lo, hi),
                    });
                }
            }
        }
    }

    stats.elapsed = start.elapsed();
    if unbounded {
        return Ok(Solution {
            status: SolveStatus::Unbounded,
            objective: f64::NAN,
            values: Vec::new(),
            best_bound: f64::NEG_INFINITY * cmul,
            gap: f64::INFINITY,
            stats,
        });
    }

    // The proven bound is the weakest open node (or the incumbent if closed).
    let open_bound = heap.iter().map(|nd| nd.bound).fold(lost_bound, f64::min);
    let search_exhausted = heap.is_empty() && lost_bound == f64::INFINITY;

    match incumbent {
        Some((obj, values)) => {
            let bound = if search_exhausted {
                obj
            } else {
                open_bound.min(obj)
            };
            let gap = ((obj - bound) / obj.abs().max(1e-10)).max(0.0);
            let proven = search_exhausted || gap <= params.mip_gap;
            Ok(Solution {
                status: if proven && stats.exact {
                    SolveStatus::Optimal
                } else {
                    SolveStatus::Feasible
                },
                objective: cmul * obj,
                values,
                best_bound: cmul * bound,
                gap,
                stats,
            })
        }
        None => {
            if search_exhausted {
                Ok(Solution {
                    status: SolveStatus::Infeasible,
                    objective: f64::NAN,
                    values: Vec::new(),
                    best_bound: cmul * f64::INFINITY,
                    gap: f64::INFINITY,
                    stats,
                })
            } else {
                Ok(Solution {
                    status: SolveStatus::NoSolutionFound,
                    objective: f64::NAN,
                    values: Vec::new(),
                    best_bound: cmul * open_bound,
                    gap: f64::INFINITY,
                    stats,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp;

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c st 3a + 4b + 2c <= 6, binary → a=0? Let's see:
        // combos: a+b (7w? 3+4=7>6 no), b+c (6w, 20), a+c (5w, 17), so 20.
        let mut m = Model::maximize();
        let a = m.binary("a", 10.0);
        let b = m.binary("b", 13.0);
        let c = m.binary("c", 7.0);
        m.add_constraint("w", [(a, 3.0), (b, 4.0), (c, 2.0)], Cmp::Le, 6.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert_eq!(s.value(b).round(), 1.0);
        assert_eq!(s.value(c).round(), 1.0);
        assert!(s.gap <= 1e-3);
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix with known optimum 1+2+3 = 6 on the
        // diagonal after permutation.
        let cost = [[1.0, 5.0, 9.0], [6.0, 2.0, 8.0], [7.0, 4.0, 3.0]];
        let mut m = Model::minimize();
        let mut v = [[VarRefDummy::X; 3]; 3].map(|row| row.map(|_| crate::model::VarRef(0)));
        for i in 0..3 {
            for j in 0..3 {
                v[i][j] = m.binary(format!("x{i}{j}"), cost[i][j]);
            }
        }
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| (v[i][j], 1.0)).collect();
            m.add_constraint(format!("r{i}"), row, Cmp::Eq, 1.0);
            let col: Vec<_> = (0..3).map(|j| (v[j][i], 1.0)).collect();
            m.add_constraint(format!("c{i}"), col, Cmp::Eq, 1.0);
        }
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective - 6.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[derive(Clone, Copy)]
    enum VarRefDummy {
        X,
    }

    #[test]
    fn infeasible_integer_problem() {
        // 2x = 1 with x integer.
        let mut m = Model::minimize();
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c", [(x, 2.0)], Cmp::Eq, 1.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_problem() {
        let mut m = Model::maximize();
        let _x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY, 1.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn pure_lp_passthrough() {
        let mut m = Model::minimize();
        let x = m.continuous("x", 1.0);
        let y = m.continuous("y", 2.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 4.0).abs() < 1e-6);
        assert!((s.value(x) - 4.0).abs() < 1e-6);
    }

    #[test]
    fn initial_incumbent_is_used() {
        let mut m = Model::maximize();
        let a = m.binary("a", 1.0);
        let b = m.binary("b", 1.0);
        m.add_constraint("c", [(a, 1.0), (b, 1.0)], Cmp::Le, 1.0);
        let p = SolveParams {
            initial_solution: Some(vec![1.0, 0.0]),
            ..Default::default()
        };
        let s = m.solve(&p).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_initial_solution() {
        let mut m = Model::maximize();
        let a = m.binary("a", 1.0);
        m.add_constraint("c", [(a, 1.0)], Cmp::Le, 0.0);
        let mut p = SolveParams {
            initial_solution: Some(vec![1.0]), // violates the constraint
            ..Default::default()
        };
        assert!(matches!(m.solve(&p), Err(IlpError::BadInitialSolution(_))));
        p.initial_solution = Some(vec![1.0, 2.0]); // wrong arity
        assert!(matches!(m.solve(&p), Err(IlpError::BadInitialSolution(_))));
    }

    #[test]
    fn node_limit_reports_feasible_or_nothing() {
        // A 12-item knapsack with a node limit of 1: incumbent comes from
        // the rounding heuristic or not at all — never claims optimal
        // unless the gap closed.
        let mut m = Model::maximize();
        let vars: Vec<_> = (0..12)
            .map(|i| m.binary(format!("x{i}"), 1.0 + (i as f64 % 3.0)))
            .collect();
        let terms: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_constraint("w", terms, Cmp::Le, 11.0);
        let p = SolveParams {
            node_limit: 1,
            ..Default::default()
        };
        let s = m.solve(&p).unwrap();
        assert!(matches!(
            s.status,
            SolveStatus::Feasible | SolveStatus::NoSolutionFound | SolveStatus::Optimal
        ));
        if s.status == SolveStatus::Feasible {
            assert!(s.gap > 0.0 || !s.stats.exact);
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 5x + 4y st 6x + 4y <= 24, x + 2y <= 6, x int, y cont.
        // LP opt (3, 1.5) obj 21; with x integer it stays x=3,y=1.5.
        let mut m = Model::maximize();
        let x = m.add_var("x", VarKind::Integer, 0.0, f64::INFINITY, 5.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY, 4.0);
        m.add_constraint("c1", [(x, 6.0), (y, 4.0)], Cmp::Le, 24.0);
        m.add_constraint("c2", [(x, 1.0), (y, 2.0)], Cmp::Le, 6.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 21.0).abs() < 1e-6);
        assert!((s.value(x) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_lp_forces_branching() {
        // max x1 + x2 st 2x1 + 2x2 <= 3, binaries → LP gives 1.5 total,
        // MILP optimum is 1.
        let mut m = Model::maximize();
        let a = m.binary("a", 1.0);
        let b = m.binary("b", 1.0);
        m.add_constraint("c", [(a, 2.0), (b, 2.0)], Cmp::Le, 3.0);
        let s = m.solve(&SolveParams::default()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert!(s.stats.nodes >= 1);
    }
}
