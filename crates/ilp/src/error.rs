//! Solver error type.

use std::fmt;

/// Errors raised while building or solving a model.
#[derive(Debug, Clone, PartialEq)]
pub enum IlpError {
    /// A coefficient, bound or right-hand side was NaN (or an objective
    /// coefficient was infinite).
    NonFiniteCoefficient { context: String },
    /// A variable was declared with `lower > upper`.
    InvalidBounds { var: String, lower: f64, upper: f64 },
    /// A constraint or objective referenced a variable from another model.
    UnknownVariable { index: usize, n_vars: usize },
    /// An injected initial solution had the wrong length or was infeasible.
    BadInitialSolution(String),
    /// The simplex exceeded its iteration safety limit — numerical trouble.
    IterationLimit,
    /// Internal invariant violation (a bug in the solver).
    Internal(&'static str),
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            Self::InvalidBounds { var, lower, upper } => {
                write!(f, "variable {var:?} has invalid bounds [{lower}, {upper}]")
            }
            Self::UnknownVariable { index, n_vars } => {
                write!(
                    f,
                    "variable index {index} out of range (model has {n_vars})"
                )
            }
            Self::BadInitialSolution(why) => write!(f, "bad initial solution: {why}"),
            Self::IterationLimit => write!(f, "simplex iteration safety limit exceeded"),
            Self::Internal(what) => write!(f, "internal solver error: {what}"),
        }
    }
}

impl std::error::Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = IlpError::InvalidBounds {
            var: "x".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(e.to_string().contains("[2, 1]"));
    }
}
