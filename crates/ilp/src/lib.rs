//! A self-contained mixed-integer linear programming (MILP) solver.
//!
//! The paper solves its linearized quadratic program with GLPK 4.39. No
//! external solver is available in this environment, so this crate provides
//! the substrate from scratch:
//!
//! * [`Model`] — a sparse MILP builder (continuous/integer variables with
//!   bounds, linear constraints, min/max objective),
//! * a **bounded-variable primal simplex** with two phases, explicit basis
//!   inverse maintained by eta updates, Dantzig pricing with a Bland
//!   anti-cycling fallback, and row equilibration ([`simplex`]),
//! * a light **presolve** (fixed-variable substitution, singleton-row bound
//!   tightening, empty-row elimination) applied at every node ([`presolve`]),
//! * **branch & bound** with best-first node selection, most-fractional
//!   branching, a rounding primal heuristic, incumbent injection, time
//!   limit, node limit and relative MIP-gap termination ([`branch`]) — the
//!   same control knobs the paper uses for GLPK (30 min limit, 0.1% gap).
//!
//! The solver is exact on the scales exercised by the paper's evaluation
//! (it proves optimality where GLPK did) and degrades the same way (returns
//! the best incumbent when a limit is hit).
//!
//! ```
//! use vpart_ilp::{Model, SolveParams, Cmp, VarKind};
//!
//! // max 3x + 2y  s.t.  x + y <= 4, x <= 2.5, x,y integer >= 0
//! let mut m = Model::maximize();
//! let x = m.add_var("x", VarKind::Integer, 0.0, 2.5, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY, 2.0);
//! m.add_constraint("cap", [(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! let sol = m.solve(&SolveParams::default()).unwrap();
//! assert_eq!(sol.objective.round(), 10.0); // x=2, y=2
//! ```

// Dense linear-algebra kernels use explicit index loops mirroring the
// textbook simplex formulations; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod branch;
pub mod error;
pub mod expr;
pub mod model;
pub mod presolve;
pub mod simplex;
pub mod solution;

pub use error::IlpError;
pub use expr::LinExpr;
pub use model::{Cmp, Model, VarKind, VarRef};
pub use solution::{Solution, SolveParams, SolveStats, SolveStatus};
