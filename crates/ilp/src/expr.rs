//! Sparse linear expressions over model variables.

use crate::model::VarRef;

/// A sparse linear expression `Σ coeff_i · var_i`.
///
/// Terms may repeat; they are combined when the expression is normalized
/// (at constraint-add time). Build with [`LinExpr::new`] and
/// [`LinExpr::add`], or collect from an iterator of `(VarRef, f64)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    pub(crate) terms: Vec<(VarRef, f64)>,
}

impl LinExpr {
    /// An empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coeff · var` to the expression; returns `self` for chaining.
    pub fn add(mut self, var: VarRef, coeff: f64) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds a term in place.
    pub fn push(&mut self, var: VarRef, coeff: f64) {
        self.terms.push((var, coeff));
    }

    /// Number of (unnormalized) terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The raw terms.
    pub fn terms(&self) -> &[(VarRef, f64)] {
        &self.terms
    }

    /// Sorts by variable and merges duplicate terms, dropping exact zeros.
    pub fn normalized(mut self) -> Self {
        self.terms.sort_by_key(|&(v, _)| v.0);
        let mut out: Vec<(VarRef, f64)> = Vec::with_capacity(self.terms.len());
        for (v, c) in self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| c != 0.0);
        Self { terms: out }
    }

    /// Evaluates the expression for a full assignment of variable values.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|&(v, c)| c * values[v.0]).sum()
    }
}

impl FromIterator<(VarRef, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarRef, f64)>>(iter: T) -> Self {
        Self {
            terms: iter.into_iter().collect(),
        }
    }
}

impl<const N: usize> From<[(VarRef, f64); N]> for LinExpr {
    fn from(terms: [(VarRef, f64); N]) -> Self {
        Self {
            terms: terms.to_vec(),
        }
    }
}

impl From<Vec<(VarRef, f64)>> for LinExpr {
    fn from(terms: Vec<(VarRef, f64)>) -> Self {
        Self { terms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_merges_and_drops_zeros() {
        let e = LinExpr::new()
            .add(VarRef(1), 2.0)
            .add(VarRef(0), 1.0)
            .add(VarRef(1), -2.0)
            .add(VarRef(2), 3.0);
        let n = e.normalized();
        assert_eq!(n.terms(), &[(VarRef(0), 1.0), (VarRef(2), 3.0)]);
    }

    #[test]
    fn eval() {
        let e: LinExpr = [(VarRef(0), 2.0), (VarRef(1), -1.0)].into();
        assert_eq!(e.eval(&[3.0, 4.0]), 2.0);
    }

    #[test]
    fn collect_from_iterator() {
        let e: LinExpr = (0..3).map(|i| (VarRef(i), i as f64)).collect();
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }
}
