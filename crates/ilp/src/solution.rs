//! Solve parameters, statuses and results.

use std::time::Duration;

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Solved to proven optimality (within the MIP gap tolerance).
    Optimal,
    /// A feasible incumbent exists but a limit (time/nodes) stopped the
    /// proof — the paper's "best found cost in parentheses" convention.
    Feasible,
    /// The problem has no feasible solution.
    Infeasible,
    /// The relaxation is unbounded in the optimization direction.
    Unbounded,
    /// A limit was reached before any integer-feasible solution was found —
    /// the paper's "t/o" convention.
    NoSolutionFound,
}

/// Knobs controlling branch & bound; mirrors the controls the paper uses
/// for GLPK (time limit, MIP gap).
#[derive(Debug, Clone)]
pub struct SolveParams {
    /// Wall-clock limit for the whole solve.
    pub time_limit: Duration,
    /// Relative MIP gap at which the incumbent is accepted as optimal
    /// (paper: 0.1% = 0.001).
    pub mip_gap: f64,
    /// Maximum number of branch & bound nodes.
    pub node_limit: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Optional starting incumbent (full variable assignment). Must be
    /// feasible; gives branch & bound an immediate upper bound.
    pub initial_solution: Option<Vec<f64>>,
}

impl Default for SolveParams {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(30 * 60),
            mip_gap: 1e-3,
            node_limit: usize::MAX,
            int_tol: 1e-6,
            initial_solution: None,
        }
    }
}

impl SolveParams {
    /// Convenience: a parameter set with the given time limit.
    pub fn with_time_limit(seconds: f64) -> Self {
        Self {
            time_limit: Duration::from_secs_f64(seconds),
            ..Self::default()
        }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Branch & bound nodes processed.
    pub nodes: usize,
    /// Total simplex iterations across all LP solves.
    pub lp_iterations: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True if every explored node's LP solved cleanly (optimality proofs
    /// are only claimed when true).
    pub exact: bool,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value of the incumbent in the *model's* sense
    /// (meaningless unless status is `Optimal`/`Feasible`).
    pub objective: f64,
    /// Incumbent variable values (empty unless `Optimal`/`Feasible`).
    pub values: Vec<f64>,
    /// Best proven bound on the optimum (in the model's sense).
    pub best_bound: f64,
    /// Relative gap between incumbent and bound (0 when proven optimal).
    pub gap: f64,
    /// Search statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// True if a usable assignment is available.
    pub fn has_solution(&self) -> bool {
        matches!(self.status, SolveStatus::Optimal | SolveStatus::Feasible)
    }

    /// The value of variable `v` in the incumbent.
    pub fn value(&self, v: crate::model::VarRef) -> f64 {
        self.values[v.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_controls() {
        let p = SolveParams::default();
        assert_eq!(p.time_limit, Duration::from_secs(1800));
        assert_eq!(p.mip_gap, 1e-3);
    }

    #[test]
    fn with_time_limit() {
        let p = SolveParams::with_time_limit(1.5);
        assert_eq!(p.time_limit, Duration::from_secs_f64(1.5));
    }
}
