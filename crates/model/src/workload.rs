//! Workload: queries with statistics, grouped into transactions.
//!
//! A [`Query`] carries the per-query statistics of the paper's §1.1/§2.1:
//! its kind (`δ_q`: read or write), its frequency `f_q`, the set of
//! attributes it accesses (`α_{a,q}`), and for every table it touches the
//! average number of rows retrieved/written (`n_{a,q}`, constant per table).
//! A [`Transaction`] groups queries (`γ_{q,t}`); every query belongs to
//! exactly one transaction.
//!
//! UPDATE statements are modeled per the paper's §5.2 as two sub-queries: a
//! read sub-query over all referenced attributes and a write sub-query over
//! the written attributes ([`WorkloadBuilder::add_update`]).

use crate::error::ModelError;
use crate::ids::{AttrId, QueryId, TableId, TxnId};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Whether a query reads or writes (the paper's `δ_q`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// `δ_q = 0`: retrieval only.
    Read,
    /// `δ_q = 1`: insert/update/delete; writes are distributed to all
    /// replicas and never break single-sitedness constraints.
    Write,
}

impl QueryKind {
    /// `δ_q` as used in the cost formulas.
    #[inline]
    pub fn delta(self) -> f64 {
        match self {
            QueryKind::Read => 0.0,
            QueryKind::Write => 1.0,
        }
    }

    /// True for [`QueryKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, QueryKind::Write)
    }
}

/// A single query with its statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Query name (unique within the workload; used in reports).
    pub name: String,
    /// Read or write.
    pub kind: QueryKind,
    /// Frequency `f_q` (relative execution rate; any positive scale).
    pub frequency: f64,
    /// Attributes accessed by the query (`α_{a,q} = 1`), sorted by id.
    pub attrs: Vec<AttrId>,
    /// `(table, n_r)`: average rows retrieved from / written to each touched
    /// table, sorted by table id. Tables listed here are exactly the tables
    /// owning some attribute in `attrs`.
    pub table_rows: Vec<(TableId, f64)>,
}

impl Query {
    /// Average rows accessed in the table owning attribute `a`
    /// (the paper's `n_{a,q}`), or 0.0 if the query does not touch it.
    pub fn rows_for_table(&self, t: TableId) -> f64 {
        self.table_rows
            .binary_search_by_key(&t, |&(tt, _)| tt)
            .map(|i| self.table_rows[i].1)
            .unwrap_or(0.0)
    }

    /// True if the query touches table `t` (β support).
    pub fn touches_table(&self, t: TableId) -> bool {
        self.table_rows
            .binary_search_by_key(&t, |&(tt, _)| tt)
            .is_ok()
    }

    /// True if the query accesses attribute `a` (`α_{a,q}`).
    pub fn accesses_attr(&self, a: AttrId) -> bool {
        self.attrs.binary_search(&a).is_ok()
    }
}

/// A transaction: an ordered group of queries with a primary executing site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Transaction name (unique within the workload).
    pub name: String,
    /// Queries executed by this transaction (`γ_{q,t} = 1`).
    pub queries: Vec<QueryId>,
}

/// A validated workload: queries partitioned into transactions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    queries: Vec<Query>,
    transactions: Vec<Transaction>,
    /// `query_txn[q]` = the unique transaction holding query `q` (γ inverse).
    query_txn: Vec<TxnId>,
}

impl Workload {
    /// Starts building a workload against `schema`.
    pub fn builder(schema: &Schema) -> WorkloadBuilder {
        WorkloadBuilder::new(schema)
    }

    /// All queries in id order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// All transactions in id order.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of transactions (the paper's `|T|`).
    pub fn n_txns(&self) -> usize {
        self.transactions.len()
    }

    /// Query by id.
    pub fn query(&self, q: QueryId) -> &Query {
        &self.queries[q.index()]
    }

    /// Transaction by id.
    pub fn txn(&self, t: TxnId) -> &Transaction {
        &self.transactions[t.index()]
    }

    /// The transaction holding query `q` (γ).
    pub fn txn_of(&self, q: QueryId) -> TxnId {
        self.query_txn[q.index()]
    }

    /// Looks up a transaction by name.
    pub fn txn_by_name(&self, name: &str) -> Option<TxnId> {
        self.transactions
            .iter()
            .position(|t| t.name == name)
            .map(TxnId::from_index)
    }

    /// Looks up a query by name.
    pub fn query_by_name(&self, name: &str) -> Option<QueryId> {
        self.queries
            .iter()
            .position(|q| q.name == name)
            .map(QueryId::from_index)
    }
}

/// A query under construction; create via [`QuerySpec::read`] /
/// [`QuerySpec::write`] and register with [`WorkloadBuilder::add_query`].
#[derive(Debug, Clone)]
pub struct QuerySpec {
    name: String,
    kind: QueryKind,
    frequency: f64,
    attrs: Vec<AttrId>,
    explicit_rows: Vec<(TableId, f64)>,
    default_rows: f64,
}

impl QuerySpec {
    /// A read query (`δ_q = 0`) with frequency 1 and 1 row per table.
    pub fn read<S: Into<String>>(name: S) -> Self {
        Self::new(name, QueryKind::Read)
    }

    /// A write query (`δ_q = 1`) with frequency 1 and 1 row per table.
    pub fn write<S: Into<String>>(name: S) -> Self {
        Self::new(name, QueryKind::Write)
    }

    fn new<S: Into<String>>(name: S, kind: QueryKind) -> Self {
        Self {
            name: name.into(),
            kind,
            frequency: 1.0,
            attrs: Vec::new(),
            explicit_rows: Vec::new(),
            default_rows: 1.0,
        }
    }

    /// Sets the frequency `f_q`.
    pub fn frequency(mut self, f: f64) -> Self {
        self.frequency = f;
        self
    }

    /// Adds accessed attributes (`α`). Duplicates are deduplicated.
    pub fn access(mut self, attrs: &[AttrId]) -> Self {
        self.attrs.extend_from_slice(attrs);
        self
    }

    /// Declares `n_r` rows accessed for `table`, overriding the default.
    pub fn rows(mut self, table: TableId, n: f64) -> Self {
        self.explicit_rows.push((table, n));
        self
    }

    /// Sets the row count applied to every touched table without an explicit
    /// [`QuerySpec::rows`] declaration (defaults to 1.0 — the paper's §5.2
    /// single-row assumption; use 10.0 for iterated/aggregate access).
    pub fn default_rows(mut self, n: f64) -> Self {
        self.default_rows = n;
        self
    }
}

/// Incremental [`Workload`] construction with validation.
#[derive(Debug)]
pub struct WorkloadBuilder {
    n_attrs: usize,
    attr_table: Vec<TableId>,
    queries: Vec<Query>,
    transactions: Vec<Transaction>,
    query_txn: Vec<Option<TxnId>>,
    names: std::collections::HashSet<String>,
    txn_names: std::collections::HashSet<String>,
}

impl WorkloadBuilder {
    /// Creates a builder validating against `schema`.
    pub fn new(schema: &Schema) -> Self {
        Self {
            n_attrs: schema.n_attrs(),
            attr_table: schema.attrs().iter().map(|a| a.table).collect(),
            queries: Vec::new(),
            transactions: Vec::new(),
            query_txn: Vec::new(),
            names: Default::default(),
            txn_names: Default::default(),
        }
    }

    /// Registers a query; returns its id.
    pub fn add_query(&mut self, spec: QuerySpec) -> Result<QueryId, ModelError> {
        if spec.name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if self.names.contains(&spec.name) {
            return Err(ModelError::DuplicateName(spec.name));
        }
        if !(spec.frequency > 0.0) || !spec.frequency.is_finite() {
            return Err(ModelError::InvalidFrequency {
                query: spec.name,
                frequency: spec.frequency,
            });
        }
        let mut attrs = spec.attrs;
        attrs.sort_unstable();
        attrs.dedup();
        if attrs.is_empty() {
            return Err(ModelError::EmptyQuery(spec.name));
        }
        for &a in &attrs {
            if a.index() >= self.n_attrs {
                return Err(ModelError::UnknownAttr(a));
            }
        }
        // Touched tables = tables owning an accessed attribute; attach rows.
        let mut rows: BTreeMap<TableId, f64> = BTreeMap::new();
        for &a in &attrs {
            rows.entry(self.attr_table[a.index()])
                .or_insert(spec.default_rows);
        }
        for (t, n) in spec.explicit_rows {
            match rows.get_mut(&t) {
                Some(slot) => *slot = n,
                None => {
                    return Err(ModelError::RowCountMismatch {
                        query: spec.name,
                        table: t,
                    });
                }
            }
        }
        for (&t, &n) in &rows {
            if !(n > 0.0) || !n.is_finite() {
                return Err(ModelError::InvalidRowCount {
                    query: spec.name,
                    table: t,
                    rows: n,
                });
            }
        }
        let id = QueryId::from_index(self.queries.len());
        self.names.insert(spec.name.clone());
        self.queries.push(Query {
            name: spec.name,
            kind: spec.kind,
            frequency: spec.frequency,
            attrs,
            table_rows: rows.into_iter().collect(),
        });
        self.query_txn.push(None);
        Ok(id)
    }

    /// Models an UPDATE per the paper's §5.2: a read sub-query accessing all
    /// attributes the statement references (`read_attrs ∪ write_attrs`) and
    /// a write sub-query accessing only the attributes actually written.
    /// Both inherit `frequency` and the same per-table row counts.
    ///
    /// Returns `(read_query, write_query)`.
    pub fn add_update<S: AsRef<str>>(
        &mut self,
        name: S,
        frequency: f64,
        read_attrs: &[AttrId],
        write_attrs: &[AttrId],
        rows: &[(TableId, f64)],
    ) -> Result<(QueryId, QueryId), ModelError> {
        let name = name.as_ref();
        let mut all: Vec<AttrId> = read_attrs.iter().chain(write_attrs).copied().collect();
        all.sort_unstable();
        all.dedup();
        let mut rspec = QuerySpec::read(format!("{name}/read"))
            .frequency(frequency)
            .access(&all);
        let mut wspec = QuerySpec::write(format!("{name}/write"))
            .frequency(frequency)
            .access(write_attrs);
        for &(t, n) in rows {
            rspec = rspec.rows(t, n);
            wspec = wspec.rows(t, n);
        }
        let r = self.add_query(rspec)?;
        let w = self.add_query(wspec)?;
        Ok((r, w))
    }

    /// Registers a transaction holding `queries`; returns its id.
    ///
    /// Each query must belong to exactly one transaction.
    pub fn transaction<S: Into<String>>(
        &mut self,
        name: S,
        queries: &[QueryId],
    ) -> Result<TxnId, ModelError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if !self.txn_names.insert(name.clone()) {
            return Err(ModelError::DuplicateName(name));
        }
        if queries.is_empty() {
            return Err(ModelError::EmptyTransaction(name));
        }
        let id = TxnId::from_index(self.transactions.len());
        for &q in queries {
            let slot = self
                .query_txn
                .get_mut(q.index())
                .ok_or(ModelError::UnknownQuery(q))?;
            if let Some(first) = *slot {
                return Err(ModelError::QueryReused {
                    query: q,
                    first,
                    second: id,
                });
            }
            *slot = Some(id);
        }
        self.transactions.push(Transaction {
            name,
            queries: queries.to_vec(),
        });
        Ok(id)
    }

    /// Finishes the workload: every query must be assigned to a transaction.
    pub fn build(self) -> Result<Workload, ModelError> {
        if self.transactions.is_empty() {
            return Err(ModelError::EmptyWorkload);
        }
        let mut query_txn = Vec::with_capacity(self.query_txn.len());
        for (i, slot) in self.query_txn.iter().enumerate() {
            match slot {
                Some(t) => query_txn.push(*t),
                None => return Err(ModelError::OrphanQuery(QueryId::from_index(i))),
            }
        }
        Ok(Workload {
            queries: self.queries,
            transactions: self.transactions,
            query_txn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        let mut b = Schema::builder();
        b.table("C", &[("id", 4.0), ("name", 16.0), ("bal", 8.0)])
            .unwrap();
        b.table("O", &[("id", 4.0), ("cid", 4.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn build_simple_workload() {
        let s = schema();
        let mut b = Workload::builder(&s);
        let q0 = b
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(2)]))
            .unwrap();
        let q1 = b
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(3), AttrId(4)])
                    .rows(TableId(1), 10.0),
            )
            .unwrap();
        b.transaction("T0", &[q0, q1]).unwrap();
        let w = b.build().unwrap();
        assert_eq!(w.n_queries(), 2);
        assert_eq!(w.n_txns(), 1);
        assert_eq!(w.txn_of(q1), TxnId(0));
        assert_eq!(w.query(q0).rows_for_table(TableId(0)), 1.0);
        assert_eq!(w.query(q1).rows_for_table(TableId(1)), 10.0);
        assert!(w.query(q0).accesses_attr(AttrId(2)));
        assert!(!w.query(q0).accesses_attr(AttrId(1)));
        assert!(w.query(q0).touches_table(TableId(0)));
        assert!(!w.query(q0).touches_table(TableId(1)));
    }

    #[test]
    fn update_splits_into_read_and_write() {
        let s = schema();
        let mut b = Workload::builder(&s);
        let (r, w) = b
            .add_update("upd", 2.0, &[AttrId(0)], &[AttrId(2)], &[(TableId(0), 1.0)])
            .unwrap();
        b.transaction("T", &[r, w]).unwrap();
        let wl = b.build().unwrap();
        let rq = wl.query(r);
        let wq = wl.query(w);
        assert_eq!(rq.kind, QueryKind::Read);
        assert_eq!(wq.kind, QueryKind::Write);
        // Read sub-query sees both referenced and written attributes.
        assert_eq!(rq.attrs, vec![AttrId(0), AttrId(2)]);
        // Write sub-query sees only the written attributes.
        assert_eq!(wq.attrs, vec![AttrId(2)]);
        assert_eq!(rq.frequency, 2.0);
        assert_eq!(wq.frequency, 2.0);
    }

    #[test]
    fn rejects_orphan_query() {
        let s = schema();
        let mut b = Workload::builder(&s);
        b.add_query(QuerySpec::read("q").access(&[AttrId(0)]))
            .unwrap();
        let q2 = b
            .add_query(QuerySpec::read("q2").access(&[AttrId(0)]))
            .unwrap();
        b.transaction("T", &[q2]).unwrap();
        assert_eq!(b.build().unwrap_err(), ModelError::OrphanQuery(QueryId(0)));
    }

    #[test]
    fn rejects_query_in_two_transactions() {
        let s = schema();
        let mut b = Workload::builder(&s);
        let q = b
            .add_query(QuerySpec::read("q").access(&[AttrId(0)]))
            .unwrap();
        b.transaction("T0", &[q]).unwrap();
        assert!(matches!(
            b.transaction("T1", &[q]),
            Err(ModelError::QueryReused { .. })
        ));
    }

    #[test]
    fn rejects_unknown_attr_and_bad_stats() {
        let s = schema();
        let mut b = Workload::builder(&s);
        assert_eq!(
            b.add_query(QuerySpec::read("q").access(&[AttrId(99)]))
                .unwrap_err(),
            ModelError::UnknownAttr(AttrId(99))
        );
        assert!(matches!(
            b.add_query(QuerySpec::read("q").access(&[AttrId(0)]).frequency(0.0)),
            Err(ModelError::InvalidFrequency { .. })
        ));
        assert!(matches!(
            b.add_query(
                QuerySpec::read("q")
                    .access(&[AttrId(0)])
                    .rows(TableId(0), -1.0)
            ),
            Err(ModelError::InvalidRowCount { .. })
        ));
        // rows() for a table the query does not touch:
        assert!(matches!(
            b.add_query(
                QuerySpec::read("q")
                    .access(&[AttrId(0)])
                    .rows(TableId(1), 5.0)
            ),
            Err(ModelError::RowCountMismatch { .. })
        ));
    }

    #[test]
    fn rejects_empty_query_and_workload() {
        let s = schema();
        let mut b = Workload::builder(&s);
        assert!(matches!(
            b.add_query(QuerySpec::read("q")),
            Err(ModelError::EmptyQuery(_))
        ));
        assert_eq!(
            Workload::builder(&s).build().unwrap_err(),
            ModelError::EmptyWorkload
        );
    }

    #[test]
    fn access_dedups_attrs() {
        let s = schema();
        let mut b = Workload::builder(&s);
        let q = b
            .add_query(QuerySpec::read("q").access(&[AttrId(1), AttrId(1), AttrId(0)]))
            .unwrap();
        b.transaction("T", &[q]).unwrap();
        let w = b.build().unwrap();
        assert_eq!(w.query(q).attrs, vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn name_lookups() {
        let s = schema();
        let mut b = Workload::builder(&s);
        let q = b
            .add_query(QuerySpec::read("lookup").access(&[AttrId(0)]))
            .unwrap();
        b.transaction("Txn", &[q]).unwrap();
        let w = b.build().unwrap();
        assert_eq!(w.query_by_name("lookup"), Some(q));
        assert_eq!(w.txn_by_name("Txn"), Some(TxnId(0)));
        assert_eq!(w.txn_by_name("nope"), None);
    }
}
