//! Compact fixed-size bit sets and bit matrices.
//!
//! The derived constants of the cost model (`α`, `φ`, table-touch sets) and
//! the attribute placement `y` are dense boolean matrices over small
//! universes (attributes × sites, queries × attributes). A `u64`-backed
//! bitset keeps them cache-friendly and makes set algebra (union, subset
//! tests during single-sitedness validation) cheap.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Number of indices this set can hold (not the number of set bits).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// True if every bit set in `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(w, o)| w & !o == 0)
    }

    /// True if `self` and `other` share at least one set bit.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).any(|(w, o)| w & o != 0)
    }

    /// Iterates over set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * WORD_BITS + tz)
            })
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized to the maximum index + 1.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let len = items.iter().max().map_or(0, |m| m + 1);
        let mut set = BitSet::new(len);
        for i in items {
            set.insert(i);
        }
        set
    }
}

/// A dense boolean matrix (`rows × cols`) with one bitset row per entity.
///
/// Used for the attribute placement `y[a][s]` and query/attribute incidence
/// matrices.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
    words_per_row: usize,
}

impl BitMatrix {
    /// Creates an all-false matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS).max(1);
        Self {
            rows,
            cols,
            data: vec![0; rows * words_per_row],
            words_per_row,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn check(&self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "bit ({r},{c}) out of range ({}x{})",
            self.rows,
            self.cols
        );
    }

    /// Sets entry `(r, c)` to `true`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        self.check(r, c);
        self.data[r * self.words_per_row + c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
    }

    /// Sets entry `(r, c)` to `false`.
    #[inline]
    pub fn unset(&mut self, r: usize, c: usize) {
        self.check(r, c);
        self.data[r * self.words_per_row + c / WORD_BITS] &= !(1u64 << (c % WORD_BITS));
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.check(r, c);
        self.data[r * self.words_per_row + c / WORD_BITS] >> (c % WORD_BITS) & 1 == 1
    }

    /// Number of `true` entries in row `r`.
    pub fn row_count(&self, r: usize) -> usize {
        assert!(r < self.rows);
        let start = r * self.words_per_row;
        self.data[start..start + self.words_per_row]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Iterates over the column indices set in row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(r < self.rows);
        let start = r * self.words_per_row;
        self.data[start..start + self.words_per_row]
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| {
                let mut bits = w;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * WORD_BITS + tz)
                })
            })
    }

    /// Total number of `true` entries.
    pub fn count(&self) -> usize {
        self.data.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn iter_yields_sorted_indices() {
        let mut s = BitSet::new(200);
        for i in [5, 63, 64, 65, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn subset_and_intersection() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(70);
        b.insert(1);
        b.insert(70);
        b.insert(99);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.intersects(&b));
        let empty = BitSet::new(100);
        assert!(!empty.intersects(&b));
        assert!(empty.is_subset_of(&a));
    }

    #[test]
    fn union_with_merges() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        b.insert(9);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(9));
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = vec![3usize, 8, 2].into_iter().collect();
        assert_eq!(s.capacity(), 9);
        assert_eq!(s.count(), 3);
        assert!(s.contains(8));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(8);
        let _ = s.contains(8);
    }

    #[test]
    fn matrix_set_get_unset() {
        let mut m = BitMatrix::new(3, 70);
        m.set(0, 0);
        m.set(2, 69);
        m.set(1, 64);
        assert!(m.get(0, 0) && m.get(2, 69) && m.get(1, 64));
        assert!(!m.get(0, 69));
        assert_eq!(m.count(), 3);
        m.unset(1, 64);
        assert!(!m.get(1, 64));
        assert_eq!(m.row_count(2), 1);
    }

    #[test]
    fn matrix_row_iter() {
        let mut m = BitMatrix::new(2, 100);
        m.set(1, 3);
        m.set(1, 99);
        assert_eq!(m.row_iter(1).collect::<Vec<_>>(), vec![3, 99]);
        assert_eq!(m.row_iter(0).count(), 0);
    }

    #[test]
    fn matrix_zero_cols_is_safe() {
        let m = BitMatrix::new(4, 0);
        assert_eq!(m.count(), 0);
        assert_eq!(m.rows(), 4);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::new(65);
        s.insert(64);
        s.clear();
        assert!(s.is_empty());
    }
}
