//! Vertical partitionings: the decision variables `x` and `y`.
//!
//! A [`Partitioning`] stores the disjoint transaction assignment
//! `x[t][s] ∈ {0,1}` (as one site per transaction) and the possibly
//! replicated attribute placement `y[a][s] ∈ {0,1}` (as a bit matrix).
//! [`Partitioning::validate`] checks the three model constraints:
//!
//! 1. every transaction on exactly one site (structural, by construction),
//! 2. every attribute on at least one site,
//! 3. single-sitedness of reads: `y[a][s] ≥ x[t][s] · φ[a][t]`.

use crate::bitset::BitMatrix;
use crate::error::ModelError;
use crate::ids::{AttrId, SiteId, TxnId};
use crate::instance::Instance;
use serde::{Deserialize, Serialize};

/// An assignment of transactions and attributes to sites.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    n_sites: usize,
    /// `x`: the primary executing site of each transaction.
    x: Vec<SiteId>,
    /// `y`: attribute × site placement (replication allowed).
    y: BitMatrix,
}

impl Partitioning {
    /// Creates a partitioning from raw parts, checking shapes only
    /// (constraint validation is [`Partitioning::validate`]).
    pub fn from_parts(n_sites: usize, x: Vec<SiteId>, y: BitMatrix) -> Result<Self, ModelError> {
        if n_sites == 0 {
            return Err(ModelError::NoSites);
        }
        if y.cols() != n_sites {
            return Err(ModelError::DimensionMismatch {
                what: "y columns (sites)",
                expected: n_sites,
                got: y.cols(),
            });
        }
        for &s in &x {
            if s.index() >= n_sites {
                return Err(ModelError::SiteOutOfRange { site: s, n_sites });
            }
        }
        Ok(Self { n_sites, x, y })
    }

    /// The trivial single-site partitioning: everything on site 0 of
    /// `n_sites` sites. This is the `|S| = 1` baseline of the paper's tables
    /// when `n_sites == 1`.
    pub fn single_site(instance: &Instance, n_sites: usize) -> Result<Self, ModelError> {
        if n_sites == 0 {
            return Err(ModelError::NoSites);
        }
        let x = vec![SiteId(0); instance.n_txns()];
        let mut y = BitMatrix::new(instance.n_attrs(), n_sites);
        for a in 0..instance.n_attrs() {
            y.set(a, 0);
        }
        Ok(Self { n_sites, x, y })
    }

    /// Builds the *minimal feasible* `y` for a given transaction assignment:
    /// each attribute is placed exactly on the sites whose transactions read
    /// it (`φ` closure); attributes read by no transaction are placed on
    /// site 0. The result is the cheapest non-replicated-beyond-necessity
    /// placement in terms of write cost, and a feasible starting point for
    /// local search.
    pub fn minimal_for_x(
        instance: &Instance,
        x: Vec<SiteId>,
        n_sites: usize,
    ) -> Result<Self, ModelError> {
        if n_sites == 0 {
            return Err(ModelError::NoSites);
        }
        if x.len() != instance.n_txns() {
            return Err(ModelError::DimensionMismatch {
                what: "x length (transactions)",
                expected: instance.n_txns(),
                got: x.len(),
            });
        }
        for &s in &x {
            if s.index() >= n_sites {
                return Err(ModelError::SiteOutOfRange { site: s, n_sites });
            }
        }
        let mut y = BitMatrix::new(instance.n_attrs(), n_sites);
        for (ti, &site) in x.iter().enumerate() {
            for &a in instance.read_set(TxnId::from_index(ti)) {
                y.set(a.index(), site.index());
            }
        }
        for a in 0..instance.n_attrs() {
            if y.row_count(a) == 0 {
                y.set(a, 0);
            }
        }
        Ok(Self { n_sites, x, y })
    }

    /// Number of sites `|S|`.
    #[inline]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Number of transactions.
    pub fn n_txns(&self) -> usize {
        self.x.len()
    }

    /// Number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.y.rows()
    }

    /// The primary executing site of transaction `t` (`x[t][s] = 1`).
    #[inline]
    pub fn site_of(&self, t: TxnId) -> SiteId {
        self.x[t.index()]
    }

    /// The full transaction assignment.
    pub fn x(&self) -> &[SiteId] {
        &self.x
    }

    /// The attribute placement matrix.
    pub fn y(&self) -> &BitMatrix {
        &self.y
    }

    /// `y[a][s]`: is attribute `a` placed on site `s`?
    #[inline]
    pub fn has_attr(&self, a: AttrId, s: SiteId) -> bool {
        self.y.get(a.index(), s.index())
    }

    /// Sites hosting attribute `a`.
    pub fn attr_sites(&self, a: AttrId) -> impl Iterator<Item = SiteId> + '_ {
        self.y.row_iter(a.index()).map(SiteId::from_index)
    }

    /// Number of replicas of attribute `a`.
    pub fn replication(&self, a: AttrId) -> usize {
        self.y.row_count(a.index())
    }

    /// True if any attribute is placed on more than one site.
    pub fn is_replicated(&self) -> bool {
        (0..self.n_attrs()).any(|a| self.y.row_count(a) > 1)
    }

    /// Total number of `(attribute, site)` placements.
    pub fn total_placements(&self) -> usize {
        self.y.count()
    }

    /// Transactions assigned to site `s`.
    pub fn txns_on_site(&self, s: SiteId) -> impl Iterator<Item = TxnId> + '_ {
        self.x
            .iter()
            .enumerate()
            .filter(move |(_, &site)| site == s)
            .map(|(i, _)| TxnId::from_index(i))
    }

    /// Attributes placed on site `s`.
    pub fn attrs_on_site(&self, s: SiteId) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.n_attrs())
            .filter(move |&a| self.y.get(a, s.index()))
            .map(AttrId::from_index)
    }

    /// Moves transaction `t` to `site` (no feasibility repair; callers that
    /// need single-sitedness must re-derive or extend `y`, see
    /// [`Partitioning::repair_single_sitedness`]).
    pub fn move_txn(&mut self, t: TxnId, site: SiteId) {
        assert!(site.index() < self.n_sites, "site out of range");
        self.x[t.index()] = site;
    }

    /// Adds a replica of `a` on `site`.
    pub fn add_replica(&mut self, a: AttrId, site: SiteId) {
        self.y.set(a.index(), site.index());
    }

    /// Removes the replica of `a` on `site` (may invalidate constraints;
    /// validate afterwards).
    pub fn remove_replica(&mut self, a: AttrId, site: SiteId) {
        self.y.unset(a.index(), site.index());
    }

    /// Extends `y` with the replicas required by the current `x`
    /// (single-sitedness closure). Returns the number of replicas added.
    pub fn repair_single_sitedness(&mut self, instance: &Instance) -> usize {
        let mut added = 0;
        for (ti, &site) in self.x.iter().enumerate() {
            for &a in instance.read_set(TxnId::from_index(ti)) {
                if !self.y.get(a.index(), site.index()) {
                    self.y.set(a.index(), site.index());
                    added += 1;
                }
            }
        }
        added
    }

    /// Relabels sites so that transaction `t` only uses site indices
    /// `≤ t` (sites are interchangeable): new indices are assigned in
    /// order of first use by `x`, then unused sites keep relative order.
    /// The canonical form satisfies the QP solver's symmetry-breaking
    /// constraints and has identical cost.
    pub fn canonicalized(&self) -> Self {
        let n = self.n_sites;
        let mut perm: Vec<Option<usize>> = vec![None; n]; // old -> new
        let mut next = 0usize;
        for &s in &self.x {
            if perm[s.index()].is_none() {
                perm[s.index()] = Some(next);
                next += 1;
            }
        }
        for slot in perm.iter_mut() {
            if slot.is_none() {
                *slot = Some(next);
                next += 1;
            }
        }
        let perm: Vec<usize> = perm
            .into_iter()
            .map(|s| s.expect("both fill passes above cover every site slot"))
            .collect();
        let x = self
            .x
            .iter()
            .map(|s| SiteId::from_index(perm[s.index()]))
            .collect();
        let mut y = BitMatrix::new(self.y.rows(), n);
        for a in 0..self.y.rows() {
            for s in self.y.row_iter(a) {
                y.set(a, perm[s]);
            }
        }
        Self { n_sites: n, x, y }
    }

    /// Checks the model constraints against `instance`.
    ///
    /// With `require_disjoint`, additionally rejects any replication
    /// (the paper's Table 5 "w/o replication" mode).
    pub fn validate(&self, instance: &Instance, require_disjoint: bool) -> Result<(), ModelError> {
        if self.x.len() != instance.n_txns() {
            return Err(ModelError::DimensionMismatch {
                what: "x length (transactions)",
                expected: instance.n_txns(),
                got: self.x.len(),
            });
        }
        if self.y.rows() != instance.n_attrs() {
            return Err(ModelError::DimensionMismatch {
                what: "y rows (attributes)",
                expected: instance.n_attrs(),
                got: self.y.rows(),
            });
        }
        for a in 0..self.y.rows() {
            let reps = self.y.row_count(a);
            if reps == 0 {
                return Err(ModelError::UnplacedAttr(AttrId::from_index(a)));
            }
            if require_disjoint && reps > 1 {
                return Err(ModelError::ReplicationForbidden {
                    attr: AttrId::from_index(a),
                });
            }
        }
        for (ti, &site) in self.x.iter().enumerate() {
            let t = TxnId::from_index(ti);
            for &a in instance.read_set(t) {
                if !self.y.get(a.index(), site.index()) {
                    return Err(ModelError::SingleSitednessViolated {
                        txn: t,
                        attr: a,
                        site,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::workload::{QuerySpec, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("T", &[("a", 4.0), ("b", 4.0), ("c", 4.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::write("q1").access(&[AttrId(2)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("p", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn single_site_is_valid() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 1).unwrap();
        p.validate(&ins, true).unwrap();
        assert_eq!(p.n_sites(), 1);
        assert!(!p.is_replicated());
        assert_eq!(p.total_placements(), 3);
    }

    #[test]
    fn minimal_for_x_covers_read_sets() {
        let ins = instance();
        let p = Partitioning::minimal_for_x(&ins, vec![SiteId(1), SiteId(0)], 2).unwrap();
        p.validate(&ins, false).unwrap();
        // T0 reads a0,a1 on site 1.
        assert!(p.has_attr(AttrId(0), SiteId(1)));
        assert!(p.has_attr(AttrId(1), SiteId(1)));
        // a2 is never read; falls back to site 0.
        assert!(p.has_attr(AttrId(2), SiteId(0)));
        assert_eq!(p.replication(AttrId(0)), 1);
    }

    #[test]
    fn validate_catches_unplaced_attr() {
        let ins = instance();
        let y = BitMatrix::new(3, 2); // nothing placed
        let p = Partitioning::from_parts(2, vec![SiteId(0), SiteId(0)], y).unwrap();
        assert_eq!(
            p.validate(&ins, false).unwrap_err(),
            ModelError::UnplacedAttr(AttrId(0))
        );
    }

    #[test]
    fn validate_catches_single_sitedness_violation() {
        let ins = instance();
        let mut y = BitMatrix::new(3, 2);
        // All attributes on site 0, but T0 executes on site 1.
        for a in 0..3 {
            y.set(a, 0);
        }
        let p = Partitioning::from_parts(2, vec![SiteId(1), SiteId(0)], y).unwrap();
        assert!(matches!(
            p.validate(&ins, false).unwrap_err(),
            ModelError::SingleSitednessViolated { txn: TxnId(0), .. }
        ));
    }

    #[test]
    fn validate_disjoint_rejects_replication() {
        let ins = instance();
        let mut p = Partitioning::single_site(&ins, 2).unwrap();
        p.add_replica(AttrId(0), SiteId(1));
        p.validate(&ins, false).unwrap();
        assert_eq!(
            p.validate(&ins, true).unwrap_err(),
            ModelError::ReplicationForbidden { attr: AttrId(0) }
        );
        assert!(p.is_replicated());
    }

    #[test]
    fn repair_extends_y_after_move() {
        let ins = instance();
        let mut p = Partitioning::single_site(&ins, 2).unwrap();
        p.move_txn(TxnId(0), SiteId(1));
        assert!(p.validate(&ins, false).is_err());
        let added = p.repair_single_sitedness(&ins);
        assert_eq!(added, 2); // a0, a1 must appear on site 1
        p.validate(&ins, false).unwrap();
    }

    #[test]
    fn from_parts_checks_shapes() {
        assert!(matches!(
            Partitioning::from_parts(0, vec![], BitMatrix::new(0, 0)),
            Err(ModelError::NoSites)
        ));
        assert!(matches!(
            Partitioning::from_parts(2, vec![SiteId(5)], BitMatrix::new(1, 2)),
            Err(ModelError::SiteOutOfRange { .. })
        ));
        assert!(matches!(
            Partitioning::from_parts(2, vec![SiteId(0)], BitMatrix::new(1, 3)),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn site_listings() {
        let ins = instance();
        let p = Partitioning::minimal_for_x(&ins, vec![SiteId(1), SiteId(0)], 2).unwrap();
        let txns: Vec<TxnId> = p.txns_on_site(SiteId(1)).collect();
        assert_eq!(txns, vec![TxnId(0)]);
        let attrs: Vec<AttrId> = p.attrs_on_site(SiteId(1)).collect();
        assert_eq!(attrs, vec![AttrId(0), AttrId(1)]);
    }

    #[test]
    fn canonicalized_relabels_sites_in_first_use_order() {
        let ins = instance();
        // T0 on site 2, T1 on site 0: canonical form maps 2→0, 0→1.
        let p = Partitioning::minimal_for_x(&ins, vec![SiteId(2), SiteId(0)], 3).unwrap();
        let c = p.canonicalized();
        assert_eq!(c.site_of(TxnId(0)), SiteId(0));
        assert_eq!(c.site_of(TxnId(1)), SiteId(1));
        c.validate(&ins, false).unwrap();
        // Placement counts are preserved.
        assert_eq!(c.total_placements(), p.total_placements());
        for a in 0..3 {
            assert_eq!(
                c.replication(AttrId(a)),
                p.replication(AttrId(a)),
                "replication degree preserved for a{a}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 2).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Partitioning = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
