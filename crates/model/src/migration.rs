//! Migration plans: the physical delta between two partitionings.
//!
//! When a workload drifts and a new [`Partitioning`] replaces the incumbent,
//! the cluster has to *move data*: every attribute newly placed on a site
//! must be shipped there (one column fraction, `w_a` bytes per row), every
//! replica no longer present can be dropped locally (free), and every
//! transaction whose home site changed is re-routed (free — routing tables,
//! not data). [`MigrationPlan::between`] computes that delta as per-site,
//! per-table [`FragmentChange`]s with byte estimates; the execution engine
//! (`vpart_engine::Deployment::apply_migration`) physically applies a plan
//! and meters the bytes it actually moved with the *same* accounting, so
//! plan estimates and engine measurements must agree exactly.
//!
//! Plans are deliberately *label-sensitive*: `between` diffs the two
//! partitionings as given. Site labels are interchangeable to the solvers,
//! so callers should first relabel the new partitioning to maximize overlap
//! with the old one (see `vpart_online::migrate::canonicalize_against`) —
//! a renumbered-but-identical layout then produces an empty plan.

use crate::error::ModelError;
use crate::ids::{AttrId, SiteId, TableId, TxnId};
use crate::instance::Instance;
use crate::partition::Partitioning;
use serde::{Deserialize, Serialize};

/// One site/table fragment delta: attributes to install and to drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentChange {
    /// The site whose fragment changes.
    pub site: SiteId,
    /// The table whose fraction changes on that site.
    pub table: TableId,
    /// Attributes newly placed on the site (data must be shipped in),
    /// in ascending id order.
    pub installed: Vec<AttrId>,
    /// Attributes removed from the site (local delete, free), ascending.
    pub dropped: Vec<AttrId>,
    /// Estimated bytes shipped to the site for the installs:
    /// `(Σ_{a ∈ installed} w_a) × rows`.
    pub bytes: f64,
}

/// One transaction re-homing (routing change; moves no data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnMove {
    /// The transaction.
    pub txn: TxnId,
    /// Its site under the old partitioning.
    pub from: SiteId,
    /// Its site under the new partitioning.
    pub to: SiteId,
}

/// The full old → new delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The incumbent layout the plan starts from.
    pub from: Partitioning,
    /// The target layout the plan produces.
    pub to: Partitioning,
    /// Fragment deltas, ordered by `(site, table)`.
    pub changes: Vec<FragmentChange>,
    /// Transaction re-homings, ordered by transaction id.
    pub txn_moves: Vec<TxnMove>,
    /// The uniform per-fragment row count the byte estimates assume (the
    /// same parameter `vpart_engine::Deployment::new` materializes).
    pub rows_per_fragment: usize,
}

impl MigrationPlan {
    /// Diffs `from` → `to` over `instance`. Both partitionings must share
    /// the instance's shape and site count and validate against it.
    /// `rows_per_fragment` is clamped to at least 1, exactly as the
    /// engine's `Deployment::new` clamps it, so estimates and the
    /// migration meter agree even at the degenerate value 0.
    pub fn between(
        instance: &Instance,
        from: &Partitioning,
        to: &Partitioning,
        rows_per_fragment: usize,
    ) -> Result<Self, ModelError> {
        if from.n_sites() != to.n_sites() {
            return Err(ModelError::DimensionMismatch {
                what: "migration target sites",
                expected: from.n_sites(),
                got: to.n_sites(),
            });
        }
        from.validate(instance, false)?;
        to.validate(instance, false)?;

        let schema = instance.schema();
        let rows_per_fragment = rows_per_fragment.max(1);
        let rows = rows_per_fragment as f64;
        let mut changes = Vec::new();
        for s in 0..from.n_sites() {
            let site = SiteId::from_index(s);
            for t in 0..instance.n_tables() {
                let table = TableId::from_index(t);
                let mut installed = Vec::new();
                let mut dropped = Vec::new();
                for a in schema.table_attrs(table).map(AttrId::from_index) {
                    match (from.has_attr(a, site), to.has_attr(a, site)) {
                        (false, true) => installed.push(a),
                        (true, false) => dropped.push(a),
                        _ => {}
                    }
                }
                if installed.is_empty() && dropped.is_empty() {
                    continue;
                }
                // The exact expression the engine meter re-evaluates:
                // summed width first, scaled by rows once.
                let bytes = installed.iter().map(|&a| schema.width(a)).sum::<f64>() * rows;
                changes.push(FragmentChange {
                    site,
                    table,
                    installed,
                    dropped,
                    bytes,
                });
            }
        }

        let txn_moves = (0..instance.n_txns())
            .map(TxnId::from_index)
            .filter(|&t| from.site_of(t) != to.site_of(t))
            .map(|t| TxnMove {
                txn: t,
                from: from.site_of(t),
                to: to.site_of(t),
            })
            .collect();

        Ok(Self {
            from: from.clone(),
            to: to.clone(),
            changes,
            txn_moves,
            rows_per_fragment,
        })
    }

    /// Total estimated bytes shipped between sites.
    pub fn estimated_bytes(&self) -> f64 {
        self.changes.iter().map(|c| c.bytes).sum()
    }

    /// Number of attribute installs across all fragment changes.
    pub fn installs(&self) -> usize {
        self.changes.iter().map(|c| c.installed.len()).sum()
    }

    /// Number of attribute drops across all fragment changes.
    pub fn drops(&self) -> usize {
        self.changes.iter().map(|c| c.dropped.len()).sum()
    }

    /// True when the plan changes nothing — the drifted re-solve landed on
    /// the incumbent layout (possibly after relabeling).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.txn_moves.is_empty()
    }

    /// Splits the plan into rate-limited [`MigrationBatch`]es of micro-ops,
    /// each shipping at most `batch_bytes` of installs (a single install
    /// wider than the budget still gets its own batch, so progress is
    /// guaranteed).
    ///
    /// Ordering minimizes the peak transient dual-resident width: moves and
    /// drops are *free* and applied eagerly the moment they become safe,
    /// installs that unblock a pending transaction re-homing go first, and
    /// every batch boundary is a valid [`Partitioning`] — reads stay
    /// single-sited and no attribute is ever unplaced, so the deployment
    /// can serve traffic (and crash, and recover) at any boundary.
    ///
    /// Safety rules for the greedy scheduler:
    /// * `Install(a, s)` is always safe (adds a replica);
    /// * `MoveTxn(t, →s')` is safe once every attribute `t` reads is
    ///   present on `s'`;
    /// * `Drop(a, s)` is safe once `a` is replicated elsewhere and no
    ///   transaction currently homed on `s` reads `a`.
    ///
    /// With a plan produced by [`MigrationPlan::between`] this always
    /// terminates: after all installs every move is safe (the target
    /// validates), and after all moves every drop is safe. A tampered plan
    /// that cannot make progress yields [`ModelError::InconsistentPlan`].
    pub fn batched(
        &self,
        instance: &Instance,
        batch_bytes: f64,
    ) -> Result<BatchedMigrationPlan, ModelError> {
        if batch_bytes.is_nan() || batch_bytes <= 0.0 {
            return Err(ModelError::InvalidBatchBytes { bytes: batch_bytes });
        }
        if self.from.n_sites() != self.to.n_sites() {
            return Err(ModelError::DimensionMismatch {
                what: "migration target sites",
                expected: self.from.n_sites(),
                got: self.to.n_sites(),
            });
        }
        // Plans may arrive deserialized; re-validate the endpoints.
        self.from.validate(instance, false)?;
        self.to.validate(instance, false)?;

        let schema = instance.schema();
        let rows = self.rows_per_fragment.max(1) as f64;

        // Pending micro-ops in the plan's deterministic (site, table, attr)
        // order.
        let mut installs: Vec<(AttrId, SiteId, f64)> = Vec::new();
        let mut drops: Vec<(AttrId, SiteId)> = Vec::new();
        for ch in &self.changes {
            for &a in &ch.installed {
                if schema.table_of(a) != ch.table {
                    return Err(ModelError::InconsistentPlan {
                        what: "fragment change lists an attribute of another table",
                    });
                }
                installs.push((a, ch.site, schema.width(a) * rows));
            }
            for &a in &ch.dropped {
                drops.push((a, ch.site));
            }
        }
        let mut moves: Vec<TxnMove> = self.txn_moves.clone();

        // Which transactions read each attribute (drop-safety lookups).
        let mut readers: Vec<Vec<TxnId>> = vec![Vec::new(); instance.n_attrs()];
        for t in (0..instance.n_txns()).map(TxnId::from_index) {
            for &a in instance.read_set(t) {
                readers[a.index()].push(t);
            }
        }

        // Installs some pending re-homing is waiting on come first (they
        // unblock free moves, which in turn unblock free drops); ties keep
        // the plan's (site, table, attr) order. Stable sort → deterministic.
        let needed_by_move = |a: AttrId, s: SiteId| {
            self.txn_moves
                .iter()
                .any(|mv| mv.to == s && instance.read_set(mv.txn).contains(&a))
        };
        installs.sort_by_key(|&(a, s, _)| usize::from(!needed_by_move(a, s)));

        let mut state = self.from.clone();
        let mut batches = Vec::new();
        // Bytes currently stored beyond the incumbent layout (installs add,
        // drops reclaim): the transient dual-resident width.
        let mut stored_delta = 0.0_f64;
        let mut peak = 0.0_f64;

        // Applies every currently-safe free op (moves, then drops) until a
        // fixpoint; each application can unblock further frees.
        let drain_free = |state: &mut Partitioning,
                          moves: &mut Vec<TxnMove>,
                          drops: &mut Vec<(AttrId, SiteId)>,
                          ops: &mut Vec<MigrationOp>,
                          stored_delta: &mut f64| loop {
            let mut progressed = false;
            moves.retain(|mv| {
                let safe = instance
                    .read_set(mv.txn)
                    .iter()
                    .all(|&a| state.has_attr(a, mv.to));
                if safe {
                    state.move_txn(mv.txn, mv.to);
                    ops.push(MigrationOp::MoveTxn {
                        txn: mv.txn,
                        from: mv.from,
                        to: mv.to,
                    });
                    progressed = true;
                }
                !safe
            });
            drops.retain(|&(a, s)| {
                let replicated = state.attr_sites(a).any(|site| site != s);
                let safe = replicated && readers[a.index()].iter().all(|&t| state.site_of(t) != s);
                if safe {
                    state.remove_replica(a, s);
                    *stored_delta -= schema.width(a) * rows;
                    ops.push(MigrationOp::Drop { attr: a, site: s });
                    progressed = true;
                }
                !safe
            });
            if !progressed {
                break;
            }
        };

        loop {
            let mut ops = Vec::new();
            let mut install_bytes = 0.0_f64;
            drain_free(
                &mut state,
                &mut moves,
                &mut drops,
                &mut ops,
                &mut stored_delta,
            );
            while let Some(&(a, s, b)) = installs.first() {
                if install_bytes > 0.0 && install_bytes + b > batch_bytes {
                    break;
                }
                installs.remove(0);
                state.add_replica(a, s);
                stored_delta += b;
                install_bytes += b;
                ops.push(MigrationOp::Install {
                    attr: a,
                    site: s,
                    bytes: b,
                });
                drain_free(
                    &mut state,
                    &mut moves,
                    &mut drops,
                    &mut ops,
                    &mut stored_delta,
                );
            }
            if ops.is_empty() {
                if installs.is_empty() && moves.is_empty() && drops.is_empty() {
                    break;
                }
                return Err(ModelError::InconsistentPlan {
                    what: "no safe micro-op available; plan cannot make progress",
                });
            }
            // Every boundary must be servable: a crash here leaves a layout
            // the deployment can keep running on.
            state
                .validate(instance, false)
                .map_err(|_| ModelError::InconsistentPlan {
                    what: "batch boundary is not a valid partitioning",
                })?;
            let transient = stored_delta.max(0.0);
            peak = peak.max(transient);
            batches.push(MigrationBatch {
                ops,
                bytes: install_bytes,
                transient_bytes: transient,
            });
        }

        if state != self.to {
            return Err(ModelError::InconsistentPlan {
                what: "applying all batches does not reach the target partitioning",
            });
        }
        Ok(BatchedMigrationPlan {
            plan: self.clone(),
            batch_bytes,
            batches,
            peak_transient_bytes: peak,
        })
    }
}

/// One atomic micro-op of a batched migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationOp {
    /// Ship one column fraction to a site (`w_a × rows` bytes — the only
    /// op that moves data).
    Install {
        /// The attribute replicated onto the site.
        attr: AttrId,
        /// The receiving site.
        site: SiteId,
        /// Bytes shipped: `w_attr × rows_per_fragment`.
        bytes: f64,
    },
    /// Delete a replica locally (free).
    Drop {
        /// The attribute removed.
        attr: AttrId,
        /// The site it is removed from.
        site: SiteId,
    },
    /// Re-home a transaction (routing change; free).
    MoveTxn {
        /// The transaction.
        txn: TxnId,
        /// Its site before the move.
        from: SiteId,
        /// Its site after the move.
        to: SiteId,
    },
}

// The serde shim's derive does not cover payload enums; encode ops as a
// tagged object by hand.
impl Serialize for MigrationOp {
    fn to_value(&self) -> serde::Value {
        let fields = match *self {
            Self::Install { attr, site, bytes } => vec![
                ("op".to_string(), "install".to_value()),
                ("attr".to_string(), attr.to_value()),
                ("site".to_string(), site.to_value()),
                ("bytes".to_string(), bytes.to_value()),
            ],
            Self::Drop { attr, site } => vec![
                ("op".to_string(), "drop".to_value()),
                ("attr".to_string(), attr.to_value()),
                ("site".to_string(), site.to_value()),
            ],
            Self::MoveTxn { txn, from, to } => vec![
                ("op".to_string(), "move_txn".to_value()),
                ("txn".to_string(), txn.to_value()),
                ("from".to_string(), from.to_value()),
                ("to".to_string(), to.to_value()),
            ],
        };
        serde::Value::Object(fields)
    }
}

impl Deserialize for MigrationOp {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let tag = v.expect_field("op")?.expect_str()?;
        match tag {
            "install" => Ok(Self::Install {
                attr: AttrId::from_value(v.expect_field("attr")?)?,
                site: SiteId::from_value(v.expect_field("site")?)?,
                bytes: f64::from_value(v.expect_field("bytes")?)?,
            }),
            "drop" => Ok(Self::Drop {
                attr: AttrId::from_value(v.expect_field("attr")?)?,
                site: SiteId::from_value(v.expect_field("site")?)?,
            }),
            "move_txn" => Ok(Self::MoveTxn {
                txn: TxnId::from_value(v.expect_field("txn")?)?,
                from: SiteId::from_value(v.expect_field("from")?)?,
                to: SiteId::from_value(v.expect_field("to")?)?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown migration op tag {other:?}"
            ))),
        }
    }
}

/// One rate-limited unit of a [`BatchedMigrationPlan`]. The engine journals
/// and applies batches atomically: a crash can only land *between* batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationBatch {
    /// Micro-ops in application order.
    pub ops: Vec<MigrationOp>,
    /// Bytes shipped by this batch's installs (the metered quantity).
    pub bytes: f64,
    /// Bytes stored beyond the source layout at this batch's end boundary
    /// (dual-resident replicas installed but whose doomed twins are not
    /// yet dropped). Clamped at zero: drop-heavy plans shrink storage.
    pub transient_bytes: f64,
}

impl MigrationBatch {
    /// Applies this batch's ops to a partitioning (forward direction).
    pub fn apply_to(&self, p: &mut Partitioning) {
        for op in &self.ops {
            match *op {
                MigrationOp::Install { attr, site, .. } => p.add_replica(attr, site),
                MigrationOp::Drop { attr, site } => p.remove_replica(attr, site),
                MigrationOp::MoveTxn { txn, to, .. } => p.move_txn(txn, to),
            }
        }
    }

    /// Undoes this batch on a partitioning: inverse ops in reverse order.
    /// Undoing a committed suffix retraces the forward path, so every
    /// boundary reached during a rollback validates too.
    pub fn undo_on(&self, p: &mut Partitioning) {
        for op in self.ops.iter().rev() {
            match *op {
                MigrationOp::Install { attr, site, .. } => p.remove_replica(attr, site),
                MigrationOp::Drop { attr, site } => p.add_replica(attr, site),
                MigrationOp::MoveTxn { txn, from, .. } => p.move_txn(txn, from),
            }
        }
    }

    /// Bytes a journaled undo of this batch re-ships: every dropped
    /// replica must be re-installed (`w_a × rows` each); un-installing and
    /// re-homing are free.
    pub fn undo_bytes(&self, instance: &Instance, rows_per_fragment: usize) -> f64 {
        let rows = rows_per_fragment.max(1) as f64;
        self.ops
            .iter()
            .map(|op| match *op {
                MigrationOp::Drop { attr, .. } => instance.schema().width(attr) * rows,
                _ => 0.0,
            })
            .sum()
    }
}

/// A [`MigrationPlan`] split into crash-safe, rate-limited batches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchedMigrationPlan {
    /// The underlying atomic plan.
    pub plan: MigrationPlan,
    /// The per-batch install-byte budget the split honored.
    pub batch_bytes: f64,
    /// The batches, in application order.
    pub batches: Vec<MigrationBatch>,
    /// Peak `transient_bytes` over all batch boundaries: the worst extra
    /// storage the migration needs beyond the incumbent layout.
    pub peak_transient_bytes: f64,
}

impl BatchedMigrationPlan {
    /// Number of batches.
    pub fn n_batches(&self) -> usize {
        self.batches.len()
    }

    /// Total estimated bytes shipped (identical to the atomic plan's).
    pub fn estimated_bytes(&self) -> f64 {
        self.plan.estimated_bytes()
    }

    /// The partitioning at the boundary after the first `k` batches
    /// (`k = 0` is the source, `k = n_batches()` the target). Every
    /// boundary is a valid partitioning a deployment can serve from.
    ///
    /// # Panics
    /// If `k > n_batches()`.
    pub fn boundary(&self, k: usize) -> Partitioning {
        assert!(k <= self.batches.len(), "boundary index out of range");
        let mut p = self.plan.from.clone();
        for b in &self.batches[..k] {
            b.apply_to(&mut p);
        }
        p
    }

    /// A structural 64-bit fingerprint of the batched plan (splitmix64
    /// fold over both endpoint layouts, the row count, the budget and
    /// every micro-op). The engine's write-ahead journal records it so a
    /// recovery refuses to replay a journal against the wrong plan. No
    /// wall clock, no OS entropy: equal plans fingerprint equally across
    /// processes and platforms.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0x9E37_79B9_7F4A_7C15_u64;
        let mut put = |v: u64| h = fp_mix(h, v);
        for p in [&self.plan.from, &self.plan.to] {
            put(p.n_sites() as u64);
            for t in (0..p.n_txns()).map(TxnId::from_index) {
                put(p.site_of(t).index() as u64);
            }
            for a in (0..p.n_attrs()).map(AttrId::from_index) {
                let mut bits = 0_u64;
                for s in p.attr_sites(a) {
                    bits = fp_mix(bits, s.index() as u64);
                }
                put(bits);
            }
        }
        put(self.plan.rows_per_fragment as u64);
        put(self.batch_bytes.to_bits());
        put(self.batches.len() as u64);
        for b in &self.batches {
            for op in &b.ops {
                match *op {
                    MigrationOp::Install { attr, site, bytes } => {
                        put(1);
                        put(attr.index() as u64);
                        put(site.index() as u64);
                        put(bytes.to_bits());
                    }
                    MigrationOp::Drop { attr, site } => {
                        put(2);
                        put(attr.index() as u64);
                        put(site.index() as u64);
                    }
                    MigrationOp::MoveTxn { txn, from, to } => {
                        put(3);
                        put(txn.index() as u64);
                        put(from.index() as u64);
                        put(to.index() as u64);
                    }
                }
            }
        }
        h
    }
}

/// One splitmix64-style fold step: mixes `v` into running hash `h`.
fn fp_mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::workload::{QuerySpec, Workload};

    /// R{a, b}, S{c}: T0 reads a+b, T1 reads c.
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        sb.table("S", &[("c", 2.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("mig", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn identical_layouts_produce_an_empty_plan() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 2).unwrap();
        let plan = MigrationPlan::between(&ins, &p, &p, 16).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.estimated_bytes(), 0.0);
        assert_eq!(plan.installs() + plan.drops(), 0);
    }

    #[test]
    fn install_drop_and_txn_moves_are_collected() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        // Move T1 (reads c) to site 1: c installs on site 1; then drop the
        // now-unread c replica on site 0.
        let to = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = MigrationPlan::between(&ins, &from, &to, 10).unwrap();
        assert_eq!(plan.txn_moves.len(), 1);
        assert_eq!(plan.txn_moves[0].txn, TxnId(1));
        assert_eq!(plan.txn_moves[0].to, SiteId(1));
        // c: dropped from site 0, installed on site 1 → 2 bytes × 10 rows.
        assert_eq!(plan.installs(), 1);
        assert_eq!(plan.drops(), 1);
        assert_eq!(plan.estimated_bytes(), 20.0);
        let install = plan
            .changes
            .iter()
            .find(|c| !c.installed.is_empty())
            .unwrap();
        assert_eq!(install.site, SiteId(1));
        assert_eq!(install.table, TableId(1));
        assert_eq!(install.installed, vec![AttrId(2)]);
    }

    #[test]
    fn mismatched_site_counts_are_rejected() {
        let ins = instance();
        let a = Partitioning::single_site(&ins, 2).unwrap();
        let b = Partitioning::single_site(&ins, 3).unwrap();
        assert!(matches!(
            MigrationPlan::between(&ins, &a, &b, 4),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        let to = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = MigrationPlan::between(&ins, &from, &to, 8).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: MigrationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    fn shop_plan(rows: usize) -> (Instance, MigrationPlan) {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        let to = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = MigrationPlan::between(&ins, &from, &to, rows).unwrap();
        (ins, plan)
    }

    #[test]
    fn unlimited_budget_yields_a_single_batch_reaching_the_target() {
        let (ins, plan) = shop_plan(10);
        let b = plan.batched(&ins, f64::INFINITY).unwrap();
        assert_eq!(b.n_batches(), 1);
        assert_eq!(b.boundary(0), plan.from);
        assert_eq!(b.boundary(1), plan.to);
        let total: f64 = b.batches.iter().map(|x| x.bytes).sum();
        assert_eq!(total, plan.estimated_bytes());
    }

    #[test]
    fn every_boundary_validates_and_budget_is_honored() {
        let (ins, plan) = shop_plan(10);
        // Budget smaller than any single install: one install per batch.
        let b = plan.batched(&ins, 1.0).unwrap();
        assert!(b.n_batches() >= 1);
        for k in 0..=b.n_batches() {
            b.boundary(k).validate(&ins, false).unwrap();
        }
        for batch in &b.batches {
            let installs = batch
                .ops
                .iter()
                .filter(|o| matches!(o, MigrationOp::Install { .. }))
                .count();
            assert!(installs <= 1, "tiny budget must isolate installs");
        }
        assert_eq!(b.boundary(b.n_batches()), plan.to);
        let total: f64 = b.batches.iter().map(|x| x.bytes).sum();
        assert_eq!(total, plan.estimated_bytes());
    }

    #[test]
    fn eager_drops_bound_the_transient_width() {
        let (ins, plan) = shop_plan(10);
        let b = plan.batched(&ins, f64::INFINITY).unwrap();
        // c (2 bytes × 10 rows) installs on site 1; the doomed site-0
        // replica drops inside the same batch once T1 re-homes, so the
        // boundary carries no dual-resident bytes.
        assert_eq!(b.peak_transient_bytes, 0.0);
        assert_eq!(b.batches.last().unwrap().transient_bytes, 0.0);
    }

    #[test]
    fn undo_retraces_the_forward_path() {
        let (ins, plan) = shop_plan(10);
        let b = plan.batched(&ins, 1.0).unwrap();
        let mut p = plan.to.clone();
        for batch in b.batches.iter().rev() {
            batch.undo_on(&mut p);
            p.validate(&ins, false).unwrap();
        }
        assert_eq!(p, plan.from);
        // Undoing re-installs every dropped replica: c on site 0.
        let undo_total: f64 = b
            .batches
            .iter()
            .map(|x| x.undo_bytes(&ins, plan.rows_per_fragment))
            .sum();
        assert_eq!(undo_total, 20.0);
    }

    #[test]
    fn invalid_budgets_are_rejected() {
        let (ins, plan) = shop_plan(10);
        for bad in [0.0, -1.0, f64::NAN] {
            assert!(matches!(
                plan.batched(&ins, bad),
                Err(ModelError::InvalidBatchBytes { .. })
            ));
        }
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let (ins, plan) = shop_plan(10);
        let a = plan.batched(&ins, f64::INFINITY).unwrap();
        let b = plan.batched(&ins, f64::INFINITY).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = plan.batched(&ins, 1.0).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let (ins2, plan2) = shop_plan(11);
        let d = plan2.batched(&ins2, f64::INFINITY).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn batched_serde_round_trip() {
        let (ins, plan) = shop_plan(10);
        let b = plan.batched(&ins, 64.0).unwrap();
        let json = serde_json::to_string(&b).unwrap();
        let back: BatchedMigrationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
        assert_eq!(b.fingerprint(), back.fingerprint());
    }
}
