//! Migration plans: the physical delta between two partitionings.
//!
//! When a workload drifts and a new [`Partitioning`] replaces the incumbent,
//! the cluster has to *move data*: every attribute newly placed on a site
//! must be shipped there (one column fraction, `w_a` bytes per row), every
//! replica no longer present can be dropped locally (free), and every
//! transaction whose home site changed is re-routed (free — routing tables,
//! not data). [`MigrationPlan::between`] computes that delta as per-site,
//! per-table [`FragmentChange`]s with byte estimates; the execution engine
//! (`vpart_engine::Deployment::apply_migration`) physically applies a plan
//! and meters the bytes it actually moved with the *same* accounting, so
//! plan estimates and engine measurements must agree exactly.
//!
//! Plans are deliberately *label-sensitive*: `between` diffs the two
//! partitionings as given. Site labels are interchangeable to the solvers,
//! so callers should first relabel the new partitioning to maximize overlap
//! with the old one (see `vpart_online::migrate::canonicalize_against`) —
//! a renumbered-but-identical layout then produces an empty plan.

use crate::error::ModelError;
use crate::ids::{AttrId, SiteId, TableId, TxnId};
use crate::instance::Instance;
use crate::partition::Partitioning;
use serde::{Deserialize, Serialize};

/// One site/table fragment delta: attributes to install and to drop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentChange {
    /// The site whose fragment changes.
    pub site: SiteId,
    /// The table whose fraction changes on that site.
    pub table: TableId,
    /// Attributes newly placed on the site (data must be shipped in),
    /// in ascending id order.
    pub installed: Vec<AttrId>,
    /// Attributes removed from the site (local delete, free), ascending.
    pub dropped: Vec<AttrId>,
    /// Estimated bytes shipped to the site for the installs:
    /// `(Σ_{a ∈ installed} w_a) × rows`.
    pub bytes: f64,
}

/// One transaction re-homing (routing change; moves no data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnMove {
    /// The transaction.
    pub txn: TxnId,
    /// Its site under the old partitioning.
    pub from: SiteId,
    /// Its site under the new partitioning.
    pub to: SiteId,
}

/// The full old → new delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The incumbent layout the plan starts from.
    pub from: Partitioning,
    /// The target layout the plan produces.
    pub to: Partitioning,
    /// Fragment deltas, ordered by `(site, table)`.
    pub changes: Vec<FragmentChange>,
    /// Transaction re-homings, ordered by transaction id.
    pub txn_moves: Vec<TxnMove>,
    /// The uniform per-fragment row count the byte estimates assume (the
    /// same parameter `vpart_engine::Deployment::new` materializes).
    pub rows_per_fragment: usize,
}

impl MigrationPlan {
    /// Diffs `from` → `to` over `instance`. Both partitionings must share
    /// the instance's shape and site count and validate against it.
    /// `rows_per_fragment` is clamped to at least 1, exactly as the
    /// engine's `Deployment::new` clamps it, so estimates and the
    /// migration meter agree even at the degenerate value 0.
    pub fn between(
        instance: &Instance,
        from: &Partitioning,
        to: &Partitioning,
        rows_per_fragment: usize,
    ) -> Result<Self, ModelError> {
        if from.n_sites() != to.n_sites() {
            return Err(ModelError::DimensionMismatch {
                what: "migration target sites",
                expected: from.n_sites(),
                got: to.n_sites(),
            });
        }
        from.validate(instance, false)?;
        to.validate(instance, false)?;

        let schema = instance.schema();
        let rows_per_fragment = rows_per_fragment.max(1);
        let rows = rows_per_fragment as f64;
        let mut changes = Vec::new();
        for s in 0..from.n_sites() {
            let site = SiteId::from_index(s);
            for t in 0..instance.n_tables() {
                let table = TableId::from_index(t);
                let mut installed = Vec::new();
                let mut dropped = Vec::new();
                for a in schema.table_attrs(table).map(AttrId::from_index) {
                    match (from.has_attr(a, site), to.has_attr(a, site)) {
                        (false, true) => installed.push(a),
                        (true, false) => dropped.push(a),
                        _ => {}
                    }
                }
                if installed.is_empty() && dropped.is_empty() {
                    continue;
                }
                // The exact expression the engine meter re-evaluates:
                // summed width first, scaled by rows once.
                let bytes = installed.iter().map(|&a| schema.width(a)).sum::<f64>() * rows;
                changes.push(FragmentChange {
                    site,
                    table,
                    installed,
                    dropped,
                    bytes,
                });
            }
        }

        let txn_moves = (0..instance.n_txns())
            .map(TxnId::from_index)
            .filter(|&t| from.site_of(t) != to.site_of(t))
            .map(|t| TxnMove {
                txn: t,
                from: from.site_of(t),
                to: to.site_of(t),
            })
            .collect();

        Ok(Self {
            from: from.clone(),
            to: to.clone(),
            changes,
            txn_moves,
            rows_per_fragment,
        })
    }

    /// Total estimated bytes shipped between sites.
    pub fn estimated_bytes(&self) -> f64 {
        self.changes.iter().map(|c| c.bytes).sum()
    }

    /// Number of attribute installs across all fragment changes.
    pub fn installs(&self) -> usize {
        self.changes.iter().map(|c| c.installed.len()).sum()
    }

    /// Number of attribute drops across all fragment changes.
    pub fn drops(&self) -> usize {
        self.changes.iter().map(|c| c.dropped.len()).sum()
    }

    /// True when the plan changes nothing — the drifted re-solve landed on
    /// the incumbent layout (possibly after relabeling).
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty() && self.txn_moves.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::workload::{QuerySpec, Workload};

    /// R{a, b}, S{c}: T0 reads a+b, T1 reads c.
    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("R", &[("a", 4.0), ("b", 8.0)]).unwrap();
        sb.table("S", &[("c", 2.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(QuerySpec::read("q0").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        let q1 = wb
            .add_query(QuerySpec::read("q1").access(&[AttrId(2)]))
            .unwrap();
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("mig", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn identical_layouts_produce_an_empty_plan() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 2).unwrap();
        let plan = MigrationPlan::between(&ins, &p, &p, 16).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.estimated_bytes(), 0.0);
        assert_eq!(plan.installs() + plan.drops(), 0);
    }

    #[test]
    fn install_drop_and_txn_moves_are_collected() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        // Move T1 (reads c) to site 1: c installs on site 1; then drop the
        // now-unread c replica on site 0.
        let to = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = MigrationPlan::between(&ins, &from, &to, 10).unwrap();
        assert_eq!(plan.txn_moves.len(), 1);
        assert_eq!(plan.txn_moves[0].txn, TxnId(1));
        assert_eq!(plan.txn_moves[0].to, SiteId(1));
        // c: dropped from site 0, installed on site 1 → 2 bytes × 10 rows.
        assert_eq!(plan.installs(), 1);
        assert_eq!(plan.drops(), 1);
        assert_eq!(plan.estimated_bytes(), 20.0);
        let install = plan
            .changes
            .iter()
            .find(|c| !c.installed.is_empty())
            .unwrap();
        assert_eq!(install.site, SiteId(1));
        assert_eq!(install.table, TableId(1));
        assert_eq!(install.installed, vec![AttrId(2)]);
    }

    #[test]
    fn mismatched_site_counts_are_rejected() {
        let ins = instance();
        let a = Partitioning::single_site(&ins, 2).unwrap();
        let b = Partitioning::single_site(&ins, 3).unwrap();
        assert!(matches!(
            MigrationPlan::between(&ins, &a, &b, 4),
            Err(ModelError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn serde_round_trip() {
        let ins = instance();
        let from = Partitioning::single_site(&ins, 2).unwrap();
        let to = Partitioning::minimal_for_x(&ins, vec![SiteId(0), SiteId(1)], 2).unwrap();
        let plan = MigrationPlan::between(&ins, &from, &to, 8).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: MigrationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
