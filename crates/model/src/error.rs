//! Error type shared by model construction and validation.

use crate::ids::{AttrId, QueryId, SiteId, TableId, TxnId};
use std::fmt;

/// Errors raised while building or validating schemas, workloads,
/// instances and partitionings.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A table, attribute, query or transaction name was registered twice.
    DuplicateName(String),
    /// An entity name was empty.
    EmptyName,
    /// An attribute was declared with a non-positive average width.
    InvalidWidth { attr: String, width: f64 },
    /// A query frequency was not strictly positive and finite.
    InvalidFrequency { query: String, frequency: f64 },
    /// A per-table row count `n_{a,q}` was not strictly positive and finite.
    InvalidRowCount {
        query: String,
        table: TableId,
        rows: f64,
    },
    /// A table was declared without attributes.
    EmptyTable(String),
    /// A referenced table id does not exist in the schema.
    UnknownTable(TableId),
    /// A referenced attribute id does not exist in the schema.
    UnknownAttr(AttrId),
    /// A referenced query id does not exist in the workload.
    UnknownQuery(QueryId),
    /// A query accesses no attributes.
    EmptyQuery(String),
    /// A query references a table without declaring its row count, or vice
    /// versa.
    RowCountMismatch { query: String, table: TableId },
    /// A query was assigned to more than one transaction (γ must be a
    /// partition of queries).
    QueryReused {
        query: QueryId,
        first: TxnId,
        second: TxnId,
    },
    /// A query is not assigned to any transaction.
    OrphanQuery(QueryId),
    /// A transaction holds no queries.
    EmptyTransaction(String),
    /// The workload holds no transactions.
    EmptyWorkload,
    /// The schema holds no tables.
    EmptySchema,
    /// Partitioning refers to a site outside `0..n_sites`.
    SiteOutOfRange { site: SiteId, n_sites: usize },
    /// Partitioning shape does not match the instance dimensions.
    DimensionMismatch {
        what: &'static str,
        expected: usize,
        got: usize,
    },
    /// An attribute is not placed on any site (violates `Σ_s y[a][s] ≥ 1`).
    UnplacedAttr(AttrId),
    /// A read query's attribute is missing from the executing site of its
    /// transaction (violates single-sitedness `y[a][s] ≥ x[t][s]·φ[a][t]`).
    SingleSitednessViolated {
        txn: TxnId,
        attr: AttrId,
        site: SiteId,
    },
    /// A partitioning was required to be disjoint but replicates an attribute.
    ReplicationForbidden { attr: AttrId },
    /// Number of sites must be at least one.
    NoSites,
    /// A migration batch byte budget was not strictly positive (NaN, zero
    /// or negative). `f64::INFINITY` is allowed and means "one batch".
    InvalidBatchBytes { bytes: f64 },
    /// A migration plan failed an internal consistency check while being
    /// split into batches (e.g. its changes do not take `from` to `to`).
    InconsistentPlan { what: &'static str },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateName(n) => write!(f, "duplicate name: {n:?}"),
            Self::EmptyName => write!(f, "entity names must be non-empty"),
            Self::InvalidWidth { attr, width } => {
                write!(f, "attribute {attr:?} has invalid width {width}")
            }
            Self::InvalidFrequency { query, frequency } => {
                write!(f, "query {query:?} has invalid frequency {frequency}")
            }
            Self::InvalidRowCount { query, table, rows } => {
                write!(
                    f,
                    "query {query:?} has invalid row count {rows} for table {table}"
                )
            }
            Self::EmptyTable(n) => write!(f, "table {n:?} has no attributes"),
            Self::UnknownTable(t) => write!(f, "unknown table {t}"),
            Self::UnknownAttr(a) => write!(f, "unknown attribute {a}"),
            Self::UnknownQuery(q) => write!(f, "unknown query {q}"),
            Self::EmptyQuery(n) => write!(f, "query {n:?} accesses no attributes"),
            Self::RowCountMismatch { query, table } => write!(
                f,
                "query {query:?} touches table {table} without a matching row-count declaration"
            ),
            Self::QueryReused {
                query,
                first,
                second,
            } => write!(
                f,
                "query {query} assigned to both transaction {first} and {second}; \
                 γ must partition queries"
            ),
            Self::OrphanQuery(q) => write!(f, "query {q} not assigned to any transaction"),
            Self::EmptyTransaction(n) => write!(f, "transaction {n:?} holds no queries"),
            Self::EmptyWorkload => write!(f, "workload holds no transactions"),
            Self::EmptySchema => write!(f, "schema holds no tables"),
            Self::SiteOutOfRange { site, n_sites } => {
                write!(f, "site {site} out of range (have {n_sites} sites)")
            }
            Self::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "partitioning {what} dimension mismatch: expected {expected}, got {got}"
                )
            }
            Self::UnplacedAttr(a) => write!(f, "attribute {a} is not placed on any site"),
            Self::SingleSitednessViolated { txn, attr, site } => write!(
                f,
                "single-sitedness violated: transaction {txn} on site {site} reads \
                 attribute {attr} which is absent there"
            ),
            Self::ReplicationForbidden { attr } => {
                write!(
                    f,
                    "attribute {attr} is replicated but disjointness was required"
                )
            }
            Self::NoSites => write!(f, "at least one site is required"),
            Self::InvalidBatchBytes { bytes } => {
                write!(
                    f,
                    "migration batch byte budget must be positive, got {bytes}"
                )
            }
            Self::InconsistentPlan { what } => {
                write!(f, "inconsistent migration plan: {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::SingleSitednessViolated {
            txn: TxnId(1),
            attr: AttrId(4),
            site: SiteId(0),
        };
        let msg = e.to_string();
        assert!(msg.contains("t1") && msg.contains("a4") && msg.contains("s0"));
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::EmptyWorkload);
        assert!(e.to_string().contains("workload"));
    }
}
