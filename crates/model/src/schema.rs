//! Relational schema: tables and attributes with average widths.
//!
//! The cost model only needs names (for reporting), the table→attribute
//! containment relation and the average byte width `w_a` of each attribute,
//! so that is all a [`Schema`] stores. Attribute ids are global and
//! contiguous per table, which lets the rest of the system represent
//! "attributes of table r" as a simple index range.

use crate::error::ModelError;
use crate::ids::{AttrId, TableId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::ops::Range;

/// A single attribute (column) of a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within its table.
    pub name: String,
    /// Average width `w_a` in bytes.
    pub width: f64,
    /// Owning table.
    pub table: TableId,
}

/// A table: a named, contiguous range of attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name, unique within the schema.
    pub name: String,
    /// Global ids of this table's attributes (`first..last`, contiguous).
    pub first_attr: AttrId,
    /// One past the last attribute id of this table.
    pub attr_end: AttrId,
}

impl Table {
    /// The global attribute id range of this table.
    pub fn attrs(&self) -> Range<usize> {
        self.first_attr.index()..self.attr_end.index()
    }

    /// Number of attributes in this table.
    pub fn n_attrs(&self) -> usize {
        self.attr_end.index() - self.first_attr.index()
    }
}

/// A validated relational schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    tables: Vec<Table>,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// All tables in declaration order.
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// All attributes in global id order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Number of attributes across all tables (the paper's `|A|`).
    pub fn n_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Table metadata by id.
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.index()]
    }

    /// Attribute metadata by global id.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// The table owning attribute `a`.
    pub fn table_of(&self, a: AttrId) -> TableId {
        self.attrs[a.index()].table
    }

    /// Width `w_a` of attribute `a` in bytes.
    pub fn width(&self, a: AttrId) -> f64 {
        self.attrs[a.index()].width
    }

    /// Global attribute id range of table `t`.
    pub fn table_attrs(&self, t: TableId) -> Range<usize> {
        self.tables[t.index()].attrs()
    }

    /// Sum of attribute widths of table `t` (the full row width).
    pub fn row_width(&self, t: TableId) -> f64 {
        self.table_attrs(t).map(|a| self.attrs[a].width).sum()
    }

    /// Looks up a table id by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .map(TableId::from_index)
    }

    /// Looks up an attribute by `"Table.Attr"` qualified name.
    pub fn attr_by_name(&self, table: &str, attr: &str) -> Option<AttrId> {
        let t = self.table_by_name(table)?;
        self.table_attrs(t)
            .find(|&a| self.attrs[a].name == attr)
            .map(AttrId::from_index)
    }

    /// `"Table.Attr"` display name for reporting.
    pub fn qualified_name(&self, a: AttrId) -> String {
        let attr = self.attr(a);
        format!("{}.{}", self.tables[attr.table.index()].name, attr.name)
    }
}

/// Incremental [`Schema`] construction with validation.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    tables: Vec<Table>,
    attrs: Vec<Attribute>,
    table_names: HashMap<String, TableId>,
}

impl SchemaBuilder {
    /// Adds a table with `(attribute name, average width in bytes)` columns.
    ///
    /// Returns the new table id; attribute ids are assigned contiguously in
    /// the given order and can be recovered via [`Schema::table_attrs`].
    pub fn table<S: Into<String>>(
        &mut self,
        name: S,
        columns: &[(&str, f64)],
    ) -> Result<TableId, ModelError> {
        let name = name.into();
        if name.is_empty() {
            return Err(ModelError::EmptyName);
        }
        if self.table_names.contains_key(&name) {
            return Err(ModelError::DuplicateName(name));
        }
        if columns.is_empty() {
            return Err(ModelError::EmptyTable(name));
        }
        let id = TableId::from_index(self.tables.len());
        let first_attr = AttrId::from_index(self.attrs.len());
        let mut seen = HashMap::new();
        for &(cname, width) in columns {
            if cname.is_empty() {
                return Err(ModelError::EmptyName);
            }
            if seen.insert(cname, ()).is_some() {
                return Err(ModelError::DuplicateName(format!("{name}.{cname}")));
            }
            if !(width > 0.0) || !width.is_finite() {
                return Err(ModelError::InvalidWidth {
                    attr: format!("{name}.{cname}"),
                    width,
                });
            }
            self.attrs.push(Attribute {
                name: cname.to_owned(),
                width,
                table: id,
            });
        }
        let attr_end = AttrId::from_index(self.attrs.len());
        self.table_names.insert(name.clone(), id);
        self.tables.push(Table {
            name,
            first_attr,
            attr_end,
        });
        Ok(id)
    }

    /// Finishes the schema.
    pub fn build(self) -> Result<Schema, ModelError> {
        if self.tables.is_empty() {
            return Err(ModelError::EmptySchema);
        }
        Ok(Schema {
            tables: self.tables,
            attrs: self.attrs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_table_schema() -> Schema {
        let mut b = Schema::builder();
        b.table("Customer", &[("id", 4.0), ("name", 16.0), ("balance", 8.0)])
            .unwrap();
        b.table("Order", &[("id", 4.0), ("cust_id", 4.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn attr_ids_are_contiguous_per_table() {
        let s = two_table_schema();
        assert_eq!(s.n_tables(), 2);
        assert_eq!(s.n_attrs(), 5);
        assert_eq!(s.table_attrs(TableId(0)), 0..3);
        assert_eq!(s.table_attrs(TableId(1)), 3..5);
        assert_eq!(s.table_of(AttrId(4)), TableId(1));
    }

    #[test]
    fn row_width_sums_columns() {
        let s = two_table_schema();
        assert_eq!(s.row_width(TableId(0)), 28.0);
        assert_eq!(s.row_width(TableId(1)), 8.0);
    }

    #[test]
    fn name_lookup() {
        let s = two_table_schema();
        assert_eq!(s.table_by_name("Order"), Some(TableId(1)));
        assert_eq!(s.attr_by_name("Customer", "balance"), Some(AttrId(2)));
        assert_eq!(s.attr_by_name("Customer", "missing"), None);
        assert_eq!(s.qualified_name(AttrId(3)), "Order.id");
    }

    #[test]
    fn rejects_duplicate_table() {
        let mut b = Schema::builder();
        b.table("T", &[("a", 1.0)]).unwrap();
        assert_eq!(
            b.table("T", &[("a", 1.0)]).unwrap_err(),
            ModelError::DuplicateName("T".into())
        );
    }

    #[test]
    fn rejects_duplicate_column() {
        let mut b = Schema::builder();
        let err = b.table("T", &[("a", 1.0), ("a", 2.0)]).unwrap_err();
        assert_eq!(err, ModelError::DuplicateName("T.a".into()));
    }

    #[test]
    fn rejects_bad_width() {
        let mut b = Schema::builder();
        assert!(matches!(
            b.table("T", &[("a", 0.0)]),
            Err(ModelError::InvalidWidth { .. })
        ));
        assert!(matches!(
            b.table("T", &[("a", f64::NAN)]),
            Err(ModelError::InvalidWidth { .. })
        ));
        assert!(matches!(
            b.table("T", &[("a", -3.0)]),
            Err(ModelError::InvalidWidth { .. })
        ));
    }

    #[test]
    fn rejects_empty_schema_and_table() {
        assert_eq!(
            Schema::builder().build().unwrap_err(),
            ModelError::EmptySchema
        );
        let mut b = Schema::builder();
        assert_eq!(
            b.table("T", &[]).unwrap_err(),
            ModelError::EmptyTable("T".into())
        );
    }

    #[test]
    fn serde_round_trip() {
        let s = two_table_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
