//! Typed indices for tables, attributes, queries, transactions and sites.
//!
//! All entities are identified by dense `u32` indices assigned in insertion
//! order. Newtypes prevent accidentally indexing the wrong collection (e.g.
//! using a query id where a transaction id is expected), which matters in a
//! codebase that juggles five parallel index spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index as a `usize`, for direct slice indexing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Constructs an id from a dense `usize` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a table within a [`crate::Schema`].
    TableId,
    "r"
);
define_id!(
    /// Identifies an attribute (column) globally across the schema.
    ///
    /// Attribute ids are contiguous per table: all attributes of table 0
    /// come first, then table 1, and so on. [`crate::Schema::table_attrs`]
    /// exposes the range.
    AttrId,
    "a"
);
define_id!(
    /// Identifies a query within a [`crate::Workload`].
    QueryId,
    "q"
);
define_id!(
    /// Identifies a transaction within a [`crate::Workload`].
    TxnId,
    "t"
);
define_id!(
    /// Identifies a physical or logical site (partition host).
    SiteId,
    "s"
);

/// Iterator over the first `n` ids of a given type.
pub fn iter_ids<I: Copy>(n: usize, make: fn(usize) -> I) -> impl Iterator<Item = I> {
    (0..n).map(make)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(TableId(3).to_string(), "r3");
        assert_eq!(AttrId(0).to_string(), "a0");
        assert_eq!(QueryId(7).to_string(), "q7");
        assert_eq!(TxnId(2).to_string(), "t2");
        assert_eq!(SiteId(1).to_string(), "s1");
    }

    #[test]
    fn index_round_trip() {
        let a = AttrId::from_index(42);
        assert_eq!(a.index(), 42);
        assert_eq!(usize::from(a), 42);
    }

    #[test]
    fn ordering_follows_dense_index() {
        assert!(SiteId(0) < SiteId(1));
        assert!(TxnId(9) > TxnId(3));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_rejects_overflow() {
        let _ = AttrId::from_index(usize::MAX);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&AttrId(5)).unwrap();
        assert_eq!(json, "5");
        let back: AttrId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, AttrId(5));
    }
}
