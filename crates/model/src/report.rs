//! Human-readable rendering of partitionings (the paper's Table 4 format).

use crate::ids::SiteId;
use crate::instance::Instance;
use crate::partition::Partitioning;
use std::fmt::Write as _;

/// Renders a partitioning in the style of the paper's Table 4: one section
/// per site, listing the transactions executed there followed by the
/// attributes placed there (qualified `Table.ATTR` names, sorted).
pub fn render_partitioning(instance: &Instance, p: &Partitioning) -> String {
    let mut out = String::new();
    for s in 0..p.n_sites() {
        let site = SiteId::from_index(s);
        let _ = writeln!(out, "Site {}", s + 1);
        for t in p.txns_on_site(site) {
            let _ = writeln!(out, "  Transaction {}", instance.workload().txn(t).name);
        }
        let mut names: Vec<String> = p
            .attrs_on_site(site)
            .map(|a| instance.schema().qualified_name(a))
            .collect();
        names.sort();
        for n in &names {
            let _ = writeln!(out, "  {n}");
        }
        if s + 1 < p.n_sites() {
            out.push('\n');
        }
    }
    out
}

/// Renders a one-line-per-site summary: transaction count, attribute count,
/// and replication statistics. Useful for bench tables.
pub fn render_summary(instance: &Instance, p: &Partitioning) -> String {
    let mut out = String::new();
    let replicated = (0..instance.n_attrs())
        .filter(|&a| p.replication(crate::AttrId::from_index(a)) > 1)
        .count();
    let _ = writeln!(
        out,
        "{} sites, {} placements, {} replicated attributes",
        p.n_sites(),
        p.total_placements(),
        replicated
    );
    for s in 0..p.n_sites() {
        let site = SiteId::from_index(s);
        let txns: Vec<&str> = p
            .txns_on_site(site)
            .map(|t| instance.workload().txn(t).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "  site {}: {} txns [{}], {} attrs",
            s + 1,
            txns.len(),
            txns.join(", "),
            p.attrs_on_site(site).count()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::AttrId;
    use crate::schema::Schema;
    use crate::workload::{QuerySpec, Workload};

    fn instance() -> Instance {
        let mut sb = Schema::builder();
        sb.table("Customer", &[("C_ID", 4.0), ("C_BAL", 8.0)])
            .unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q = wb
            .add_query(QuerySpec::read("q").access(&[AttrId(0), AttrId(1)]))
            .unwrap();
        wb.transaction("Payment", &[q]).unwrap();
        Instance::new("t", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn table4_style_rendering() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 2).unwrap();
        let text = render_partitioning(&ins, &p);
        assert!(text.contains("Site 1"));
        assert!(text.contains("Transaction Payment"));
        assert!(text.contains("Customer.C_BAL"));
        assert!(text.contains("Site 2"));
        // Site 2 is empty: no transactions, no attributes after its header.
        let site2 = text.split("Site 2").nth(1).unwrap();
        assert!(!site2.contains("Customer."));
    }

    #[test]
    fn summary_counts() {
        let ins = instance();
        let p = Partitioning::single_site(&ins, 1).unwrap();
        let text = render_summary(&ins, &p);
        assert!(text.contains("1 sites, 2 placements, 0 replicated"));
        assert!(text.contains("site 1: 1 txns [Payment], 2 attrs"));
    }
}
