//! Problem model for vertical partitioning of relational OLTP databases.
//!
//! This crate defines the *input* side of the partitioning problem studied in
//! Amossen, *"Vertical partitioning of relational OLTP databases using integer
//! programming"* (ICDE Workshops 2010):
//!
//! * [`Schema`] — tables and attributes with average widths `w_a`,
//! * [`Workload`] — queries (read/write, frequency `f_q`, per-table row
//!   counts `n_{a,q}`, accessed attribute sets) grouped into transactions,
//! * [`Instance`] — a validated schema + workload pair with the derived
//!   constants of the paper's §2.1 (`α`, `β`, `γ`, `δ`, `φ` and the weight
//!   matrix `W_{a,q}`) precomputed in sparse form,
//!
//! and the *output* side:
//!
//! * [`Partitioning`] — an assignment of transactions to sites (`x`) and a
//!   possibly replicated assignment of attributes to sites (`y`), with
//!   validation of the model constraints (every transaction exactly one
//!   site, every attribute at least one site, single-sitedness of reads),
//! * [`MigrationPlan`] — the physical delta between two partitionings
//!   (per-site fragment installs/drops with byte estimates), the currency
//!   of the online repartitioning loop.
//!
//! The cost model and solvers live in the `vpart-core` crate; instance
//! generators (TPC-C, random classes) live in `vpart-instances`.

// `!(x > 0.0)` comparisons are deliberate NaN-rejecting validations.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod bitset;
pub mod error;
pub mod ids;
pub mod instance;
pub mod migration;
pub mod partition;
pub mod report;
pub mod schema;
pub mod workload;

pub use bitset::{BitMatrix, BitSet};
pub use error::ModelError;
pub use ids::{AttrId, QueryId, SiteId, TableId, TxnId};
pub use instance::{DerivedStats, Instance};
pub use migration::{
    BatchedMigrationPlan, FragmentChange, MigrationBatch, MigrationOp, MigrationPlan, TxnMove,
};
pub use partition::Partitioning;
pub use schema::{Attribute, Schema, SchemaBuilder, Table};
pub use workload::{Query, QueryKind, Transaction, Workload, WorkloadBuilder};
