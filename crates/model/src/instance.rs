//! A validated problem instance with the paper's derived constants.
//!
//! [`Instance`] couples a [`Schema`] and a [`Workload`] and precomputes the
//! five static binary constants of §2.1 in bit-matrix form plus the weight
//! `W_{a,q} = w_a · f_q · n_{a,q}`:
//!
//! * `α[a][q]` — query `q` accesses attribute `a` itself,
//! * `β[a][q]` — `a` belongs to a table that `q` accesses,
//! * `γ[q][t]` — query `q` is used in transaction `t` (stored as the inverse
//!   map, since γ partitions queries),
//! * `δ[q]`    — `q` is a write query,
//! * `φ[a][t]` — some query in `t` *reads* `a` (drives single-sitedness).

use crate::bitset::BitMatrix;
use crate::error::ModelError;
use crate::ids::{AttrId, QueryId, TableId, TxnId};
use crate::schema::Schema;
use crate::workload::{QueryKind, Workload};
use serde::{Deserialize, Serialize};

/// Precomputed incidence matrices (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedStats {
    /// `α`: query × attribute access incidence.
    pub alpha: BitMatrix,
    /// `φ`: transaction × attribute read incidence.
    pub phi: BitMatrix,
    /// query × table touch incidence (β support: `β[a][q]` ⇔ the owning
    /// table of `a` is touched by `q`).
    pub query_tables: BitMatrix,
    /// transaction × table touch incidence (union over the txn's queries).
    pub txn_tables: BitMatrix,
    /// `φ` as per-transaction sorted attribute lists (for iteration).
    pub phi_lists: Vec<Vec<AttrId>>,
}

/// A validated `(schema, workload)` pair with derived statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "InstanceData", into = "InstanceData")]
pub struct Instance {
    name: String,
    schema: Schema,
    workload: Workload,
    derived: DerivedStats,
}

/// Serialized form of an [`Instance`] (derived stats are recomputed on load).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceData {
    /// Instance name.
    pub name: String,
    /// The schema.
    pub schema: Schema,
    /// The workload.
    pub workload: Workload,
}

impl TryFrom<InstanceData> for Instance {
    type Error = ModelError;
    fn try_from(d: InstanceData) -> Result<Self, Self::Error> {
        Instance::new(d.name, d.schema, d.workload)
    }
}

impl From<Instance> for InstanceData {
    fn from(i: Instance) -> Self {
        InstanceData {
            name: i.name,
            schema: i.schema,
            workload: i.workload,
        }
    }
}

impl Instance {
    /// Validates cross-references and derives `α`, `φ` and the table-touch
    /// matrices.
    pub fn new<S: Into<String>>(
        name: S,
        schema: Schema,
        workload: Workload,
    ) -> Result<Self, ModelError> {
        let n_attrs = schema.n_attrs();
        let n_tables = schema.n_tables();
        let n_queries = workload.n_queries();
        let n_txns = workload.n_txns();

        let mut alpha = BitMatrix::new(n_queries, n_attrs);
        let mut query_tables = BitMatrix::new(n_queries, n_tables);
        for (qi, q) in workload.queries().iter().enumerate() {
            for &a in &q.attrs {
                if a.index() >= n_attrs {
                    return Err(ModelError::UnknownAttr(a));
                }
                alpha.set(qi, a.index());
            }
            for &(t, _) in &q.table_rows {
                if t.index() >= n_tables {
                    return Err(ModelError::UnknownTable(t));
                }
                query_tables.set(qi, t.index());
                // Workload builders derive table_rows from accessed attrs, but
                // instances can be deserialized: re-check the containment.
                let range = schema.table_attrs(t);
                if !q.attrs.iter().any(|a| range.contains(&a.index())) {
                    return Err(ModelError::RowCountMismatch {
                        query: q.name.clone(),
                        table: t,
                    });
                }
            }
            // Every accessed attribute's table must have a row count.
            for &a in &q.attrs {
                if !q.touches_table(schema.table_of(a)) {
                    return Err(ModelError::RowCountMismatch {
                        query: q.name.clone(),
                        table: schema.table_of(a),
                    });
                }
            }
        }

        let mut phi = BitMatrix::new(n_txns, n_attrs);
        let mut txn_tables = BitMatrix::new(n_txns, n_tables);
        for (ti, txn) in workload.transactions().iter().enumerate() {
            for &q in &txn.queries {
                let query = workload.query(q);
                for &(tb, _) in &query.table_rows {
                    txn_tables.set(ti, tb.index());
                }
                if query.kind == QueryKind::Read {
                    for &a in &query.attrs {
                        phi.set(ti, a.index());
                    }
                }
            }
        }
        let phi_lists = (0..n_txns)
            .map(|t| phi.row_iter(t).map(AttrId::from_index).collect())
            .collect();

        Ok(Self {
            name: name.into(),
            schema,
            workload,
            derived: DerivedStats {
                alpha,
                phi,
                query_tables,
                txn_tables,
                phi_lists,
            },
        })
    }

    /// Instance name (used in reports and bench tables).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Derived incidence matrices.
    pub fn derived(&self) -> &DerivedStats {
        &self.derived
    }

    /// `|A|`: number of attributes.
    pub fn n_attrs(&self) -> usize {
        self.schema.n_attrs()
    }

    /// `|T|`: number of transactions.
    pub fn n_txns(&self) -> usize {
        self.workload.n_txns()
    }

    /// Number of queries.
    pub fn n_queries(&self) -> usize {
        self.workload.n_queries()
    }

    /// Number of tables.
    pub fn n_tables(&self) -> usize {
        self.schema.n_tables()
    }

    /// `α[a][q]`: does query `q` access attribute `a` itself?
    #[inline]
    pub fn alpha(&self, a: AttrId, q: QueryId) -> bool {
        self.derived.alpha.get(q.index(), a.index())
    }

    /// `β[a][q]`: is `a` part of a table that `q` accesses?
    #[inline]
    pub fn beta(&self, a: AttrId, q: QueryId) -> bool {
        self.derived
            .query_tables
            .get(q.index(), self.schema.table_of(a).index())
    }

    /// `δ[q]`: is `q` a write query?
    #[inline]
    pub fn delta(&self, q: QueryId) -> bool {
        self.workload.query(q).kind.is_write()
    }

    /// `γ`: the transaction holding `q`.
    #[inline]
    pub fn gamma(&self, q: QueryId) -> TxnId {
        self.workload.txn_of(q)
    }

    /// `φ[a][t]`: does any query in `t` read `a`?
    #[inline]
    pub fn phi(&self, a: AttrId, t: TxnId) -> bool {
        self.derived.phi.get(t.index(), a.index())
    }

    /// Sorted attributes read by transaction `t` (the φ row).
    pub fn read_set(&self, t: TxnId) -> &[AttrId] {
        &self.derived.phi_lists[t.index()]
    }

    /// `W_{a,q} = w_a · f_q · n_{a,q}` — the estimated cost in bytes of
    /// reading/writing `a` over all executions of `q`. Zero when `β[a][q]=0`.
    pub fn weight(&self, a: AttrId, q: QueryId) -> f64 {
        let query = self.workload.query(q);
        let t = self.schema.table_of(a);
        let n = query.rows_for_table(t);
        if n == 0.0 {
            return 0.0;
        }
        self.schema.width(a) * query.frequency * n
    }

    /// Tables touched by transaction `t`.
    pub fn txn_tables(&self, t: TxnId) -> impl Iterator<Item = TableId> + '_ {
        self.derived
            .txn_tables
            .row_iter(t.index())
            .map(TableId::from_index)
    }

    /// Total size of the instance in "decision cells" (`(|A|+|T|)·|S|` for a
    /// given site count); a rough difficulty measure used by solvers to pick
    /// defaults.
    pub fn decision_cells(&self, n_sites: usize) -> usize {
        (self.n_attrs() + self.n_txns()) * n_sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QuerySpec;

    fn tiny() -> Instance {
        let mut sb = Schema::builder();
        let c = sb.table("C", &[("id", 4.0), ("bal", 8.0)]).unwrap();
        sb.table("O", &[("id", 4.0), ("cid", 4.0)]).unwrap();
        let schema = sb.build().unwrap();
        let mut wb = Workload::builder(&schema);
        let q0 = wb
            .add_query(
                QuerySpec::read("q0")
                    .access(&[AttrId(0), AttrId(1)])
                    .frequency(2.0),
            )
            .unwrap();
        let q1 = wb
            .add_query(
                QuerySpec::write("q1")
                    .access(&[AttrId(3)])
                    .rows(TableId(1), 10.0),
            )
            .unwrap();
        let _ = c;
        wb.transaction("T0", &[q0]).unwrap();
        wb.transaction("T1", &[q1]).unwrap();
        Instance::new("tiny", schema, wb.build().unwrap()).unwrap()
    }

    #[test]
    fn derived_constants_match_definitions() {
        let ins = tiny();
        let (q0, q1) = (QueryId(0), QueryId(1));
        // α: q0 accesses a0,a1; q1 accesses a3 only.
        assert!(ins.alpha(AttrId(0), q0) && ins.alpha(AttrId(1), q0));
        assert!(!ins.alpha(AttrId(2), q1) && ins.alpha(AttrId(3), q1));
        // β: q1 touches table O, so both a2 and a3 have β=1.
        assert!(ins.beta(AttrId(2), q1) && ins.beta(AttrId(3), q1));
        assert!(!ins.beta(AttrId(0), q1));
        // δ.
        assert!(!ins.delta(q0));
        assert!(ins.delta(q1));
        // γ.
        assert_eq!(ins.gamma(q0), TxnId(0));
        assert_eq!(ins.gamma(q1), TxnId(1));
        // φ: T0 reads a0,a1; T1 (write-only) reads nothing.
        assert!(ins.phi(AttrId(0), TxnId(0)));
        assert!(!ins.phi(AttrId(3), TxnId(1)));
        assert_eq!(ins.read_set(TxnId(0)), &[AttrId(0), AttrId(1)]);
        assert!(ins.read_set(TxnId(1)).is_empty());
    }

    #[test]
    fn weight_formula() {
        let ins = tiny();
        // W_{a0,q0} = w(4) * f(2) * n(1) = 8.
        assert_eq!(ins.weight(AttrId(0), QueryId(0)), 8.0);
        // W_{a2,q1} = w(4) * f(1) * n(10) = 40 (β support, even though α=0).
        assert_eq!(ins.weight(AttrId(2), QueryId(1)), 40.0);
        // Outside β support the weight is 0.
        assert_eq!(ins.weight(AttrId(0), QueryId(1)), 0.0);
    }

    #[test]
    fn txn_tables_union() {
        let ins = tiny();
        let t0: Vec<TableId> = ins.txn_tables(TxnId(0)).collect();
        assert_eq!(t0, vec![TableId(0)]);
        let t1: Vec<TableId> = ins.txn_tables(TxnId(1)).collect();
        assert_eq!(t1, vec![TableId(1)]);
    }

    #[test]
    fn serde_round_trip_recomputes_derived() {
        let ins = tiny();
        let json = serde_json::to_string(&ins).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(ins, back);
    }

    #[test]
    fn decision_cells() {
        let ins = tiny();
        assert_eq!(ins.decision_cells(3), (4 + 2) * 3);
    }
}
