//! The TPC-C v5 instance (§5.2 of the paper).
//!
//! Schema: the nine tables of TPC-C v5.10.1 with all 92 attributes; widths
//! are derived from the spec's datatypes (variable-length text fields use
//! their maximum, numeric fields their natural binary width).
//!
//! Workload: one modeled query per SQL statement of the five transaction
//! profiles (§2.4–2.8 of the spec), under the paper's simplifying
//! assumptions:
//!
//! * all queries run with **equal frequency** (1.0),
//! * every query accesses **one row** per touched table, except statements
//!   that iterate or aggregate, which access **ten rows**,
//! * **UPDATE statements are split** into a read sub-query over every
//!   referenced attribute and a write sub-query over the written
//!   attributes ([`vpart_model::WorkloadBuilder::add_update`]),
//! * selection predicates count as attribute accesses (key columns are
//!   read).

use vpart_model::workload::QuerySpec;
use vpart_model::{AttrId, Instance, QueryId, Schema, TableId, Workload};

/// Rows accessed by iterated / aggregate statements (the paper assumes 10).
pub const ITERATED_ROWS: f64 = 10.0;

fn schema() -> Schema {
    let mut b = Schema::builder();
    b.table(
        "Warehouse",
        &[
            ("W_ID", 4.0),
            ("W_NAME", 10.0),
            ("W_STREET_1", 20.0),
            ("W_STREET_2", 20.0),
            ("W_CITY", 20.0),
            ("W_STATE", 2.0),
            ("W_ZIP", 9.0),
            ("W_TAX", 4.0),
            ("W_YTD", 8.0),
        ],
    )
    .expect("static schema");
    b.table(
        "District",
        &[
            ("D_ID", 4.0),
            ("D_W_ID", 4.0),
            ("D_NAME", 10.0),
            ("D_STREET_1", 20.0),
            ("D_STREET_2", 20.0),
            ("D_CITY", 20.0),
            ("D_STATE", 2.0),
            ("D_ZIP", 9.0),
            ("D_TAX", 4.0),
            ("D_YTD", 8.0),
            ("D_NEXT_O_ID", 4.0),
        ],
    )
    .expect("static schema");
    b.table(
        "Customer",
        &[
            ("C_ID", 4.0),
            ("C_D_ID", 4.0),
            ("C_W_ID", 4.0),
            ("C_FIRST", 16.0),
            ("C_MIDDLE", 2.0),
            ("C_LAST", 16.0),
            ("C_STREET_1", 20.0),
            ("C_STREET_2", 20.0),
            ("C_CITY", 20.0),
            ("C_STATE", 2.0),
            ("C_ZIP", 9.0),
            ("C_PHONE", 16.0),
            ("C_SINCE", 8.0),
            ("C_CREDIT", 2.0),
            ("C_CREDIT_LIM", 8.0),
            ("C_DISCOUNT", 4.0),
            ("C_BALANCE", 8.0),
            ("C_YTD_PAYMENT", 8.0),
            ("C_PAYMENT_CNT", 4.0),
            ("C_DELIVERY_CNT", 4.0),
            ("C_DATA", 500.0),
        ],
    )
    .expect("static schema");
    b.table(
        "History",
        &[
            ("H_C_ID", 4.0),
            ("H_C_D_ID", 4.0),
            ("H_C_W_ID", 4.0),
            ("H_D_ID", 4.0),
            ("H_W_ID", 4.0),
            ("H_DATE", 8.0),
            ("H_AMOUNT", 4.0),
            ("H_DATA", 24.0),
        ],
    )
    .expect("static schema");
    b.table(
        "NewOrder",
        &[("NO_O_ID", 4.0), ("NO_D_ID", 4.0), ("NO_W_ID", 4.0)],
    )
    .expect("static schema");
    b.table(
        "Order",
        &[
            ("O_ID", 4.0),
            ("O_D_ID", 4.0),
            ("O_W_ID", 4.0),
            ("O_C_ID", 4.0),
            ("O_ENTRY_D", 8.0),
            ("O_CARRIER_ID", 4.0),
            ("O_OL_CNT", 4.0),
            ("O_ALL_LOCAL", 4.0),
        ],
    )
    .expect("static schema");
    b.table(
        "OrderLine",
        &[
            ("OL_O_ID", 4.0),
            ("OL_D_ID", 4.0),
            ("OL_W_ID", 4.0),
            ("OL_NUMBER", 4.0),
            ("OL_I_ID", 4.0),
            ("OL_SUPPLY_W_ID", 4.0),
            ("OL_DELIVERY_D", 8.0),
            ("OL_QUANTITY", 4.0),
            ("OL_AMOUNT", 4.0),
            ("OL_DIST_INFO", 24.0),
        ],
    )
    .expect("static schema");
    b.table(
        "Item",
        &[
            ("I_ID", 4.0),
            ("I_IM_ID", 4.0),
            ("I_NAME", 24.0),
            ("I_PRICE", 4.0),
            ("I_DATA", 50.0),
        ],
    )
    .expect("static schema");
    b.table(
        "Stock",
        &[
            ("S_I_ID", 4.0),
            ("S_W_ID", 4.0),
            ("S_QUANTITY", 4.0),
            ("S_DIST_01", 24.0),
            ("S_DIST_02", 24.0),
            ("S_DIST_03", 24.0),
            ("S_DIST_04", 24.0),
            ("S_DIST_05", 24.0),
            ("S_DIST_06", 24.0),
            ("S_DIST_07", 24.0),
            ("S_DIST_08", 24.0),
            ("S_DIST_09", 24.0),
            ("S_DIST_10", 24.0),
            ("S_YTD", 8.0),
            ("S_ORDER_CNT", 4.0),
            ("S_REMOTE_CNT", 4.0),
            ("S_DATA", 50.0),
        ],
    )
    .expect("static schema");
    b.build().expect("static schema")
}

/// Helper resolving qualified attribute names at build time.
struct Names<'a> {
    schema: &'a Schema,
}

impl Names<'_> {
    fn a(&self, table: &str, attr: &str) -> AttrId {
        self.schema
            .attr_by_name(table, attr)
            .unwrap_or_else(|| panic!("unknown attribute {table}.{attr}"))
    }
    fn attrs(&self, table: &str, attrs: &[&str]) -> Vec<AttrId> {
        attrs.iter().map(|n| self.a(table, n)).collect()
    }
    fn t(&self, table: &str) -> TableId {
        self.schema.table_by_name(table).expect("unknown table")
    }
}

/// Builds the TPC-C v5 instance.
pub fn tpcc() -> Instance {
    let schema = schema();
    let n = Names { schema: &schema };
    let mut wb = Workload::builder(&schema);
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };

    // ---------------- New-Order (spec §2.4.2) ----------------
    let no_wtax =
        add(QuerySpec::read("no/warehouse_tax").access(&n.attrs("Warehouse", &["W_ID", "W_TAX"])));
    let no_dsel = add(QuerySpec::read("no/district_read")
        .access(&n.attrs("District", &["D_W_ID", "D_ID", "D_NEXT_O_ID", "D_TAX"])));
    let (no_dupd_r, no_dupd_w) = wb
        .add_update(
            "no/district_bump",
            1.0,
            &n.attrs("District", &["D_W_ID", "D_ID", "D_NEXT_O_ID"]),
            &n.attrs("District", &["D_NEXT_O_ID"]),
            &[],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let no_csel = add(QuerySpec::read("no/customer_read").access(&n.attrs(
        "Customer",
        &[
            "C_W_ID",
            "C_D_ID",
            "C_ID",
            "C_DISCOUNT",
            "C_LAST",
            "C_CREDIT",
        ],
    )));
    let no_oins = add(QuerySpec::write("no/order_insert").access(&n.attrs(
        "Order",
        &[
            "O_ID",
            "O_D_ID",
            "O_W_ID",
            "O_C_ID",
            "O_ENTRY_D",
            "O_CARRIER_ID",
            "O_OL_CNT",
            "O_ALL_LOCAL",
        ],
    )));
    let no_noins = add(QuerySpec::write("no/neworder_insert")
        .access(&n.attrs("NewOrder", &["NO_O_ID", "NO_D_ID", "NO_W_ID"])));
    let no_isel = add(QuerySpec::read("no/item_read")
        .access(&n.attrs("Item", &["I_ID", "I_PRICE", "I_NAME", "I_DATA"]))
        .default_rows(ITERATED_ROWS));
    let stock_read: Vec<AttrId> = n.attrs(
        "Stock",
        &[
            "S_I_ID",
            "S_W_ID",
            "S_QUANTITY",
            "S_DIST_01",
            "S_DIST_02",
            "S_DIST_03",
            "S_DIST_04",
            "S_DIST_05",
            "S_DIST_06",
            "S_DIST_07",
            "S_DIST_08",
            "S_DIST_09",
            "S_DIST_10",
            "S_YTD",
            "S_ORDER_CNT",
            "S_REMOTE_CNT",
            "S_DATA",
        ],
    );
    let stock_write: Vec<AttrId> = n.attrs(
        "Stock",
        &["S_QUANTITY", "S_YTD", "S_ORDER_CNT", "S_REMOTE_CNT"],
    );
    let (no_supd_r, no_supd_w) = wb
        .add_update(
            "no/stock_update",
            1.0,
            &stock_read,
            &stock_write,
            &[(n.t("Stock"), ITERATED_ROWS)],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let no_olins = add(QuerySpec::write("no/orderline_insert")
        .access(&n.attrs(
            "OrderLine",
            &[
                "OL_O_ID",
                "OL_D_ID",
                "OL_W_ID",
                "OL_NUMBER",
                "OL_I_ID",
                "OL_SUPPLY_W_ID",
                "OL_DELIVERY_D",
                "OL_QUANTITY",
                "OL_AMOUNT",
                "OL_DIST_INFO",
            ],
        ))
        .default_rows(ITERATED_ROWS));

    // ---------------- Payment (spec §2.5.2) ----------------
    let (pay_wupd_r, pay_wupd_w) = wb
        .add_update(
            "pay/warehouse_ytd",
            1.0,
            &n.attrs("Warehouse", &["W_ID", "W_YTD"]),
            &n.attrs("Warehouse", &["W_YTD"]),
            &[],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let pay_wsel = add(QuerySpec::read("pay/warehouse_read").access(&n.attrs(
        "Warehouse",
        &[
            "W_ID",
            "W_NAME",
            "W_STREET_1",
            "W_STREET_2",
            "W_CITY",
            "W_STATE",
            "W_ZIP",
        ],
    )));
    let (pay_dupd_r, pay_dupd_w) = wb
        .add_update(
            "pay/district_ytd",
            1.0,
            &n.attrs("District", &["D_W_ID", "D_ID", "D_YTD"]),
            &n.attrs("District", &["D_YTD"]),
            &[],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let pay_dsel = add(QuerySpec::read("pay/district_read").access(&n.attrs(
        "District",
        &[
            "D_W_ID",
            "D_ID",
            "D_NAME",
            "D_STREET_1",
            "D_STREET_2",
            "D_CITY",
            "D_STATE",
            "D_ZIP",
        ],
    )));
    // Customer selected by last name: iterates over matching customers.
    let pay_csel = add(QuerySpec::read("pay/customer_read")
        .access(&n.attrs(
            "Customer",
            &[
                "C_W_ID",
                "C_D_ID",
                "C_ID",
                "C_FIRST",
                "C_MIDDLE",
                "C_LAST",
                "C_STREET_1",
                "C_STREET_2",
                "C_CITY",
                "C_STATE",
                "C_ZIP",
                "C_PHONE",
                "C_SINCE",
                "C_CREDIT",
                "C_CREDIT_LIM",
                "C_DISCOUNT",
                "C_BALANCE",
            ],
        ))
        .default_rows(ITERATED_ROWS));
    let (pay_cupd_r, pay_cupd_w) = wb
        .add_update(
            "pay/customer_update",
            1.0,
            &n.attrs(
                "Customer",
                &[
                    "C_W_ID",
                    "C_D_ID",
                    "C_ID",
                    "C_BALANCE",
                    "C_YTD_PAYMENT",
                    "C_PAYMENT_CNT",
                    "C_CREDIT",
                    "C_DATA",
                ],
            ),
            &n.attrs(
                "Customer",
                &["C_BALANCE", "C_YTD_PAYMENT", "C_PAYMENT_CNT", "C_DATA"],
            ),
            &[],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let pay_hins = add(QuerySpec::write("pay/history_insert").access(&n.attrs(
        "History",
        &[
            "H_C_ID", "H_C_D_ID", "H_C_W_ID", "H_D_ID", "H_W_ID", "H_DATE", "H_AMOUNT", "H_DATA",
        ],
    )));

    // ---------------- Order-Status (spec §2.6.2) ----------------
    let os_csel = add(QuerySpec::read("os/customer_read")
        .access(&n.attrs(
            "Customer",
            &[
                "C_W_ID",
                "C_D_ID",
                "C_ID",
                "C_BALANCE",
                "C_FIRST",
                "C_MIDDLE",
                "C_LAST",
            ],
        ))
        .default_rows(ITERATED_ROWS));
    let os_osel = add(QuerySpec::read("os/order_read").access(&n.attrs(
        "Order",
        &[
            "O_W_ID",
            "O_D_ID",
            "O_C_ID",
            "O_ID",
            "O_ENTRY_D",
            "O_CARRIER_ID",
        ],
    )));
    let os_olsel = add(QuerySpec::read("os/orderline_read")
        .access(&n.attrs(
            "OrderLine",
            &[
                "OL_W_ID",
                "OL_D_ID",
                "OL_O_ID",
                "OL_I_ID",
                "OL_SUPPLY_W_ID",
                "OL_QUANTITY",
                "OL_AMOUNT",
                "OL_DELIVERY_D",
            ],
        ))
        .default_rows(ITERATED_ROWS));

    // ---------------- Delivery (spec §2.7.4) ----------------
    let del_nosel = add(QuerySpec::read("del/neworder_read")
        .access(&n.attrs("NewOrder", &["NO_W_ID", "NO_D_ID", "NO_O_ID"]))
        .default_rows(ITERATED_ROWS));
    let del_nodel = add(QuerySpec::write("del/neworder_delete")
        .access(&n.attrs("NewOrder", &["NO_W_ID", "NO_D_ID", "NO_O_ID"]))
        .default_rows(ITERATED_ROWS));
    let del_osel = add(QuerySpec::read("del/order_read")
        .access(&n.attrs("Order", &["O_W_ID", "O_D_ID", "O_ID", "O_C_ID"]))
        .default_rows(ITERATED_ROWS));
    let (del_oupd_r, del_oupd_w) = wb
        .add_update(
            "del/order_carrier",
            1.0,
            &n.attrs("Order", &["O_W_ID", "O_D_ID", "O_ID", "O_CARRIER_ID"]),
            &n.attrs("Order", &["O_CARRIER_ID"]),
            &[(n.t("Order"), ITERATED_ROWS)],
        )
        .expect("static workload");
    let (del_olupd_r, del_olupd_w) = wb
        .add_update(
            "del/orderline_delivery",
            1.0,
            &n.attrs(
                "OrderLine",
                &["OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_DELIVERY_D"],
            ),
            &n.attrs("OrderLine", &["OL_DELIVERY_D"]),
            &[(n.t("OrderLine"), ITERATED_ROWS)],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };
    let del_olsum = add(QuerySpec::read("del/orderline_sum")
        .access(&n.attrs("OrderLine", &["OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_AMOUNT"]))
        .default_rows(ITERATED_ROWS));
    let (del_cupd_r, del_cupd_w) = wb
        .add_update(
            "del/customer_balance",
            1.0,
            &n.attrs(
                "Customer",
                &["C_W_ID", "C_D_ID", "C_ID", "C_BALANCE", "C_DELIVERY_CNT"],
            ),
            &n.attrs("Customer", &["C_BALANCE", "C_DELIVERY_CNT"]),
            &[(n.t("Customer"), ITERATED_ROWS)],
        )
        .expect("static workload");
    let mut add = |spec: QuerySpec| -> QueryId { wb.add_query(spec).expect("static workload") };

    // ---------------- Stock-Level (spec §2.8.2) ----------------
    let sl_dsel = add(QuerySpec::read("sl/district_read")
        .access(&n.attrs("District", &["D_W_ID", "D_ID", "D_NEXT_O_ID"])));
    let sl_join = add(QuerySpec::read("sl/stock_count")
        .access(
            &[
                n.attrs("OrderLine", &["OL_W_ID", "OL_D_ID", "OL_O_ID", "OL_I_ID"]),
                n.attrs("Stock", &["S_I_ID", "S_W_ID", "S_QUANTITY"]),
            ]
            .concat(),
        )
        .default_rows(ITERATED_ROWS));

    wb.transaction(
        "NewOrder",
        &[
            no_wtax, no_dsel, no_dupd_r, no_dupd_w, no_csel, no_oins, no_noins, no_isel, no_supd_r,
            no_supd_w, no_olins,
        ],
    )
    .expect("static workload");
    wb.transaction(
        "Payment",
        &[
            pay_wupd_r, pay_wupd_w, pay_wsel, pay_dupd_r, pay_dupd_w, pay_dsel, pay_csel,
            pay_cupd_r, pay_cupd_w, pay_hins,
        ],
    )
    .expect("static workload");
    wb.transaction("OrderStatus", &[os_csel, os_osel, os_olsel])
        .expect("static workload");
    wb.transaction(
        "Delivery",
        &[
            del_nosel,
            del_nodel,
            del_osel,
            del_oupd_r,
            del_oupd_w,
            del_olupd_r,
            del_olupd_w,
            del_olsum,
            del_cupd_r,
            del_cupd_w,
        ],
    )
    .expect("static workload");
    wb.transaction("StockLevel", &[sl_dsel, sl_join])
        .expect("static workload");

    let workload = wb.build().expect("static workload");
    Instance::new("TPC-C v5", schema, workload).expect("static instance")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpart_model::TxnId;

    #[test]
    fn dimensions_match_the_paper() {
        let ins = tpcc();
        assert_eq!(ins.n_tables(), 9);
        assert_eq!(ins.n_attrs(), 92, "paper reports |A| = 92");
        assert_eq!(ins.n_txns(), 5);
    }

    #[test]
    fn transaction_names() {
        let ins = tpcc();
        let names: Vec<&str> = ins
            .workload()
            .transactions()
            .iter()
            .map(|t| t.name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "NewOrder",
                "Payment",
                "OrderStatus",
                "Delivery",
                "StockLevel"
            ]
        );
    }

    #[test]
    fn updates_are_split() {
        let ins = tpcc();
        // Every "/read" sub-query must be a read and the matching "/write"
        // a write over a subset of its attributes.
        let w = ins.workload();
        let mut split_pairs = 0;
        for q in w.queries() {
            if let Some(base) = q.name.strip_suffix("/read") {
                let write = w
                    .query_by_name(&format!("{base}/write"))
                    .unwrap_or_else(|| panic!("missing write half of {base}"));
                let wq = w.query(write);
                assert!(!q.kind.is_write());
                assert!(wq.kind.is_write());
                assert!(
                    wq.attrs.iter().all(|a| q.attrs.contains(a)),
                    "write set of {base} must be ⊆ read set"
                );
                split_pairs += 1;
            }
        }
        assert_eq!(split_pairs, 8, "eight UPDATE statements in TPC-C profiles");
    }

    #[test]
    fn new_order_rows_assumption() {
        // The paper: "the New-Order transaction ... assumed to access 11
        // rows in average" — 1 row for the district bump + 10 for the
        // iterated item/stock/order-line statements.
        let ins = tpcc();
        let w = ins.workload();
        let item = w.query(w.query_by_name("no/item_read").unwrap());
        assert_eq!(item.table_rows[0].1, 10.0);
        let bump = w.query(w.query_by_name("no/district_bump/read").unwrap());
        assert_eq!(bump.table_rows[0].1, 1.0);
    }

    #[test]
    fn frequencies_are_equal() {
        let ins = tpcc();
        assert!(ins.workload().queries().iter().all(|q| q.frequency == 1.0));
    }

    #[test]
    fn every_table_is_touched() {
        let ins = tpcc();
        for t in 0..ins.n_tables() {
            let touched = (0..ins.n_txns()).any(|txn| {
                ins.txn_tables(TxnId::from_index(txn))
                    .any(|tb| tb.index() == t)
            });
            assert!(touched, "table {t} unused");
        }
    }

    #[test]
    fn stock_level_reads_only() {
        let ins = tpcc();
        let w = ins.workload();
        let sl = w.txn_by_name("StockLevel").unwrap();
        for &q in &w.txn(sl).queries {
            assert!(!w.query(q).kind.is_write(), "StockLevel is read-only");
        }
    }

    #[test]
    fn instance_is_reducible_by_reasonable_cuts() {
        // Many TPC-C attributes are co-accessed (e.g. address fields), so
        // §4's reduction must find substantial grouping.
        let ins = tpcc();
        let red = vpart_core::reduce::Reduction::compute(&ins).expect("reducible");
        assert!(
            red.reduced.n_attrs() < 60,
            "expected < 60 groups, got {}",
            red.reduced.n_attrs()
        );
        assert!(red.reduced.n_attrs() >= 20);
    }
}
