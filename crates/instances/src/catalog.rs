//! Named instances: the Table 2 classes plus TPC-C.
//!
//! Class names follow the paper: `rndAt8x15` is class **A** (high reduction
//! potential: many attributes per table, few attribute references per
//! query), with **8 tables** and **15 transactions**; `rndBt16x100u50` is
//! class **B** (low potential: few attributes per table, many references)
//! with 16 tables, 100 transactions and a 50% update ratio. Seeds are
//! derived from the name, so every call regenerates the same instance.

use crate::random::RandomParams;
use crate::tpcc::tpcc;
use vpart_model::Instance;

/// Table 2 parameters for class A (`rndA…`): `A=3 B=10 C=30 D=3 E=8`.
fn class_a(n_tables: usize, n_txns: usize, update_pct: u32, name: &str) -> RandomParams {
    RandomParams {
        name: name.to_owned(),
        n_txns,
        n_tables,
        max_queries_per_txn: 3,
        update_pct,
        max_attrs_per_table: 30,
        max_table_refs: 3,
        max_attr_refs: 8,
        widths: vec![2.0, 4.0, 8.0, 16.0],
    }
}

/// Table 2 parameters for class B (`rndB…`): `A=3 B=10 C=5 D=6 E=28`.
fn class_b(n_tables: usize, n_txns: usize, update_pct: u32, name: &str) -> RandomParams {
    RandomParams {
        name: name.to_owned(),
        n_txns,
        n_tables,
        max_queries_per_txn: 3,
        update_pct,
        max_attrs_per_table: 5,
        max_table_refs: 6,
        max_attr_refs: 28,
        widths: vec![2.0, 4.0, 8.0, 16.0],
    }
}

/// Stable seed from the instance name (FNV-1a).
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Parses `rnd[A|B]t{tables}x{txns}[u50]` into class parameters.
fn parse(name: &str) -> Option<RandomParams> {
    let rest = name.strip_prefix("rnd")?;
    let (class, rest) = match rest.as_bytes().first()? {
        b'A' => ('A', &rest[1..]),
        b'B' => ('B', &rest[1..]),
        _ => return None,
    };
    let rest = rest.strip_prefix('t')?;
    let (tables_str, rest) = rest.split_once('x')?;
    let (txns_str, update_pct) = match rest.strip_suffix("u50") {
        Some(t) => (t, 50),
        None => (rest, 10),
    };
    let n_tables: usize = tables_str.parse().ok()?;
    let n_txns: usize = txns_str.parse().ok()?;
    if n_tables == 0 || n_txns == 0 {
        return None;
    }
    Some(match class {
        'A' => class_a(n_tables, n_txns, update_pct, name),
        _ => class_b(n_tables, n_txns, update_pct, name),
    })
}

/// All instance names used in the paper's Tables 3, 5 and 6.
pub fn names() -> Vec<&'static str> {
    vec![
        "tpcc",
        "rndAt4x15",
        "rndAt8x15",
        "rndAt8x15u50",
        "rndAt16x15",
        "rndAt32x15",
        "rndAt64x15",
        "rndAt4x100",
        "rndAt8x100",
        "rndAt16x100",
        "rndAt32x100",
        "rndAt64x100",
        "rndBt4x15",
        "rndBt8x15",
        "rndBt16x15",
        "rndBt16x15u50",
        "rndBt32x15",
        "rndBt64x15",
        "rndBt4x100",
        "rndBt8x100",
        "rndBt16x100",
        "rndBt32x100",
        "rndBt64x100",
    ]
}

/// Builds a named instance (`"tpcc"` or any `rnd…` class name, including
/// names not listed in [`names`] — e.g. `rndAt128x50`).
pub fn by_name(name: &str) -> Option<Instance> {
    if name == "tpcc" {
        return Some(tpcc());
    }
    let params = parse(name)?;
    Some(params.generate(seed_for(name)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_catalog_names_resolve() {
        for n in names() {
            let ins = by_name(n).unwrap_or_else(|| panic!("{n} must resolve"));
            assert!(ins.n_txns() > 0);
        }
    }

    #[test]
    fn class_dimensions_match_names() {
        let ins = by_name("rndAt8x15").unwrap();
        assert_eq!(ins.n_tables(), 8);
        assert_eq!(ins.n_txns(), 15);
        let ins = by_name("rndBt32x100").unwrap();
        assert_eq!(ins.n_tables(), 32);
        assert_eq!(ins.n_txns(), 100);
    }

    #[test]
    fn u50_variant_has_more_updates() {
        let base = by_name("rndAt8x15").unwrap();
        let heavy = by_name("rndAt8x15u50").unwrap();
        let frac = |i: &Instance| {
            let w = i
                .workload()
                .queries()
                .iter()
                .filter(|q| q.kind.is_write())
                .count();
            w as f64 / i.n_queries() as f64
        };
        assert!(frac(&heavy) > frac(&base));
    }

    #[test]
    fn deterministic_regeneration() {
        assert_eq!(by_name("rndAt4x15"), by_name("rndAt4x15"));
    }

    #[test]
    fn class_a_tends_to_wider_tables_than_class_b() {
        let a = by_name("rndAt16x15").unwrap();
        let b = by_name("rndBt16x15").unwrap();
        let avg = |i: &Instance| i.n_attrs() as f64 / i.n_tables() as f64;
        assert!(
            avg(&a) > avg(&b),
            "class A (C=30) should average wider tables than class B (C=5)"
        );
    }

    #[test]
    fn rejects_garbage_names() {
        assert!(by_name("rndCt4x15").is_none());
        assert!(by_name("rndAt0x15").is_none());
        assert!(by_name("rndAtx15").is_none());
        assert!(by_name("nope").is_none());
    }
}
