//! Problem instances for OLTP vertical partitioning.
//!
//! * [`tpcc()`] — the TPC-C v5 benchmark modeled per the paper's §5.2: the
//!   full 9-table / 92-attribute schema with widths derived from the spec's
//!   datatypes, the five transactions with one modeled query per SQL
//!   statement, equal frequencies, one row per query (ten for iterated or
//!   aggregate access), and UPDATE statements split into read + write
//!   sub-queries.
//! * [`random`] — the §5.3 random instance generator driven by the six
//!   parameters of Table 1 (A–F).
//! * [`catalog`] — the named instance classes of Table 2 (`rndAt4x15` …)
//!   and the Table 1 default classes, all seeded and reproducible.

pub mod catalog;
pub mod random;
pub mod tpcc;

pub use catalog::{by_name, names};
pub use random::RandomParams;
pub use tpcc::tpcc;
