//! Random instance generation (§5.3).
//!
//! Instance *classes* are defined by upper bounds on six parameters
//! (Table 1's single-letter labels):
//!
//! | | parameter |
//! |-|-----------|
//! | A | max queries per transaction |
//! | B | percentage of queries being updates |
//! | C | max attributes per table |
//! | D | max tables referenced by a single query |
//! | E | max attributes referenced by a single query |
//! | F | the set of allowed attribute widths |
//!
//! Individual instances draw each per-entity value uniformly from
//! `1..=bound` (so the mean is about half the bound), exactly as described
//! in the paper. Row counts are 1 and frequencies 1 (the paper specifies
//! no further statistics for random instances). Generation is
//! deterministic per `(params, seed)`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use vpart_model::workload::QuerySpec;
use vpart_model::{AttrId, Instance, Schema, Workload};

/// Parameters of a random instance class (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct RandomParams {
    /// Instance name (used in reports).
    pub name: String,
    /// Number of transactions `|T|`.
    pub n_txns: usize,
    /// Number of schema tables.
    pub n_tables: usize,
    /// A: max queries per transaction.
    pub max_queries_per_txn: usize,
    /// B: percentage (0–100) of queries that are updates.
    pub update_pct: u32,
    /// C: max attributes per table.
    pub max_attrs_per_table: usize,
    /// D: max tables referenced by one query.
    pub max_table_refs: usize,
    /// E: max attributes referenced by one query.
    pub max_attr_refs: usize,
    /// F: allowed attribute widths.
    pub widths: Vec<f64>,
}

impl RandomParams {
    /// The Table 1 default class: `A=3, B=10, C=15, D=5, E=15, F={4,8}`
    /// with `#tables = |T| = n` (the paper tests `n = 20` and `n = 100`).
    pub fn table1_default(n: usize) -> Self {
        Self {
            name: format!("table1-default-{n}"),
            n_txns: n,
            n_tables: n,
            max_queries_per_txn: 3,
            update_pct: 10,
            max_attrs_per_table: 15,
            max_table_refs: 5,
            max_attr_refs: 15,
            widths: vec![4.0, 8.0],
        }
    }

    /// Generates a concrete instance with the given seed.
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(self.n_txns > 0 && self.n_tables > 0, "empty class");
        assert!(
            self.max_queries_per_txn > 0
                && self.max_attrs_per_table > 0
                && self.max_table_refs > 0
                && self.max_attr_refs > 0
                && !self.widths.is_empty(),
            "all parameter bounds must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);

        // Schema: per table, U[1, C] attributes with widths drawn from F.
        let mut sb = Schema::builder();
        for t in 0..self.n_tables {
            let n_attrs = rng.gen_range(1..=self.max_attrs_per_table);
            let cols: Vec<(String, f64)> = (0..n_attrs)
                .map(|a| {
                    let w = self.widths[rng.gen_range(0..self.widths.len())];
                    (format!("a{a}"), w)
                })
                .collect();
            let col_refs: Vec<(&str, f64)> = cols.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            sb.table(format!("r{t}"), &col_refs)
                .expect("generated table is valid");
        }
        let schema = sb.build().expect("n_tables > 0");

        // Workload.
        let mut wb = Workload::builder(&schema);
        let mut txn_queries: Vec<Vec<vpart_model::QueryId>> = Vec::new();
        for t in 0..self.n_txns {
            let n_queries = rng.gen_range(1..=self.max_queries_per_txn);
            let mut qids = Vec::with_capacity(n_queries);
            for qi in 0..n_queries {
                let is_update = rng.gen_range(0..100) < self.update_pct;
                // Tables referenced: U[1, D] distinct tables, but never
                // more than the query's attribute budget allows.
                let n_attr_refs = rng.gen_range(1..=self.max_attr_refs);
                let n_table_refs = rng
                    .gen_range(1..=self.max_table_refs)
                    .min(self.n_tables)
                    .min(n_attr_refs);
                let mut tables: Vec<usize> = (0..self.n_tables).collect();
                tables.shuffle(&mut rng);
                tables.truncate(n_table_refs);

                // One attribute from each referenced table first (so every
                // chosen table is really referenced), then uniform fill.
                let mut attrs: Vec<AttrId> = Vec::new();
                for &tb in &tables {
                    let range = schema.table_attrs(vpart_model::TableId::from_index(tb));
                    let pick = rng.gen_range(range.start..range.end);
                    attrs.push(AttrId::from_index(pick));
                }
                let pool: Vec<usize> = tables
                    .iter()
                    .flat_map(|&tb| schema.table_attrs(vpart_model::TableId::from_index(tb)))
                    .collect();
                let mut extra: Vec<usize> = pool
                    .into_iter()
                    .filter(|&a| !attrs.iter().any(|x| x.index() == a))
                    .collect();
                extra.shuffle(&mut rng);
                for a in extra
                    .into_iter()
                    .take(n_attr_refs.saturating_sub(attrs.len()))
                {
                    attrs.push(AttrId::from_index(a));
                }

                let name = format!("t{t}q{qi}");
                let spec = if is_update {
                    QuerySpec::write(name)
                } else {
                    QuerySpec::read(name)
                }
                .access(&attrs);
                qids.push(wb.add_query(spec).expect("generated query is valid"));
            }
            txn_queries.push(qids);
        }
        for (t, qids) in txn_queries.iter().enumerate() {
            wb.transaction(format!("T{t}"), qids)
                .expect("generated txn is valid");
        }
        let workload = wb.build().expect("all queries assigned");
        Instance::new(self.name.clone(), schema, workload).expect("generated instance is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = RandomParams::table1_default(10);
        let a = p.generate(42);
        let b = p.generate(42);
        assert_eq!(a, b);
        let c = p.generate(43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn respects_bounds() {
        let p = RandomParams {
            name: "bounds".into(),
            n_txns: 25,
            n_tables: 6,
            max_queries_per_txn: 4,
            update_pct: 30,
            max_attrs_per_table: 7,
            max_table_refs: 3,
            max_attr_refs: 5,
            widths: vec![2.0, 16.0],
        };
        let ins = p.generate(7);
        assert_eq!(ins.n_txns(), 25);
        assert_eq!(ins.n_tables(), 6);
        for table in ins.schema().tables() {
            assert!(table.n_attrs() >= 1 && table.n_attrs() <= 7);
        }
        for attr in ins.schema().attrs() {
            assert!(attr.width == 2.0 || attr.width == 16.0);
        }
        for txn in ins.workload().transactions() {
            assert!(!txn.queries.is_empty() && txn.queries.len() <= 4);
        }
        for q in ins.workload().queries() {
            assert!(!q.attrs.is_empty() && q.attrs.len() <= 5);
            assert!(!q.table_rows.is_empty() && q.table_rows.len() <= 3);
            assert_eq!(q.frequency, 1.0);
            for &(_, rows) in &q.table_rows {
                assert_eq!(rows, 1.0);
            }
        }
    }

    #[test]
    fn update_percentage_zero_and_high() {
        let mut p = RandomParams::table1_default(20);
        p.update_pct = 0;
        let ins = p.generate(1);
        assert!(ins.workload().queries().iter().all(|q| !q.kind.is_write()));
        p.update_pct = 100;
        let ins = p.generate(1);
        assert!(ins.workload().queries().iter().all(|q| q.kind.is_write()));
    }

    #[test]
    fn every_referenced_table_contributes_an_attribute() {
        let p = RandomParams::table1_default(30);
        let ins = p.generate(99);
        for q in ins.workload().queries() {
            for &(table, _) in &q.table_rows {
                let range = ins.schema().table_attrs(table);
                assert!(
                    q.attrs.iter().any(|a| range.contains(&a.index())),
                    "query {} references table {table} without accessing it",
                    q.name
                );
            }
        }
    }
}
