//! The checked-in `pg_stat_statements` dump is the statistics-shaped
//! twin of the web-shop query log: ingesting either must produce the
//! same instance, and solving either must produce the same partitioning.

use std::path::Path;
use vpart_ingest::{ingest, ingest_stats, IngestOptions, StatsFormat};

fn data(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/data")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn both() -> (vpart_ingest::Ingestion, vpart_ingest::Ingestion) {
    let schema = data("schema.sql");
    let opts = IngestOptions::default().with_name("web-shop");
    let from_log = ingest(&schema, &data("queries.log"), &opts).expect("log ingests");
    let from_stats = ingest_stats(
        &schema,
        &data("pg_stat_statements.csv"),
        StatsFormat::PgssCsv,
        &opts,
    )
    .expect("stats dump ingests");
    (from_log, from_stats)
}

#[test]
fn stats_dump_reproduces_the_log_instance() {
    let (log, stats) = both();
    let (lw, sw) = (log.instance.workload(), stats.instance.workload());

    // Piecewise first, for a readable failure when the dump drifts.
    assert_eq!(log.instance.n_tables(), stats.instance.n_tables());
    assert_eq!(log.instance.n_attrs(), stats.instance.n_attrs());
    assert_eq!(
        log.instance.n_txns(),
        stats.instance.n_txns(),
        "transaction templates differ"
    );
    assert_eq!(log.instance.n_queries(), stats.instance.n_queries());
    for t in 0..lw.n_txns() {
        let (lt, st) = (
            lw.txn(vpart_model::TxnId(t as u32)),
            sw.txn(vpart_model::TxnId(t as u32)),
        );
        assert_eq!(lt.name, st.name, "txn {t} name");
        assert_eq!(lt.queries.len(), st.queries.len(), "txn {} size", lt.name);
    }
    for q in 0..lw.n_queries() {
        let id = vpart_model::QueryId(q as u32);
        let (lq, sq) = (lw.query(id), sw.query(id));
        assert_eq!(lq.name, sq.name, "query {q} name");
        assert_eq!(lq.frequency, sq.frequency, "frequency of {}", lq.name);
        assert_eq!(lq.attrs, sq.attrs, "attribute set of {}", lq.name);
        assert_eq!(lq.kind, sq.kind, "kind of {}", lq.name);
    }

    // And the full structural check.
    assert_eq!(log.instance, stats.instance);

    // Both ingestions are clean: nothing skipped, nothing low-confidence.
    assert!(log.report.skipped.is_empty(), "{:?}", log.report.skipped);
    assert!(
        stats.report.skipped.is_empty(),
        "{:?}",
        stats.report.skipped
    );
    assert!(!stats.report.has_diagnostics());
}

#[test]
fn stats_dump_solves_to_the_same_partitioning() {
    let (log, stats) = both();
    let cost = vpart_core::CostConfig::default();
    let solve = |ins: &vpart_model::Instance| {
        vpart_core::sa::SaSolver::new(vpart_core::sa::SaConfig::fast_deterministic(7))
            .solve(ins, 2, &cost)
            .expect("SA solves the web-shop instance")
    };
    let from_log = solve(&log.instance);
    let from_stats = solve(&stats.instance);
    assert_eq!(
        from_log.partitioning, from_stats.partitioning,
        "same instance + same seed must give the same layout"
    );
    assert_eq!(
        from_log.breakdown.objective4,
        from_stats.breakdown.objective4
    );
}
